//! A minimal hand-rolled Rust token scanner.
//!
//! The linter needs four things from a source file: identifiers, string
//! literal contents, single-character punctuation, and line comments (for
//! suppression pragmas) — each tagged with its 1-based line. Everything
//! else (numbers, char literals, lifetimes, block comments) must merely be
//! skipped *correctly*, so that a `"` inside a comment or a `//` inside a
//! string never desynchronizes the scan. That is the entire job of this
//! module; it is not a general-purpose lexer.

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// The raw contents of a string literal (escapes left as written).
    Str(String),
    /// A `//` line comment, without the leading slashes.
    LineComment(String),
    /// Any other single significant character (`:`, `!`, `(`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was scanned.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Scans `src` into a token stream. Never fails: unterminated literals
/// simply consume to end of input, which is good enough for linting code
/// that `rustc` already accepts.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_string(line),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.out.push(Token { tok: Tok::Punct(c), line });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self, line: u32) {
        self.pos += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.out.push(Token { tok: Tok::LineComment(text), line });
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A cooked string starting at the opening `"` (already peeked).
    fn string(&mut self, line: u32) {
        self.pos += 1;
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    content.push('\\');
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                c => content.push(c),
            }
        }
        self.out.push(Token { tok: Tok::Str(content), line });
    }

    /// A raw string starting at the `#`/`"` after the `r`/`br`/`cr` prefix.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            return; // not actually a raw string (e.g. `r#ident`); drop it
        }
        self.pos += 1;
        let mut content = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        content.push('"');
                        for _ in 0..k {
                            content.push('#');
                        }
                        self.pos += k;
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
            content.push(c);
        }
        self.out.push(Token { tok: Tok::Str(content), line });
    }

    /// Either a char literal (`'a'`, `'\n'`) or a lifetime (`'static`).
    fn char_or_lifetime(&mut self) {
        self.pos += 1;
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: skip to the closing quote.
                self.pos += 1;
                self.bump(); // the escaped char itself
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            (Some(_), Some('\'')) => self.pos += 2, // 'x'
            _ => {
                // Lifetime: consume the identifier, no closing quote.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    fn ident_or_prefixed_string(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        match (ident.as_str(), self.peek(0)) {
            // Raw string prefixes: r"..."  r#"..."#  br"..."  cr#"..."#
            ("r" | "br" | "cr", Some('"' | '#')) => self.raw_string(line),
            // Cooked byte/C strings: b"..."  c"..."
            ("b" | "c", Some('"')) => self.string(line),
            // Byte char literal: b'x'
            ("b", Some('\'')) => self.char_or_lifetime(),
            _ => self.out.push(Token { tok: Tok::Ident(ident), line }),
        }
    }

    fn number(&mut self) {
        // Digits plus any alphanumeric suffix (0x1f, 1_000u64). A `.` is
        // left as punctuation; `1.5` scans as two numbers — irrelevant here.
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_hide_tokens() {
        assert_eq!(idents("// HashMap\nfoo /* HashSet */ bar"), ["foo", "bar"]);
        assert!(strings("// \"NDPX_X\"\n/* \"NDPX_Y\" */").is_empty());
    }

    #[test]
    fn strings_hide_comment_markers_and_escapes() {
        let s = strings(r#"let x = "a // not a comment \" still";"#);
        assert_eq!(s, [r#"a // not a comment \" still"#]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(strings(r###"r#"has "quotes" inside"#"###), ["has \"quotes\" inside"]);
        assert_eq!(strings(r#"b"bytes" r"raw""#), ["bytes", "raw"]);
    }

    #[test]
    fn lifetimes_and_chars_do_not_eat_the_file() {
        // Lifetimes and char literals are consumed without emitting tokens;
        // the scan must stay aligned so `tail` still comes through.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; } tail"),
            ["fn", "f", "x", "str", "let", "c", "let", "n", "tail"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* outer /* inner */ still */ after"), ["after"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let toks = lex("\"a\nb\"\nfoo");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1], Token { tok: Tok::Ident("foo".into()), line: 3 });
    }

    #[test]
    fn pragma_comments_are_captured() {
        let toks = lex("// ndpx-lint: allow(det-wallclock): reason\nlet t = 1;");
        assert_eq!(
            toks[0],
            Token {
                tok: Tok::LineComment(" ndpx-lint: allow(det-wallclock): reason".into()),
                line: 1
            }
        );
    }
}
