//! Workspace discovery: find the root, enumerate the `.rs` files to lint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Workspace-relative prefixes excluded from the scan. The lint's own
/// fixture corpus is *deliberately* full of violations.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures/"];

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerates every lintable `.rs` file under `root`, as
/// `(workspace-relative path with forward slashes, absolute path)`,
/// sorted by relative path so reports are deterministic.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    collect(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = relative(root, &path);
            if SKIP_PREFIXES.iter().any(|p| format!("{rel}/").starts_with(p) || rel.starts_with(p))
            {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            out.push((rel, path));
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/sim/src/knobs.rs").exists());
    }

    #[test]
    fn enumerates_sorted_rs_files_and_skips_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = workspace_files(&root).unwrap();
        assert!(files.iter().any(|(rel, _)| rel == "crates/sim/src/engine.rs"));
        assert!(files.iter().all(|(rel, _)| !rel.contains("lint/tests/fixtures")));
        assert!(files.iter().all(|(rel, _)| !rel.starts_with("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
