//! The lint rules, their file scopes, and the suppression-pragma protocol.
//!
//! Rules fall into three families:
//!
//! * **Determinism** (`det-collections`, `det-wallclock`, `det-threadid`) —
//!   apply to the digest-affecting crates only. Those crates' results feed
//!   the byte-identical `BENCH_PERF.json` digest contract, so iteration
//!   order, wall-clock reads, and thread identity must never influence
//!   them.
//! * **Knob hygiene** (`env-read`, `knob-literal`) — apply workspace-wide.
//!   Every environment read and every `NDPX_*` name must live in
//!   `ndpx_sim::knobs`, the single source of truth.
//! * **Telemetry** (`stat-path`) — applies workspace-wide. Dotted registry
//!   paths in string literals must parse under the declared grammar
//!   ([`crate::statpath`]), so a renamed counter cannot leave stale
//!   literals behind.
//!
//! A violation can be suppressed with a pragma on the same line or the
//! line directly above:
//!
//! ```text
//! // ndpx-lint: allow(det-wallclock): profiler wall span; never digested
//! let t0 = Instant::now();
//! ```
//!
//! The justification after the second colon is mandatory (`pragma-justify`)
//! and the pragma must actually suppress something (`pragma-unused`), so
//! allowances cannot rot silently.

use crate::lexer::{lex, Tok, Token};
use crate::statpath;

/// Every rule the linter knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a digest-affecting crate.
    DetCollections,
    /// `Instant::now` or `SystemTime` in a digest-affecting crate.
    DetWallclock,
    /// `thread::current` (thread identity) in a digest-affecting crate.
    DetThreadId,
    /// `env::var`-family read outside the knob registry.
    EnvRead,
    /// `"NDPX_*"` string literal outside the knob registry.
    KnobLiteral,
    /// Registry-path literal that fails the stat-path grammar.
    StatPath,
    /// Pragma without a justification.
    PragmaJustify,
    /// Pragma that suppressed nothing.
    PragmaUnused,
}

impl Rule {
    /// The stable kebab-case name used in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DetCollections => "det-collections",
            Rule::DetWallclock => "det-wallclock",
            Rule::DetThreadId => "det-threadid",
            Rule::EnvRead => "env-read",
            Rule::KnobLiteral => "knob-literal",
            Rule::StatPath => "stat-path",
            Rule::PragmaJustify => "pragma-justify",
            Rule::PragmaUnused => "pragma-unused",
        }
    }

    /// Parses a pragma rule name. Only suppressible rules are accepted —
    /// the pragma rules themselves cannot be allowed away.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "det-collections" => Rule::DetCollections,
            "det-wallclock" => Rule::DetWallclock,
            "det-threadid" => Rule::DetThreadId,
            "env-read" => Rule::EnvRead,
            "knob-literal" => Rule::KnobLiteral,
            "stat-path" => Rule::StatPath,
            _ => return None,
        })
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates whose simulated results feed the digest contract. The
/// determinism rules apply only under these prefixes (plus the top-level
/// cross-crate integration tests).
const DIGEST_SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/mem/",
    "crates/noc/",
    "crates/cxl/",
    "crates/stream/",
    "crates/cache/",
    "crates/workloads/",
    "tests/",
];

/// Module-level allowances, each carrying its reason. Pragmas handle
/// single sites; these handle files whose whole purpose exempts them.
const ALLOWLIST: &[(&str, Rule, &str)] = &[
    (
        "crates/sim/src/telemetry/profile.rs",
        Rule::DetWallclock,
        "the profiler measures wall time by design; dumps carry sim time only",
    ),
    ("crates/sim/src/knobs.rs", Rule::EnvRead, "the registry is the one sanctioned env reader"),
    ("crates/sim/src/knobs.rs", Rule::KnobLiteral, "the registry declares the knob names"),
    ("crates/lint/", Rule::KnobLiteral, "the linter names the prefix it scans for"),
    ("crates/lint/", Rule::StatPath, "the linter declares the grammar patterns"),
];

fn in_digest_scope(path: &str) -> bool {
    DIGEST_SCOPE.iter().any(|p| path.starts_with(p))
}

fn allowlisted(path: &str, rule: Rule) -> bool {
    ALLOWLIST.iter().any(|(prefix, r, _)| *r == rule && path.starts_with(prefix))
}

/// A parsed `// ndpx-lint: allow(rule): justification` pragma.
struct Pragma {
    line: u32,
    rule: Option<Rule>,
    raw_rule: String,
    justified: bool,
    used: bool,
}

fn parse_pragma(line: u32, text: &str) -> Option<Pragma> {
    let text = text.trim_start();
    let rest = text.strip_prefix("ndpx-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (name, after) = rest.split_once(')')?;
    let name = name.trim();
    let justification = after.trim_start().strip_prefix(':').map(str::trim).unwrap_or("");
    Some(Pragma {
        line,
        rule: Rule::from_name(name),
        raw_rule: name.to_string(),
        justified: !justification.is_empty(),
        used: false,
    })
}

/// Lints one file's source. `rel_path` is the workspace-relative path with
/// forward slashes; it selects which rule scopes apply.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut code: Vec<Token> = Vec::new();
    for t in tokens {
        match t.tok {
            Tok::LineComment(text) => {
                if let Some(p) = parse_pragma(t.line, &text) {
                    pragmas.push(p);
                }
            }
            _ => code.push(t),
        }
    }

    let mut found: Vec<Violation> = Vec::new();
    let det = in_digest_scope(rel_path);

    for (i, t) in code.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id) => {
                if det && (id == "HashMap" || id == "HashSet") {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::DetCollections,
                        message: format!(
                            "{id} iteration order is nondeterministic; use BTreeMap/BTreeSet or \
                             sorted iteration"
                        ),
                    });
                } else if det && id == "SystemTime" && !allowlisted(rel_path, Rule::DetWallclock) {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::DetWallclock,
                        message: "SystemTime reads wall clock; simulated results must depend on \
                                  sim time only"
                            .to_string(),
                    });
                } else if det
                    && id == "Instant"
                    && path_call(&code, i, "now")
                    && !allowlisted(rel_path, Rule::DetWallclock)
                {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::DetWallclock,
                        message: "Instant::now reads wall clock; simulated results must depend \
                                  on sim time only"
                            .to_string(),
                    });
                } else if det && id == "thread" && path_call(&code, i, "current") {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::DetThreadId,
                        message: "thread::current exposes thread identity; results must be \
                                  identical at any NDPX_THREADS"
                            .to_string(),
                    });
                } else if id == "env"
                    && ["var", "var_os", "vars", "vars_os"].iter().any(|f| path_call(&code, i, f))
                    && !allowlisted(rel_path, Rule::EnvRead)
                {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::EnvRead,
                        message: "environment reads must go through ndpx_sim::knobs, the central \
                                  knob registry"
                            .to_string(),
                    });
                }
            }
            Tok::Str(s) => {
                if s.contains("NDPX_") && !allowlisted(rel_path, Rule::KnobLiteral) {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::KnobLiteral,
                        message: format!(
                            "knob name literal {s:?}; reference ndpx_sim::knobs::<KNOB>.name \
                             instead"
                        ),
                    });
                } else if statpath::looks_like_stat_path(s)
                    && !statpath::validate(s)
                    && !allowlisted(rel_path, Rule::StatPath)
                {
                    found.push(Violation {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::StatPath,
                        message: format!(
                            "{s:?} is not a registered stat path; see the grammar in \
                             ndpx-lint's statpath module"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    // Apply pragmas: a pragma covers its own line and the next line.
    let mut out: Vec<Violation> = Vec::new();
    for v in found {
        let suppressed = pragmas.iter_mut().find(|p| {
            p.rule == Some(v.rule) && (p.line == v.line || p.line + 1 == v.line) && p.justified
        });
        match suppressed {
            Some(p) => p.used = true,
            None => out.push(v),
        }
    }

    // Pragma hygiene: unknown rules and missing justifications are errors
    // even when nothing fired; an allowance that suppresses nothing is rot.
    for p in &pragmas {
        if p.rule.is_none() {
            out.push(Violation {
                path: rel_path.to_string(),
                line: p.line,
                rule: Rule::PragmaUnused,
                message: format!("pragma names unknown rule {:?}", p.raw_rule),
            });
        } else if !p.justified {
            out.push(Violation {
                path: rel_path.to_string(),
                line: p.line,
                rule: Rule::PragmaJustify,
                message: "pragma needs a justification: // ndpx-lint: allow(rule): <why>"
                    .to_string(),
            });
        } else if !p.used {
            out.push(Violation {
                path: rel_path.to_string(),
                line: p.line,
                rule: Rule::PragmaUnused,
                message: format!("pragma allow({}) suppressed nothing; remove it", p.raw_rule),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// True when the identifier at `i` is followed by `:: <method>` —
/// i.e. tokens `Punct(':') Punct(':') Ident(method)`.
fn path_call(code: &[Token], i: usize, method: &str) -> bool {
    matches!(
        (code.get(i + 1).map(|t| &t.tok), code.get(i + 2).map(|t| &t.tok), code.get(i + 3).map(|t| &t.tok)),
        (Some(Tok::Punct(':')), Some(Tok::Punct(':')), Some(Tok::Ident(m))) if m == method
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/sim/src/engine.rs";
    const BENCH: &str = "crates/bench/src/pool.rs";

    fn rules_of(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn det_rules_fire_only_in_digest_scope() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\nlet id = \
                   std::thread::current().id();";
        assert_eq!(
            rules_of(SIM, src),
            [Rule::DetCollections, Rule::DetWallclock, Rule::DetThreadId]
        );
        assert!(rules_of(BENCH, src).is_empty(), "bench measures wall clock by design");
    }

    #[test]
    fn env_reads_are_banned_everywhere_but_the_registry() {
        let src = "let v = std::env::var(\"HOME\");";
        assert_eq!(rules_of(SIM, src), [Rule::EnvRead]);
        assert_eq!(rules_of(BENCH, src), [Rule::EnvRead]);
        assert!(rules_of("crates/sim/src/knobs.rs", src).is_empty());
        // env! and env::args are not reads of a knob.
        assert!(
            rules_of(SIM, "let p = env!(\"CARGO_MANIFEST_DIR\"); let a = env::args();").is_empty()
        );
    }

    #[test]
    fn knob_literals_are_banned_outside_the_registry() {
        let src = "let v = \"NDPX_THREADS\";";
        assert_eq!(rules_of(BENCH, src), [Rule::KnobLiteral]);
        assert!(rules_of("crates/sim/src/knobs.rs", src).is_empty());
    }

    #[test]
    fn stat_paths_are_checked_in_literals() {
        assert_eq!(rules_of(SIM, "reg.get(\"noc.flits\");"), [Rule::StatPath]);
        assert!(rules_of(SIM, "reg.get(\"noc.bytes\");").is_empty());
        assert!(rules_of(SIM, "path.ends_with(\"report.md\");").is_empty());
    }

    #[test]
    fn pragma_suppresses_line_below_and_same_line() {
        let above = "// ndpx-lint: allow(det-wallclock): timing a cache fill, never digested\n\
                     let t0 = Instant::now();";
        assert!(rules_of(SIM, above).is_empty());
        let same = "let t0 = Instant::now(); // ndpx-lint: allow(det-wallclock): cache fill";
        assert!(rules_of(SIM, same).is_empty());
    }

    #[test]
    fn pragma_without_justification_is_an_error_and_does_not_suppress() {
        let src = "// ndpx-lint: allow(det-wallclock)\nlet t0 = Instant::now();";
        let rules = rules_of(SIM, src);
        assert!(rules.contains(&Rule::DetWallclock), "unjustified pragma must not suppress");
        assert!(rules.contains(&Rule::PragmaJustify));
    }

    #[test]
    fn unused_and_unknown_pragmas_are_errors() {
        assert_eq!(
            rules_of(SIM, "// ndpx-lint: allow(det-wallclock): nothing here needs it\nlet x = 1;"),
            [Rule::PragmaUnused]
        );
        assert_eq!(
            rules_of(SIM, "// ndpx-lint: allow(not-a-rule): whatever\nlet x = 1;"),
            [Rule::PragmaUnused]
        );
    }

    #[test]
    fn comments_and_strings_do_not_false_positive() {
        let src = "// HashMap is banned here\n/* Instant::now too */\nlet s = \"HashMap \
                   Instant::now thread::current\";";
        assert!(rules_of(SIM, src).is_empty());
    }

    #[test]
    fn a_pragma_cannot_allow_the_pragma_rules() {
        assert!(Rule::from_name("pragma-justify").is_none());
        assert!(Rule::from_name("pragma-unused").is_none());
    }
}
