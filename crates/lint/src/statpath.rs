//! The registry-path grammar: which dotted stat paths the simulator can
//! actually publish.
//!
//! Every subsystem registers its counters under hierarchical dotted paths
//! (`StatRegistry`), and tests, reporters, and trace counter-tracks refer
//! to those paths as string literals. A literal that drifts from the
//! registered name — a renamed leaf, a stale `link[e]` index form — fails
//! silently: `registry.get` returns `None` and the assertion or diff just
//! stops seeing the series. This module declares the full grammar so
//! `ndpx-lint` can reject such literals at CI time.
//!
//! A pattern is a dotted sequence of segments where `#` matches one or
//! more decimal digits in place (`unit#` ⇒ `unit003`, `s#-s#` ⇒
//! `s00-s01`). A candidate literal is valid when it is an exact match or a
//! segment-boundary prefix of some pattern; a trailing dot (as in
//! `starts_with("engine.batch.")`) marks an explicit prefix.

/// Top-level scope names the grammar knows about. Only literals whose
/// first segment is one of these roots (or `unit#`) are judged at all, so
/// arbitrary dotted strings — file names, schema tags — never match.
pub const ROOTS: &[&str] =
    &["chaos", "engine", "fault", "slo", "profile", "noc", "core", "mem", "cxl", "stream_table"];

/// DRAM device leaves, shared by `mem.*`, `cxl.ddr.*`, and `unit#.dram.*`.
const DRAM: &[&str] = &[
    "activates",
    "bytes",
    "dynamic_pj",
    "reads",
    "row_conflicts",
    "row_empty",
    "row_hit_rate",
    "row_hits",
    "writes",
];

/// Set-associative cache leaves, shared by every per-unit cache level.
const CACHE: &[&str] = &["hit_rate", "hits", "misses", "occupancy", "writebacks"];

/// Sim-phase profiler phase labels (`Phase::label`).
const PHASES: &[&str] = &["trace_gen", "warmup", "run", "sampler_solve", "rehash", "reconfig"];

/// Builds the full pattern list. The shape mirrors how the registries are
/// populated: fixed leaves are written out, families (DRAM devices, cache
/// levels, profiler phases) are composed.
pub fn patterns() -> Vec<String> {
    let mut p: Vec<String> = Vec::with_capacity(160);
    let mut push = |s: &str| p.push(s.to_string());

    // Engine: run loop, run-ahead batching, and the event queue. The
    // `ops`/`queue.depth` leaves are live timeline series rather than
    // end-of-run registry nodes; both namespaces share this grammar.
    for leaf in ["events", "stalls", "peak_queue_depth", "ops"] {
        push(&format!("engine.{leaf}"));
    }
    for leaf in [
        "enabled",
        "batches",
        "ops",
        "fast_hits",
        "fast_hit_ratio",
        "max_len",
        "mean_len",
        "len_c#",
    ] {
        push(&format!("engine.batch.{leaf}"));
    }
    for leaf in
        ["depth", "scheduled", "processed", "overflow_scheduled", "peak_depth", "bucket_occ#"]
    {
        push(&format!("engine.queue.{leaf}"));
    }

    // Host core-side counters.
    for leaf in [
        "access_latency",
        "bypass",
        "cache_hits",
        "cache_misses",
        "invalidations",
        "l#_hits",
        "llc_hits",
        "llc_misses",
        "local_hits",
        "mem_ops",
        "metadata_dram",
        "migrations",
        "reconfigs",
        "replicated_fraction",
        "slb_misses",
    ] {
        push(&format!("core.{leaf}"));
    }

    // Memory devices: host DRAM, the CXL extension's DDR, per-unit stacks.
    for leaf in DRAM {
        push(&format!("mem.{leaf}"));
        push(&format!("cxl.ddr.{leaf}"));
        push(&format!("unit#.dram.{leaf}"));
    }
    for leaf in ["bytes", "degradation", "latency", "link_pj", "requests"] {
        push(&format!("cxl.{leaf}"));
    }

    // Per-unit caches: data levels, metadata cache, stream lookaside buffer.
    for level in ["l#", "meta", "slb"] {
        for leaf in CACHE {
            push(&format!("unit#.{level}.{leaf}"));
        }
    }

    // NoC: aggregate counters plus per-link `s<src>-s<dst>` scopes.
    for leaf in ["messages", "bytes", "intra_hops", "inter_hops", "dynamic_pj"] {
        push(&format!("noc.{leaf}"));
    }
    for leaf in
        ["busy_ps", "bytes", "flits", "forwarded", "peak_inflight", "peak_wait_ps", "retransmits"]
    {
        push(&format!("noc.link.s#-s#.{leaf}"));
    }

    // Fault injection: per-injector decision counts and outcomes.
    for leaf in ["ce", "ue", "rolls", "scrub_ps"] {
        push(&format!("fault.mem.{leaf}"));
    }
    for leaf in ["crc_errors", "crc_retries", "retrain_wait_ps", "retrains", "rolls"] {
        push(&format!("fault.cxl.{leaf}"));
    }
    for leaf in ["retransmits", "rolls"] {
        push(&format!("fault.noc.{leaf}"));
    }
    push("fault.stream.aborts");

    // Chaos schedules: hard-failure escalation counters and the per-event
    // recovery SLO records (`e00`, `e01`, … in schedule order).
    for leaf in [
        "events",
        "applied",
        "restores",
        "ops_aborted",
        "streams_poisoned",
        "forced_reconfigs",
        "dead_units",
        "dead_links",
        "dead_resident_streams",
        "availability",
    ] {
        push(&format!("chaos.{leaf}"));
    }
    for leaf in ["outages", "probes", "stall_ps"] {
        push(&format!("chaos.cxl.{leaf}"));
    }
    for leaf in ["at_ps", "ttr_ps", "streams_migrated", "ops_aborted"] {
        push(&format!("fault.recovery.e#.{leaf}"));
    }

    // SLO epoch statistics (registry) and their trace counter-tracks.
    for leaf in [
        "epochs",
        "downtime_ns",
        "staleness_ns",
        "worst_staleness_ns",
        "reconfig_drain_ns",
        "epoch_p#_ns",
        "worst_p#_ns",
    ] {
        push(&format!("slo.{leaf}"));
    }
    push("slo.streams.poisoned");
    push("slo.streams.refetched");

    // Stream table occupancy.
    for leaf in ["capacity", "streams", "poisoned"] {
        push(&format!("stream_table.{leaf}"));
    }

    // Sim-phase profiler: a latency node per phase in the registry, plus
    // `wall_us`/`sim_us` counter-tracks in the Chrome trace.
    for phase in PHASES {
        push(&format!("profile.{phase}"));
        push(&format!("profile.{phase}.wall_us"));
        push(&format!("profile.{phase}.sim_us"));
    }

    p
}

/// True when `s` is shaped like a registry path claim: at least two dotted
/// segments, drawn from the path alphabet, rooted in a known scope. Only
/// such strings are validated — everything else is not this grammar's
/// business.
pub fn looks_like_stat_path(s: &str) -> bool {
    if !s.contains('.') {
        return false;
    }
    if !s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.#[]-".contains(c)) {
        return false;
    }
    let root = s.split('.').next().unwrap_or("");
    ROOTS.contains(&root) || segment_matches("unit#", root)
}

/// True when `s` exactly matches a pattern or is a segment-boundary prefix
/// of one. A trailing dot requests prefix matching explicitly.
pub fn validate(s: &str) -> bool {
    let mut segs: Vec<&str> = s.split('.').collect();
    if segs.last() == Some(&"") {
        segs.pop();
        if segs.is_empty() || segs.iter().any(|seg| seg.is_empty()) {
            return false;
        }
    } else if segs.iter().any(|seg| seg.is_empty()) {
        return false;
    }
    patterns().iter().any(|pat| {
        let pat_segs: Vec<&str> = pat.split('.').collect();
        segs.len() <= pat_segs.len()
            && segs.iter().zip(&pat_segs).all(|(c, p)| segment_matches(p, c))
    })
}

/// Matches one candidate segment against one pattern segment, where `#`
/// in the pattern consumes one or more decimal digits.
fn segment_matches(pattern: &str, candidate: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let cand: Vec<char> = candidate.chars().collect();
    fn go(pat: &[char], cand: &[char]) -> bool {
        match pat.first() {
            None => cand.is_empty(),
            Some('#') => {
                if cand.first().is_none_or(|c| !c.is_ascii_digit()) {
                    return false;
                }
                // Greedy with backtracking: consume 1..=k digits.
                let digits = cand.iter().take_while(|c| c.is_ascii_digit()).count();
                (1..=digits).any(|k| go(&pat[1..], &cand[k..]))
            }
            Some(p) => cand.first() == Some(p) && go(&pat[1..], &cand[1..]),
        }
    }
    go(&pat, &cand)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_paths_validate() {
        for p in [
            "engine.events",
            "engine.batch.len_c3",
            "engine.queue.bucket_occ12",
            "core.l1_hits",
            "mem.row_hit_rate",
            "cxl.ddr.activates",
            "unit003.dram.bytes",
            "unit0.l1.hit_rate",
            "unit12.slb.misses",
            "noc.link.s00-s01.flits",
            "fault.stream.aborts",
            "slo.epoch_p99_ns",
            "slo.streams.poisoned",
            "stream_table.poisoned",
            "profile.run",
            "profile.sampler_solve.wall_us",
            "chaos.applied",
            "chaos.dead_resident_streams",
            "chaos.cxl.stall_ps",
            "fault.recovery.e00.ttr_ps",
            "fault.recovery.e12.streams_migrated",
        ] {
            assert!(validate(p), "{p} must validate");
        }
    }

    #[test]
    fn prefixes_validate_at_segment_boundaries() {
        for p in [
            "fault.noc",
            "engine.batch.",
            "engine.queue.",
            "slo.",
            "profile.",
            "noc.link",
            "chaos.",
            "fault.recovery.",
        ] {
            assert!(validate(p), "{p} must validate as a prefix");
        }
    }

    #[test]
    fn stale_and_misspelled_paths_fail() {
        for p in [
            "noc.flits",                 // aggregate leaf that never existed
            "noc.stack00.link[e]",       // the PR 8 stale index form
            "slo.p99_ns",                // pre-epoch spelling
            "engine.batch.fasthits",     // missing underscore
            "core.l1hits",               // digit glued to the wrong side
            "unit.dram.bytes",           // unit without an index
            "noc.link.s0x-s01.flits",    // non-digit where digits belong
            "engine.batches",            // leaf of the wrong scope
            "stream_table.streams.live", // too deep
            "chaos.availability_pct",    // leaf that never existed
            "fault.recovery.e.ttr_ps",   // event id without digits
        ] {
            assert!(!validate(p), "{p} must fail validation");
        }
    }

    #[test]
    fn unrelated_strings_are_not_this_grammars_business() {
        for s in [
            "report.md",
            "ndpx-timeline-v1",
            "hbm/ndpext/pr",
            "a.x",
            "stack00.mesh.flits",
            "profile.{}.wall_us",
            "no_dots_here",
        ] {
            assert!(!looks_like_stat_path(s), "{s} must be ignored");
        }
        for s in ["noc.flits", "slo.p99_ns", "unit0.l1.hits"] {
            assert!(looks_like_stat_path(s), "{s} must be judged");
        }
    }

    #[test]
    fn segment_matcher_handles_multiple_holes() {
        assert!(segment_matches("s#-s#", "s00-s01"));
        assert!(segment_matches("s#-s#", "s1-s23"));
        assert!(!segment_matches("s#-s#", "s-s01"));
        assert!(!segment_matches("s#-s#", "s00s01"));
        assert!(segment_matches("len_c#", "len_c0"));
        assert!(!segment_matches("len_c#", "len_c"));
        assert!(!segment_matches("len_c#", "len_c#"));
    }
}
