//! `ndpx-lint` — the workspace's determinism & telemetry analyzer.
//!
//! Usage:
//!   ndpx-lint [--check] [--format text|json] [--root DIR]
//!   ndpx-lint --knobs-md          # print docs/knobs.md to stdout
//!
//! Exit status: `0` clean, `1` violations found, `2` usage or I/O error.
//! `--check` is an explicit alias for the default lint mode, kept so CI
//! invocations read as intent rather than accident.

use std::path::PathBuf;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format_json = false;
    let mut knobs_md = false;
    let mut root: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {}
            "--knobs-md" => knobs_md = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    other => {
                        eprintln!("ndpx-lint: --format needs text|json, got {other:?}");
                        exit(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("ndpx-lint: --root needs a directory");
                        exit(2);
                    }
                }
            }
            other => {
                eprintln!("ndpx-lint: unknown argument {other:?}");
                eprintln!("usage: ndpx-lint [--check] [--format text|json] [--root DIR]");
                eprintln!("       ndpx-lint --knobs-md");
                exit(2);
            }
        }
        i += 1;
    }

    if knobs_md {
        print!("{}", ndpx_lint::knobs_md());
        return;
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        ndpx_lint::walk::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("ndpx-lint: no workspace root found (run inside the repo or pass --root)");
        exit(2);
    };

    let violations = match ndpx_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ndpx-lint: scan failed: {e}");
            exit(2);
        }
    };

    if format_json {
        print!("{}", ndpx_lint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule.name(), v.message);
        }
        if violations.is_empty() {
            eprintln!("ndpx-lint: workspace clean");
        } else {
            eprintln!("ndpx-lint: {} violation(s)", violations.len());
        }
    }
    exit(if violations.is_empty() { 0 } else { 1 });
}
