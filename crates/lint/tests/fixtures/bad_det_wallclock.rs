// Fixture: wall-clock reads in a digest-affecting crate.
use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_nanos()
}
