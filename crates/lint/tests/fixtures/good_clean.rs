// Fixture: deterministic idioms the rules must accept untouched.
use std::collections::{BTreeMap, BTreeSet};

fn build() -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    let mut s = BTreeSet::new();
    s.insert(3u64);
    let _paths = ["core.mem_ops", "noc.link.s00-s01.flits", "unit007.slb.hit_rate"];
    m
}
