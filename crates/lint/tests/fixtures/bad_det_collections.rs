// Fixture: HashMap/HashSet in a digest-affecting crate.
use std::collections::HashMap;
use std::collections::HashSet;

fn build() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    let mut s = HashSet::new();
    s.insert(3u64);
    m
}
