// Fixture: environment reads outside ndpx_sim::knobs.
fn reads() {
    let _a = std::env::var("HOME");
    let _b = std::env::var_os("PATH");
    for (_k, _v) in std::env::vars() {}
}
