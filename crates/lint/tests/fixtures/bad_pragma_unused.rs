// Fixture: a justified pragma that suppresses nothing, plus one naming
// an unknown rule. Both are rot and must be reported.
fn quiet() -> u32 {
    // ndpx-lint: allow(det-wallclock): nothing below reads the clock
    let x = 1;
    // ndpx-lint: allow(no-such-rule): not a rule at all
    x + 1
}
