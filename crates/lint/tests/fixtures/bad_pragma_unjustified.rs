// Fixture: a pragma without the mandatory justification. It neither
// suppresses the violation below nor passes pragma hygiene.
fn measure() -> std::time::Instant {
    // ndpx-lint: allow(det-wallclock)
    std::time::Instant::now()
}
