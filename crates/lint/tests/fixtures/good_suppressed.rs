// Fixture: correctly suppressed hazards — justified pragmas on the line
// above and on the same line — plus benign look-alikes that must not fire:
// hazard names in comments and strings, env! macro reads, and dotted
// strings outside the grammar's roots.
fn timed_fill() -> u128 {
    // ndpx-lint: allow(det-wallclock): cache-fill timing; never reaches a digest
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() // Instant::now in a comment is fine
}

fn benign() -> &'static str {
    let _manifest = env!("CARGO_MANIFEST_DIR");
    let _args = std::env::args().count();
    let _not_a_path = "stack00.mesh.flits";
    let _valid_path = "engine.batch.fast_hits";
    "HashMap in a string is fine"
}

fn same_line() -> bool {
    let t = std::time::SystemTime::now(); // ndpx-lint: allow(det-wallclock): same-line form
    format!("{t:?}").is_empty()
}
