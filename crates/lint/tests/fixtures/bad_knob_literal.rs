// Fixture: a knob name spelled as a string literal outside the registry.
fn gate() -> bool {
    let name = "NDPX_THREADS";
    !name.is_empty()
}
