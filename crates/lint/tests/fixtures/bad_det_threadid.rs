// Fixture: thread identity influencing behavior in a digest crate.
fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}
