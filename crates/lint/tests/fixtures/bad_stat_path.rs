// Fixture: stale registry-path literals (the PR 8 bug class).
fn stale(json: &str) -> bool {
    json.contains("noc.stack00.link[e]") || json.contains("slo.p99_ns")
}
