//! Integration tests: the fixture corpus pins each rule's behavior, and
//! the self-check pins the real workspace at zero violations — the same
//! gate CI runs via `cargo run -p ndpx-lint -- --check`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ndpx_lint::{lint_source, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived in a digest-affecting crate.
fn lint_fixture(name: &str) -> Vec<(u32, Rule)> {
    let src = fixture(name);
    lint_source(&format!("crates/core/src/{name}"), &src)
        .into_iter()
        .map(|v| (v.line, v.rule))
        .collect()
}

fn rule_counts(found: &[(u32, Rule)]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for (_, r) in found {
        *m.entry(r.name()).or_insert(0) += 1;
    }
    m
}

#[test]
fn det_collections_fixture() {
    let counts = rule_counts(&lint_fixture("bad_det_collections.rs"));
    assert_eq!(
        counts.get("det-collections"),
        Some(&5),
        "two uses, one return type, two constructions"
    );
    assert_eq!(counts.len(), 1, "no other rules fire: {counts:?}");
}

#[test]
fn det_wallclock_fixture() {
    let counts = rule_counts(&lint_fixture("bad_det_wallclock.rs"));
    // SystemTime in the use and at the call, plus one Instant::now. The
    // bare `Instant` in the use list is a type mention, not a clock read.
    assert_eq!(counts.get("det-wallclock"), Some(&3));
    assert_eq!(counts.len(), 1);
}

#[test]
fn det_threadid_fixture() {
    let counts = rule_counts(&lint_fixture("bad_det_threadid.rs"));
    assert_eq!(counts.get("det-threadid"), Some(&1));
    assert_eq!(counts.len(), 1);
}

#[test]
fn env_read_fixture() {
    let counts = rule_counts(&lint_fixture("bad_env_read.rs"));
    assert_eq!(counts.get("env-read"), Some(&3), "var, var_os, and vars");
    assert_eq!(counts.len(), 1);
}

#[test]
fn knob_literal_fixture() {
    let counts = rule_counts(&lint_fixture("bad_knob_literal.rs"));
    assert_eq!(counts.get("knob-literal"), Some(&1));
    assert_eq!(counts.len(), 1);
}

#[test]
fn stat_path_fixture() {
    let found = lint_fixture("bad_stat_path.rs");
    let counts = rule_counts(&found);
    assert_eq!(counts.get("stat-path"), Some(&2), "stale link-index form and pre-epoch p99");
    assert_eq!(counts.len(), 1);
}

#[test]
fn unjustified_pragma_neither_suppresses_nor_passes() {
    let found = lint_fixture("bad_pragma_unjustified.rs");
    let counts = rule_counts(&found);
    assert_eq!(counts.get("det-wallclock"), Some(&1));
    assert_eq!(counts.get("pragma-justify"), Some(&1));
}

#[test]
fn unused_and_unknown_pragmas_are_reported() {
    let found = lint_fixture("bad_pragma_unused.rs");
    let counts = rule_counts(&found);
    assert_eq!(counts.get("pragma-unused"), Some(&2), "one unused, one unknown rule");
    assert_eq!(counts.len(), 1);
}

#[test]
fn good_fixtures_are_clean() {
    for name in ["good_suppressed.rs", "good_clean.rs"] {
        let found = lint_fixture(name);
        assert!(found.is_empty(), "{name} must lint clean, got {found:?}");
    }
}

#[test]
fn det_rules_do_not_apply_outside_digest_scope() {
    // The same wall-clock fixture is fine in bench, which measures wall
    // clock by design — but the knob/env/stat rules still apply there.
    let wall = fixture("bad_det_wallclock.rs");
    assert!(lint_source("crates/bench/src/fixture.rs", &wall).is_empty());
    let env = fixture("bad_env_read.rs");
    assert_eq!(lint_source("crates/bench/src/fixture.rs", &env).len(), 3);
}

#[test]
fn the_workspace_lints_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "bad root {}", root.display());
    let violations = ndpx_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "the workspace must lint clean:\n{}",
        violations
            .iter()
            .map(|v| format!("  {}:{}: [{}] {}", v.path, v.line, v.rule.name(), v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_committed_pragma_is_exercised() {
    // The self-check above proves no pragma is unused; this pins the
    // committed pragma count so new allowances stand out in review.
    let root: PathBuf =
        Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let mut pragmas = 0usize;
    for (rel, abs) in ndpx_lint::walk::workspace_files(&root).unwrap() {
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let src = std::fs::read_to_string(abs).unwrap();
        pragmas += src.matches("ndpx-lint: allow(").count();
    }
    assert_eq!(pragmas, 3, "two profiler spans in core plus the trace-cache span in workloads");
}
