//! Statistics primitives: counters, mean accumulators, and histograms.
//!
//! The system models accumulate into these small value types and the bench
//! harness reads them out at the end of a run; nothing here is thread-shared.

use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ndpx_sim::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0.0 if `total` is zero).
    pub fn ratio_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Accumulates a total duration and a sample count; reports the mean.
///
/// # Examples
///
/// ```
/// use ndpx_sim::stats::LatencyStat;
/// use ndpx_sim::time::Time;
///
/// let mut s = LatencyStat::default();
/// s.record(Time::from_ns(10));
/// s.record(Time::from_ns(30));
/// assert_eq!(s.mean().as_ns(), 20);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStat {
    total: Time,
    count: u64,
}

impl LatencyStat {
    /// Creates an empty statistic.
    pub const fn new() -> Self {
        LatencyStat { total: Time::ZERO, count: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, t: Time) {
        self.total += t;
        self.count += 1;
    }

    /// Sum of all samples.
    pub const fn total(&self) -> Time {
        self.total
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value ([`Time::ZERO`] when empty).
    pub fn mean(&self) -> Time {
        match self.total.as_ps().checked_div(self.count) {
            Some(ps) => Time::from_ps(ps),
            None => Time::ZERO,
        }
    }

    /// Merges another statistic into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.total += other.total;
        self.count += other.count;
    }
}

/// Accumulates a running sum and count of dimensionless samples; reports the
/// mean. The unit-agnostic sibling of [`LatencyStat`], used by the stat
/// registry for ratios, occupancies, and other non-time means.
///
/// # Examples
///
/// ```
/// use ndpx_sim::stats::MeanAcc;
///
/// let mut m = MeanAcc::default();
/// m.record(1.0);
/// m.record(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(MeanAcc::default().mean(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAcc {
    sum: f64,
    count: u64,
}

impl MeanAcc {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        MeanAcc { sum: 0.0, count: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (`0.0` when empty — an empty accumulator never
    /// reports NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAcc) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A base-2 logarithmic latency histogram with percentile readout.
///
/// Bucket `i` covers latencies in `[2^i, 2^(i+1))` nanoseconds, with bucket 0
/// also absorbing sub-nanosecond samples. Alongside the buckets the histogram
/// tracks the exact sample count and total, so the mean is exact while the
/// percentiles are bucket-floor approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: Time,
}

/// Former name of [`Histogram`], kept for readability at call sites that
/// predate the telemetry layer.
pub type LogHistogram = Histogram;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Buckets cover up to 2^31 ns (~2 s), far beyond any access latency.
    const BUCKETS: usize = 32;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; Self::BUCKETS], total: Time::ZERO }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, t: Time) {
        let ns = t.as_ns();
        let idx =
            if ns == 0 { 0 } else { (63 - ns.leading_zeros() as usize).min(Self::BUCKETS - 1) };
        self.buckets[idx] += 1;
        self.total += t;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples.
    pub const fn total(&self) -> Time {
        self.total
    }

    /// Exact mean sample value ([`Time::ZERO`] when empty).
    pub fn mean(&self) -> Time {
        match self.total.as_ps().checked_div(self.count()) {
            Some(ps) => Time::from_ps(ps),
            None => Time::ZERO,
        }
    }

    /// Iterator of `(bucket_floor_ns, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// An approximate percentile (by bucket floor). `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Time {
        assert!((0.0..=1.0).contains(&p), "percentile must be within [0, 1]");
        let total = self.count();
        if total == 0 {
            return Time::ZERO;
        }
        let target = (p * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let floor_ns = if i == 0 { 0 } else { 1u64 << i };
                return Time::from_ns(floor_ns);
            }
        }
        Time::from_ns(1 << (Self::BUCKETS - 1))
    }

    /// Median latency (bucket floor).
    pub fn p50(&self) -> Time {
        self.percentile(0.50)
    }

    /// 95th-percentile latency (bucket floor).
    pub fn p95(&self) -> Time {
        self.percentile(0.95)
    }

    /// 99th-percentile latency (bucket floor).
    pub fn p99(&self) -> Time {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.ratio_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
    }

    #[test]
    fn latency_mean_and_merge() {
        let mut a = LatencyStat::new();
        a.record(Time::from_ns(4));
        let mut b = LatencyStat::new();
        b.record(Time::from_ns(8));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_ns(), 6);
        assert_eq!(LatencyStat::new().mean(), Time::ZERO);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(Time::from_ns(2));
        }
        for _ in 0..10 {
            h.record(Time::from_ns(1024));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5).as_ns(), 2);
        assert_eq!(h.percentile(0.99).as_ns(), 1024);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(2, 90), (1024, 10)]);
    }

    #[test]
    fn histogram_zero_and_huge() {
        let mut h = LogHistogram::new();
        h.record(Time::ZERO);
        h.record(Time::from_us(4_000_000)); // 4s, clamps to top bucket
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new();
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Time::ZERO);
        }
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.iter().count(), 0, "empty histogram exposes no buckets");
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(Time::from_ns(300)); // bucket [256, 512)
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p).as_ns(), 256, "p={p}");
        }
        // p=0 has target 0, which the very first (empty) bucket satisfies —
        // the 0th percentile is the distribution's floor, not a sample.
        assert_eq!(h.percentile(0.0), Time::ZERO);
        assert_eq!(h.mean().as_ns(), 300, "mean is exact, not bucket-floored");
    }

    #[test]
    fn all_equal_samples_collapse_to_one_bucket() {
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            h.record(Time::from_ns(47)); // bucket [32, 64)
        }
        assert_eq!(h.p50().as_ns(), 32);
        assert_eq!(h.p95().as_ns(), 32);
        assert_eq!(h.p99().as_ns(), 32);
        assert_eq!(h.mean().as_ns(), 47);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(32, 10_000)]);
    }

    #[test]
    fn top_bucket_saturation_reports_top_floor() {
        let mut h = Histogram::new();
        // Everything at or above 2^31 ns lands in the last bucket, including
        // durations whose log2 exceeds the bucket range.
        h.record(Time::from_ns(1 << 31));
        h.record(Time::from_ns(u64::MAX >> 12));
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50().as_ns(), 1 << 31);
        assert_eq!(h.percentile(1.0).as_ns(), 1 << 31);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(1 << 31, 2)]);
        // A mix stays monotone: p50 in a low bucket, p99 saturated at top.
        let mut m = Histogram::new();
        for _ in 0..99 {
            m.record(Time::from_ns(8));
        }
        m.record(Time::from_ns(u64::MAX >> 12));
        assert_eq!(m.p50().as_ns(), 8);
        assert_eq!(m.p99().as_ns(), 8);
        assert_eq!(m.percentile(1.0).as_ns(), 1 << 31);
    }
}
