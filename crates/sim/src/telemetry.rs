//! Full-stack telemetry: hierarchical stat registry, windowed metric
//! timelines, a sim-phase profiler, Chrome-trace event export, and a
//! levelled logging facade.
//!
//! The pieces are independent but share one design rule: **nothing here
//! may perturb simulation results**. Stats are read out of the models after a
//! run completes, timeline snapshots and traces are keyed to simulated
//! timestamps only, and the log facade defaults to warnings-only so default
//! runs stay silent.
//!
//! * [`registry`] — [`StatRegistry`]: subsystems publish named
//!   `Counter`/`MeanAcc`/`Histogram` nodes under hierarchical dotted paths
//!   (`noc.link.s00-s01.flits`), serialized deterministically to JSON.
//! * [`timeline`] — [`TimelineSampler`]: opt-in registry snapshots in fixed
//!   sim-time windows rendered as per-window delta series, enabled via
//!   `NDPX_TIMELINE=<path>`; byte-identical at any thread count.
//! * [`profile`] — [`PhaseProfiler`]: per-phase wall/sim time attribution
//!   (trace-gen, warmup, run, sampler-solve, rehash, reconfig), enabled via
//!   `NDPX_PROFILE=1`; sim time goes to the registry, wall time to the trace.
//! * [`trace`] — [`TraceSink`]: an opt-in bounded ring buffer of simulation
//!   events written as Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`), enabled via `NDPX_TRACE=<path>`.
//! * [`json`] — [`Json`]: the dependency-free JSON parser backing the trace
//!   validator and the `ndpx_report` run-diff tool.
//! * [`log`] — a tiny levelled `eprintln!` switchboard (`NDPX_LOG=debug`)
//!   replacing ad-hoc debug prints in the system models.

pub mod json;
pub mod log;
pub mod profile;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use json::Json;
pub use profile::{Phase, PhaseProfiler, ProfileSpan};
pub use registry::{StatRegistry, StatScope, StatValue};
pub use timeline::{TimelineConfig, TimelineSampler};
pub use trace::{validate_chrome_trace, TraceConfig, TraceSink};
