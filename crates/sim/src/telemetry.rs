//! Full-stack telemetry: hierarchical stat registry, Chrome-trace event
//! export, and a levelled logging facade.
//!
//! The three pieces are independent but share one design rule: **nothing here
//! may perturb simulation results**. Stats are read out of the models after a
//! run completes, traces are recorded from simulated timestamps only, and the
//! log facade defaults to warnings-only so default runs stay silent.
//!
//! * [`registry`] — [`StatRegistry`]: subsystems publish named
//!   `Counter`/`MeanAcc`/`Histogram` nodes under hierarchical dotted paths
//!   (`stack00.mesh.link[e].flits`), serialized deterministically to JSON.
//! * [`trace`] — [`TraceSink`]: an opt-in bounded ring buffer of simulation
//!   events written as Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`), enabled via `NDPX_TRACE=<path>`.
//! * [`log`] — a tiny levelled `eprintln!` switchboard (`NDPX_LOG=debug`)
//!   replacing ad-hoc debug prints in the system models.

pub mod log;
pub mod registry;
pub mod trace;

pub use registry::{StatRegistry, StatScope, StatValue};
pub use trace::{validate_chrome_trace, TraceConfig, TraceSink};
