//! Deterministic pseudo-random number generation and hashing.
//!
//! Every stochastic choice in the simulator (synthetic datasets, hashed cache
//! placement, sampled sets) flows from the seeded generators here, so a run is
//! a pure function of its configuration. We implement SplitMix64 (seeding and
//! hashing) and xoshiro256\*\* (bulk generation) directly; both are public
//! domain algorithms with well-known reference outputs that the tests pin.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used directly as a seeding sequence and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a 64-bit value into a well-distributed 64-bit hash (stateless).
///
/// This is the finalizer used for hashed data placement: element IDs and
/// cacheline addresses are mapped to cache sets and NDP units through it.
///
/// # Examples
///
/// ```
/// use ndpx_sim::rng::mix64;
/// // Deterministic and avalanching: one input bit flips ~half the output.
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Hashes `x` into the range `[0, n)`.
///
/// Uses the multiply-shift range reduction, which avoids the modulo bias of
/// `hash % n` for the set/unit counts used by the cache models.
///
/// # Panics
///
/// Panics if `n` is zero.
#[inline]
pub fn hash_range(x: u64, n: u64) -> u64 {
    assert!(n > 0, "hash_range requires a non-empty range");
    ((mix64(x) as u128 * n as u128) >> 64) as u64
}

/// xoshiro256\*\* pseudo-random generator.
///
/// The workhorse RNG for synthetic dataset generation. Deterministic for a
/// given seed, `Copy`-free, cheap to fork per worker.
///
/// # Examples
///
/// ```
/// use ndpx_sim::rng::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires a non-empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> Self {
        Xoshiro256::seed_from(self.next_u64())
    }

    /// A value drawn from a (truncated) power-law over `[0, n)` with
    /// exponent `alpha > 1`; small indices are most likely.
    ///
    /// Used for skewed access patterns (e.g. recommendation-system embedding
    /// rows and graph degree distributions).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha <= 1.0`.
    pub fn powerlaw_below(&mut self, n: u64, alpha: f64) -> u64 {
        PowerlawSampler::new(n, alpha).sample(self)
    }
}

/// Repeated truncated power-law draws with fixed `(n, alpha)`.
///
/// Inverse-CDF sampling needs two `powf` evaluations per draw, but one of
/// them — the truncation term `n^(1-alpha)` — depends only on the
/// distribution parameters. This sampler hoists it (and the inverse
/// exponent) out of the per-draw path; every draw is bit-identical to
/// [`Xoshiro256::powerlaw_below`] with the same parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerlawSampler {
    last: u64,
    /// `1 - n^(1-alpha)`: the truncated-CDF scale factor.
    trunc: f64,
    /// `1 / (1-alpha)`: the inverse-CDF exponent.
    inv_exp: f64,
}

impl PowerlawSampler {
    /// Prepares a sampler over `[0, n)` with exponent `alpha > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha <= 1.0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "powerlaw_below requires a non-empty range");
        assert!(alpha > 1.0, "powerlaw exponent must exceed 1");
        PowerlawSampler {
            last: n - 1,
            trunc: 1.0 - (n as f64).powf(1.0 - alpha),
            inv_exp: 1.0 / (1.0 - alpha),
        }
    }

    /// Draws one value; small indices are most likely.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        // Inverse-CDF sampling of a Pareto-like distribution truncated to n.
        let u = rng.next_f64();
        let x = (1.0 - u * self.trunc).powf(self.inv_exp);
        (x as u64).min(self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the published algorithm.
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Determinism against a fresh state.
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), a);
    }

    #[test]
    fn xoshiro_is_deterministic_and_uniformish() {
        let mut r = Xoshiro256::seed_from(42);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn below_covers_range_and_stays_in_bounds() {
        let mut r = Xoshiro256::seed_from(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_divergent_streams() {
        let mut a = Xoshiro256::seed_from(9);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn hash_range_bounds() {
        for i in 0..1000u64 {
            assert!(hash_range(i, 17) < 17);
        }
    }

    #[test]
    fn powerlaw_skews_low() {
        let mut r = Xoshiro256::seed_from(3);
        let n = 1000;
        let draws: Vec<u64> = (0..10_000).map(|_| r.powerlaw_below(n, 2.0)).collect();
        assert!(draws.iter().all(|&d| d < n));
        let low = draws.iter().filter(|&&d| d < 10).count();
        // With alpha=2, ~90% of mass sits below index 10 for n=1000.
        assert!(low > 5_000, "power law not skewed: {low}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
