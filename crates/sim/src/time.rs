//! Simulated time.
//!
//! All simulated time in the workspace is expressed in integer **picoseconds**
//! wrapped in the [`Time`] newtype. Picosecond resolution lets the models mix
//! a 2 GHz core clock (500 ps), sub-nanosecond DRAM clocks (HBM3-1600:
//! 625 ps), and NoC hop latencies (1.5 ns) without rounding error.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic is identical and the simulator never needs a wall-clock epoch.
///
/// # Examples
///
/// ```
/// use ndpx_sim::time::Time;
///
/// let hop = Time::from_ns(10);
/// let t = Time::ZERO + hop * 3;
/// assert_eq!(t.as_ns(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero (the beginning of the simulation, or an empty duration).
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from fractional nanoseconds, rounding to picoseconds.
    ///
    /// Handy for datasheet values such as "1.5 ns per hop".
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative durations are not representable");
        Time((ns * 1_000.0).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, or [`Time::ZERO`] if negative.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// True if this is [`Time::ZERO`].
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        debug_assert!(self.0 >= rhs.0, "time underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A clock frequency, used to convert between cycles and [`Time`].
///
/// # Examples
///
/// ```
/// use ndpx_sim::time::Freq;
///
/// let core = Freq::from_ghz(2.0);
/// assert_eq!(core.cycle().as_ps(), 500);
/// assert_eq!(core.cycles_to_time(4).as_ns(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    cycle_ps: u64,
}

impl Freq {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        Freq { cycle_ps: 1_000_000 / mhz }
    }

    /// Creates a frequency from gigahertz (rounded to a picosecond period).
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        Freq { cycle_ps: (1_000.0 / ghz).round() as u64 }
    }

    /// The duration of one clock cycle.
    #[inline]
    pub const fn cycle(self) -> Time {
        Time(self.cycle_ps)
    }

    /// Converts a cycle count to a duration.
    #[inline]
    pub const fn cycles_to_time(self, cycles: u64) -> Time {
        Time(self.cycle_ps * cycles)
    }

    /// Converts a duration to whole cycles (truncating).
    #[inline]
    pub const fn time_to_cycles(self, t: Time) -> u64 {
        t.as_ps() / self.cycle_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Time::from_ns(3).as_ps(), 3_000);
        assert_eq!(Time::from_us(2).as_ns(), 2_000);
        assert_eq!(Time::from_ns_f64(1.5).as_ps(), 1_500);
        assert_eq!(Time::from_ps(123).as_ns(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!((a * 3).as_ns(), 30);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3].iter().map(|&n| Time::from_ns(n)).sum();
        assert_eq!(total.as_ns(), 6);
    }

    #[test]
    fn freq_conversions() {
        let hbm = Freq::from_mhz(1600);
        assert_eq!(hbm.cycle().as_ps(), 625);
        assert_eq!(hbm.cycles_to_time(24).as_ps(), 15_000);
        let core = Freq::from_ghz(2.0);
        assert_eq!(core.time_to_cycles(Time::from_ns(10)), 20);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_ps(5).to_string(), "5ps");
        assert_eq!(Time::from_ns(5).to_string(), "5.000ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000us");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time underflow")]
    fn sub_underflow_panics_in_debug() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }
}
