//! Deterministic, seeded fault injection.
//!
//! Every fault model in the workspace (CXL CRC errors, DRAM ECC events, NoC
//! flit corruption) draws its injection decisions from a [`FaultPlan`]. A
//! plan is derived by SplitMix64 from the master seed plus a domain tag and
//! an instance index, and each decision is a pure counter-indexed hash of
//! that derived seed — never a shared sequential generator. The injection
//! schedule of a device is therefore a function of `(master seed, domain,
//! instance, decision index)` alone: bit-reproducible across runs and
//! invariant to how many harness threads (`NDPX_THREADS`) drive the sweep.
//!
//! With no master seed configured ([`FaultConfig::disabled`]), every model
//! keeps its injector as `None` and the simulated machine is the existing
//! ideal one: the fault path costs a single branch and all digests stay
//! byte-identical.

use crate::rng::{mix64, splitmix64};

/// Domain tags separating the per-subsystem decision streams.
pub mod domain {
    /// CXL link CRC errors (`crates/cxl`).
    pub const CXL: u64 = 0x4358_4C00;
    /// DRAM ECC events (`crates/mem`); instance = unit index.
    pub const MEM: u64 = 0x4D45_4D00;
    /// NoC flit corruption (`crates/noc`).
    pub const NOC: u64 = 0x4E4F_4300;
}

/// Default CXL link bit-error rate when faults are enabled.
pub const DEFAULT_CXL_BER: f64 = 1e-7;
/// Default DRAM correctable-error probability per access.
pub const DEFAULT_MEM_CE: f64 = 1e-4;
/// Default DRAM uncorrectable-error probability per access.
pub const DEFAULT_MEM_UE: f64 = 2e-6;
/// Default NoC flit-error rate per link traversal.
pub const DEFAULT_NOC_FER: f64 = 1e-5;

/// Master fault-injection configuration.
///
/// `seed: None` disables injection entirely; the models then take the exact
/// ideal code path. Rates are probabilities (per bit for the CXL link, per
/// access for DRAM, per flit for the NoC).
///
/// # Examples
///
/// ```
/// use ndpx_sim::fault::{domain, FaultConfig};
///
/// let off = FaultConfig::disabled();
/// assert!(!off.enabled());
/// assert!(off.plan(domain::CXL, 0).is_none());
///
/// let on = FaultConfig::with_seed(42);
/// let mut a = on.plan(domain::MEM, 3).expect("enabled");
/// let mut b = on.plan(domain::MEM, 3).expect("enabled");
/// assert_eq!(a.roll(0.5), b.roll(0.5)); // same schedule, every time
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; `None` disables all injection.
    pub seed: Option<u64>,
    /// CXL link bit-error rate (probability per transferred bit).
    pub cxl_ber: f64,
    /// DRAM correctable-error probability per access.
    pub mem_ce: f64,
    /// DRAM uncorrectable-error probability per access.
    pub mem_ue: f64,
    /// NoC flit-error rate per link traversal.
    pub noc_fer: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// Injection disabled: the ideal machine.
    pub const fn disabled() -> Self {
        FaultConfig {
            seed: None,
            cxl_ber: DEFAULT_CXL_BER,
            mem_ce: DEFAULT_MEM_CE,
            mem_ue: DEFAULT_MEM_UE,
            noc_fer: DEFAULT_NOC_FER,
        }
    }

    /// Injection enabled with `seed` and the default rates.
    pub const fn with_seed(seed: u64) -> Self {
        FaultConfig { seed: Some(seed), ..FaultConfig::disabled() }
    }

    /// Reads `NDPX_FAULT_SEED`, `NDPX_FAULT_CXL_BER`, `NDPX_FAULT_MEM_CE`,
    /// `NDPX_FAULT_MEM_UE`, and `NDPX_FAULT_NOC_FER` from the environment.
    pub fn from_env() -> Self {
        use crate::knobs;
        Self::parse(
            knobs::FAULT_SEED.raw().as_deref(),
            knobs::FAULT_CXL_BER.raw().as_deref(),
            knobs::FAULT_MEM_CE.raw().as_deref(),
            knobs::FAULT_MEM_UE.raw().as_deref(),
            knobs::FAULT_NOC_FER.raw().as_deref(),
        )
    }

    /// Pure form of [`from_env`](Self::from_env) for tests: an unset or
    /// unparsable seed disables injection; unparsable or out-of-range rates
    /// fall back to the defaults.
    pub fn parse(
        seed: Option<&str>,
        cxl_ber: Option<&str>,
        mem_ce: Option<&str>,
        mem_ue: Option<&str>,
        noc_fer: Option<&str>,
    ) -> Self {
        FaultConfig {
            seed: parse_seed(seed),
            cxl_ber: parse_rate(cxl_ber, DEFAULT_CXL_BER),
            mem_ce: parse_rate(mem_ce, DEFAULT_MEM_CE),
            mem_ue: parse_rate(mem_ue, DEFAULT_MEM_UE),
            noc_fer: parse_rate(noc_fer, DEFAULT_NOC_FER),
        }
    }

    /// True when a master seed is configured.
    pub const fn enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// Derives the decision stream for `(domain, instance)`, or `None` when
    /// injection is disabled.
    pub fn plan(&self, domain: u64, instance: u64) -> Option<FaultPlan> {
        self.seed.map(|s| FaultPlan::derive(s, domain, instance))
    }

    /// Validates that every rate is a probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the offending knob name.
    pub fn validate(&self) -> Result<(), &'static str> {
        let ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        if !ok(self.cxl_ber) {
            return Err("cxl_ber must be in [0, 1]");
        }
        if !ok(self.mem_ce) {
            return Err("mem_ce must be in [0, 1]");
        }
        if !ok(self.mem_ue) {
            return Err("mem_ue must be in [0, 1]");
        }
        if !ok(self.noc_fer) {
            return Err("noc_fer must be in [0, 1]");
        }
        Ok(())
    }
}

/// Accepts decimal (`42`) or `0x`-prefixed hex (`0x2A`); anything else
/// (including empty) reads as "unset".
fn parse_seed(v: Option<&str>) -> Option<u64> {
    let v = v?.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn parse_rate(v: Option<&str>, default: f64) -> f64 {
    match v.and_then(|s| s.trim().parse::<f64>().ok()) {
        Some(r) if r.is_finite() && (0.0..=1.0).contains(&r) => r,
        _ => default,
    }
}

/// One domain's deterministic injection decision stream.
///
/// `roll(p)` answers "does decision number `counter` inject a fault?" by
/// hashing the derived seed with the counter — no state beyond the counter,
/// so the schedule cannot depend on sibling domains, harness threads, or
/// anything else that varies between runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    counter: u64,
}

impl FaultPlan {
    /// Derives the plan for `(domain, instance)` from the master seed.
    pub fn derive(master: u64, domain: u64, instance: u64) -> Self {
        let mut s = master;
        let base = splitmix64(&mut s);
        let d = base ^ mix64(domain).rotate_left(13) ^ mix64(instance).rotate_left(29);
        FaultPlan { seed: mix64(d), counter: 0 }
    }

    /// Draws the next decision: inject with probability `p`.
    ///
    /// Always consumes exactly one counter step, so a schedule is stable
    /// even across rate changes.
    #[inline]
    pub fn roll(&mut self, p: f64) -> bool {
        let draw = mix64(self.seed ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.counter += 1;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Number of decisions drawn so far.
    ///
    /// Published to the telemetry registry so determinism checks can pin
    /// the exact decision count, not just the injected-fault tallies.
    pub fn rolls(&self) -> u64 {
        self.counter
    }

    /// The first `n` decisions of the `(master, domain, instance)` schedule
    /// at rate `p`, as a pure function — the property tests compare these
    /// against live runs.
    pub fn preview(master: u64, domain: u64, instance: u64, p: f64, n: usize) -> Vec<bool> {
        let mut plan = FaultPlan::derive(master, domain, instance);
        (0..n).map(|_| plan.roll(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_has_no_plans() {
        let cfg = FaultConfig::disabled();
        assert!(!cfg.enabled());
        assert!(cfg.plan(domain::CXL, 0).is_none());
        assert!(cfg.plan(domain::MEM, 7).is_none());
    }

    #[test]
    fn plans_are_reproducible_and_distinct() {
        let cfg = FaultConfig::with_seed(0xBEEF);
        let a = FaultPlan::preview(0xBEEF, domain::MEM, 0, 0.3, 256);
        let b = FaultPlan::preview(0xBEEF, domain::MEM, 0, 0.3, 256);
        assert_eq!(a, b);
        // Different instances and domains get different schedules.
        let c = FaultPlan::preview(0xBEEF, domain::MEM, 1, 0.3, 256);
        let d = FaultPlan::preview(0xBEEF, domain::NOC, 0, 0.3, 256);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // The live plan agrees with the pure preview.
        let mut live = cfg.plan(domain::MEM, 0).expect("enabled");
        let live_seq: Vec<bool> = (0..256).map(|_| live.roll(0.3)).collect();
        assert_eq!(live_seq, a);
        assert_eq!(live.rolls(), 256);
    }

    #[test]
    fn roll_rate_is_roughly_calibrated() {
        let mut plan = FaultPlan::derive(1, domain::CXL, 0);
        let hits = (0..100_000).filter(|_| plan.roll(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "rate miscalibrated: {hits}");
    }

    #[test]
    fn roll_extremes_still_advance_counter() {
        let mut plan = FaultPlan::derive(9, domain::NOC, 0);
        assert!(!plan.roll(0.0));
        assert!(plan.roll(1.0));
        assert!(!plan.roll(-1.0));
        assert_eq!(plan.rolls(), 3);
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(FaultConfig::parse(None, None, None, None, None).seed, None);
        assert_eq!(FaultConfig::parse(Some("42"), None, None, None, None).seed, Some(42));
        assert_eq!(FaultConfig::parse(Some("0x2A"), None, None, None, None).seed, Some(42));
        assert_eq!(FaultConfig::parse(Some(" 7 "), None, None, None, None).seed, Some(7));
        assert_eq!(FaultConfig::parse(Some("nope"), None, None, None, None).seed, None);
        assert_eq!(FaultConfig::parse(Some(""), None, None, None, None).seed, None);
    }

    #[test]
    fn rate_parsing_clamps_to_defaults() {
        let cfg = FaultConfig::parse(Some("1"), Some("1e-3"), Some("2.0"), Some("-1"), Some("x"));
        assert_eq!(cfg.cxl_ber, 1e-3);
        assert_eq!(cfg.mem_ce, DEFAULT_MEM_CE);
        assert_eq!(cfg.mem_ue, DEFAULT_MEM_UE);
        assert_eq!(cfg.noc_fer, DEFAULT_NOC_FER);
        assert!(cfg.validate().is_ok());
        let bad = FaultConfig { mem_ce: 2.0, ..FaultConfig::disabled() };
        assert!(bad.validate().is_err());
    }
}
