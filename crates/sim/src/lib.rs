//! # ndpx-sim
//!
//! Deterministic discrete-event simulation substrate for the NDPExt
//! reproduction.
//!
//! This crate provides the primitives shared by every architectural model in
//! the workspace:
//!
//! * [`time`] — picosecond-resolution simulated time and clock frequencies;
//! * [`engine`] — a deterministic time-ordered event queue;
//! * [`stats`] — counters, latency accumulators, and histograms;
//! * [`telemetry`] — hierarchical stat registry, Chrome-trace event export,
//!   and a levelled logging facade;
//! * [`rng`] — seeded pseudo-random generation and placement hashing;
//! * [`fault`] — deterministic, seeded fault-injection plans;
//! * [`chaos`] — scheduled hard-failure plans (device and link loss);
//! * [`knobs`] — the central registry of every `NDPX_*` environment knob.
//!
//! Everything is single-threaded and allocation-light: a simulation run is a
//! pure function of its configuration and seed.
//!
//! # Examples
//!
//! ```
//! use ndpx_sim::engine::EventQueue;
//! use ndpx_sim::stats::LatencyStat;
//! use ndpx_sim::time::Time;
//!
//! let mut queue = EventQueue::new();
//! queue.push(Time::from_ns(10), "memory response");
//! let mut lat = LatencyStat::new();
//! while let Some((at, _event)) = queue.pop() {
//!     lat.record(at);
//! }
//! assert_eq!(lat.mean().as_ns(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod energy;
pub mod engine;
pub mod fastdiv;
pub mod fault;
pub mod knobs;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosKind, ChaosPlan};
pub use energy::{Energy, Power};
pub use engine::{EventQueue, ProgressWatchdog, Stall};
pub use fault::{FaultConfig, FaultPlan};
pub use stats::{Counter, Histogram, LatencyStat, LogHistogram, MeanAcc};
pub use telemetry::{StatRegistry, TraceSink};
pub use time::{Freq, Time};
