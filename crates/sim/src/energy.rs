//! Energy accounting.
//!
//! All models report energy in picojoules via the [`Energy`] newtype, and
//! static (leakage/background) power via [`Power`]. Values are `f64`: energy
//! totals span ~15 orders of magnitude between a per-bit link traversal
//! (fractions of a pJ) and a whole-run total (joules).

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

use crate::time::Time;

/// An amount of energy, in picojoules.
///
/// # Examples
///
/// ```
/// use ndpx_sim::energy::Energy;
///
/// let per_bit = Energy::from_pj(1.7);
/// let access = per_bit * (64.0 * 8.0); // 64-byte read
/// assert!((access.as_nj() - 0.8704).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    #[inline]
    pub const fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub const fn from_nj(nj: f64) -> Self {
        Energy(nj * 1_000.0)
    }

    /// Picojoules.
    #[inline]
    pub const fn as_pj(self) -> f64 {
        self.0
    }

    /// Nanojoules.
    #[inline]
    pub fn as_nj(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// Millijoules.
    #[inline]
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

/// A constant power draw, in milliwatts, used for static energy.
///
/// # Examples
///
/// ```
/// use ndpx_sim::energy::Power;
/// use ndpx_sim::time::Time;
///
/// let leakage = Power::from_mw(100.0);
/// let e = leakage.over(Time::from_us(1));
/// assert!((e.as_nj() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_mw(mw: f64) -> Self {
        Power(mw)
    }

    /// Creates a power from watts.
    #[inline]
    pub const fn from_w(w: f64) -> Self {
        Power(w * 1_000.0)
    }

    /// Milliwatts.
    #[inline]
    pub const fn as_mw(self) -> f64 {
        self.0
    }

    /// Energy consumed when drawing this power for `t`.
    ///
    /// 1 mW over 1 ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ.
    #[inline]
    pub fn over(self, t: Time) -> Energy {
        Energy(self.0 * t.as_ps() as f64 * 1e-3)
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let e = Energy::from_nj(3.3);
        assert!((e.as_pj() - 3_300.0).abs() < 1e-9);
        assert!((e.as_uj() - 0.0033).abs() < 1e-12);
        assert!((Energy::from_pj(5e8).as_mj() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_pj(2.0) + Energy::from_pj(3.0);
        assert!((a.as_pj() - 5.0).abs() < 1e-12);
        let b = a * 2.0 - Energy::from_pj(4.0);
        assert!((b.as_pj() - 6.0).abs() < 1e-12);
        let total: Energy = (0..4).map(|_| Energy::from_pj(1.5)).sum();
        assert!((total.as_pj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn power_over_time() {
        // 1 W for 1 us = 1 uJ.
        let e = Power::from_w(1.0).over(Time::from_us(1));
        assert!((e.as_uj() - 1.0).abs() < 1e-9);
        assert_eq!(Power::ZERO.over(Time::from_us(5)).as_pj(), 0.0);
    }
}
