//! Central registry of every `NDPX_*` environment knob.
//!
//! Every configuration knob the workspace reads from the environment is
//! declared here — name, value kind, default, and a one-line description —
//! and every read goes through a [`Knob`] accessor. The registry is the
//! single source of truth: `ndpx-lint` rejects `"NDPX_*"` string literals
//! and `std::env::var` calls anywhere else, so a knob cannot be typo'd,
//! shadowed, or half-documented. `ndpx-lint --knobs-md` renders [`ALL`]
//! into `docs/knobs.md`; CI fails when the committed table drifts.
//!
//! Boolean knobs share one parse ([`parse_bool`]): an *unset* variable
//! takes the knob's default, while a set value counts as false exactly when
//! it trims to one of `""`, `0`, `false`, `off`, or `no`
//! (case-insensitive) and true otherwise. `NDPX_BATCH=0`, `NDPX_BATCH=off`
//! and `NDPX_BATCH=false` therefore all disable batching, and the same
//! tokens disable every other boolean knob — there are no per-knob
//! spellings.

/// The value shape a knob accepts, for documentation and lint checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// Unified boolean (see [`parse_bool`]).
    Bool,
    /// Unsigned integer.
    U64,
    /// Floating-point number.
    F64,
    /// Filesystem path; empty behaves as unset.
    Path,
    /// Free-form string.
    Str,
    /// One of a closed set of names.
    Enum(&'static [&'static str]),
}

impl KnobKind {
    /// Stable lower-case label for reports and the generated knob table.
    pub fn label(&self) -> &'static str {
        match self {
            KnobKind::Bool => "bool",
            KnobKind::U64 => "integer",
            KnobKind::F64 => "float",
            KnobKind::Path => "path",
            KnobKind::Str => "string",
            KnobKind::Enum(_) => "enum",
        }
    }
}

/// One declared environment knob.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// The environment variable, always `NDPX_*`.
    pub name: &'static str,
    /// Accepted value shape.
    pub kind: KnobKind,
    /// Human-readable default (what an unset variable behaves as).
    pub default: &'static str,
    /// One-line effect description for the generated `docs/knobs.md`.
    pub doc: &'static str,
}

impl Knob {
    /// The raw environment value, if the variable is set to valid UTF-8.
    pub fn raw(&self) -> Option<String> {
        std::env::var(self.name).ok()
    }

    /// Unified boolean read: unset takes `default`, otherwise
    /// [`parse_bool`] decides.
    pub fn bool_or(&self, default: bool) -> bool {
        parse_bool(self.raw().as_deref(), default)
    }

    /// Parses the value as `u64`; unset or unparsable is `None`.
    pub fn u64_opt(&self) -> Option<u64> {
        self.raw()?.trim().parse().ok()
    }

    /// Parses the value as `f64`; unset or unparsable is `None`.
    pub fn f64_opt(&self) -> Option<f64> {
        self.raw()?.trim().parse().ok()
    }

    /// The value as an output path; set-but-empty behaves as unset.
    pub fn path(&self) -> Option<String> {
        self.raw().filter(|p| !p.is_empty())
    }
}

/// The one boolean-knob grammar (see the module docs): `None` takes
/// `default`; a set value is false iff it trims to an explicit off token.
pub fn parse_bool(value: Option<&str>, default: bool) -> bool {
    match value {
        None => default,
        Some(s) => {
            !matches!(s.trim().to_ascii_lowercase().as_str(), "" | "0" | "false" | "off" | "no")
        }
    }
}

macro_rules! knob {
    ($const_name:ident, $env:literal, $kind:expr, $default:literal, $doc:literal) => {
        #[doc = concat!("`", $env, "` — ", $doc)]
        pub const $const_name: Knob =
            Knob { name: $env, kind: $kind, default: $default, doc: $doc };
    };
}

// Orchestration --------------------------------------------------------------
knob!(
    THREADS,
    "NDPX_THREADS",
    KnobKind::U64,
    "host CPUs",
    "Worker threads for pooled figure/bench matrices; explicit values past the host width are \
     honored but flagged `oversubscribed`. Results are thread-count-invariant."
);
knob!(
    SCALE,
    "NDPX_SCALE",
    KnobKind::Enum(&["test", "small", "paper"]),
    "small",
    "Benchmark scale: `test` (CI geometry), `small`, or `paper` (full Table II geometry)."
);
knob!(
    CELL_RETRIES,
    "NDPX_CELL_RETRIES",
    KnobKind::U64,
    "0",
    "Re-executions of a panicked bench cell before it is reported failed (doubling backoff)."
);
knob!(
    HEARTBEAT_SECS,
    "NDPX_HEARTBEAT_SECS",
    KnobKind::F64,
    "5",
    "Minimum seconds between pool progress heartbeat lines (info level); `0` disables throttling."
);
knob!(
    SLOW_MULT,
    "NDPX_SLOW_MULT",
    KnobKind::F64,
    "4.0",
    "Slow-cell watchdog threshold as a multiple of the median cell wall clock; `0` disables."
);

// Engine ---------------------------------------------------------------------
knob!(
    QUEUE,
    "NDPX_QUEUE",
    KnobKind::Enum(&["wheel", "heap"]),
    "wheel",
    "Event-queue backend: the hierarchical time-wheel or the reference binary heap. Digests are \
     byte-identical either way."
);
knob!(
    BATCH,
    "NDPX_BATCH",
    KnobKind::Bool,
    "1",
    "Run-ahead batching in the system run loops; disabling restores the historical per-op loop \
     with byte-identical results."
);
knob!(
    STALL_ITERS,
    "NDPX_STALL_ITERS",
    KnobKind::U64,
    "4000000",
    "Progress-watchdog limit: frozen same-time loop iterations before a stall is flagged; `0` \
     disables."
);

// Telemetry ------------------------------------------------------------------
knob!(
    LOG,
    "NDPX_LOG",
    KnobKind::Enum(&["off", "error", "warn", "info", "debug", "trace"]),
    "warn",
    "Maximum stderr log level of the `ndpx_*!` facade (numeric forms `0`–`5` also accepted)."
);
knob!(
    TRACE,
    "NDPX_TRACE",
    KnobKind::Path,
    "unset",
    "Chrome/Perfetto trace-event output path; unset (or empty) disables tracing."
);
knob!(
    TRACE_START,
    "NDPX_TRACE_START",
    KnobKind::F64,
    "0",
    "Simulated-time start of the trace window, in microseconds."
);
knob!(
    TRACE_STOP,
    "NDPX_TRACE_STOP",
    KnobKind::F64,
    "unbounded",
    "Simulated-time end of the trace window, in microseconds."
);
knob!(
    TRACE_CAP,
    "NDPX_TRACE_CAP",
    KnobKind::U64,
    "65536",
    "Trace ring capacity in events; older events are evicted once the ring is full."
);
knob!(
    TIMELINE,
    "NDPX_TIMELINE",
    KnobKind::Path,
    "unset",
    "Windowed timeline (`ndpx-timeline-v1`) output path; unset (or empty) disables sampling."
);
knob!(
    TIMELINE_WINDOW_NS,
    "NDPX_TIMELINE_WINDOW_NS",
    KnobKind::U64,
    "10000",
    "Timeline window width in simulated nanoseconds."
);
knob!(
    TIMELINE_CAP,
    "NDPX_TIMELINE_CAP",
    KnobKind::U64,
    "4096",
    "Timeline ring capacity in windows; on overflow the ring folds by dropping odd windows."
);
knob!(
    PROFILE,
    "NDPX_PROFILE",
    KnobKind::Bool,
    "0",
    "Sim-phase profiler: attributes trace-gen/warmup/run/solver/rehash/reconfig spans under \
     `profile.*` (sim time only in dumps)."
);
knob!(
    METRICS,
    "NDPX_METRICS",
    KnobKind::Path,
    "unset",
    "Directory for `metrics.json`/registry-dump/failure-manifest sidecars; unset disables them."
);

// Caches ---------------------------------------------------------------------
knob!(
    TRACE_CACHE,
    "NDPX_TRACE_CACHE",
    KnobKind::Bool,
    "1",
    "Shared immutable workload trace cache; disabling regenerates every trace live (identical \
     results, more wall clock)."
);
knob!(
    TRACE_CACHE_BYTES,
    "NDPX_TRACE_CACHE_BYTES",
    KnobKind::U64,
    "8589934592",
    "Trace-cache byte budget (default 8 GiB); keys past the budget fall back to live generation."
);
knob!(
    GRAPH_CACHE,
    "NDPX_GRAPH_CACHE",
    KnobKind::Bool,
    "1",
    "Process-wide power-law graph cache shared across workload constructions."
);

// Fault injection ------------------------------------------------------------
knob!(
    FAULT_SEED,
    "NDPX_FAULT_SEED",
    KnobKind::U64,
    "unset (faults disabled)",
    "Master seed for deterministic fault injection; unset disables every injector."
);
knob!(
    FAULT_CXL_BER,
    "NDPX_FAULT_CXL_BER",
    KnobKind::F64,
    "1e-7",
    "CXL link bit-error rate driving CRC errors, replay retries, and retraining stalls."
);
knob!(
    FAULT_MEM_CE,
    "NDPX_FAULT_MEM_CE",
    KnobKind::F64,
    "1e-4",
    "DRAM correctable-error rate per access (SEC-DED scrub latency)."
);
knob!(
    FAULT_MEM_UE,
    "NDPX_FAULT_MEM_UE",
    KnobKind::F64,
    "2e-6",
    "DRAM uncorrectable-error rate per access (stream poison, abort, and re-fetch)."
);
knob!(
    FAULT_NOC_FER,
    "NDPX_FAULT_NOC_FER",
    KnobKind::F64,
    "1e-5",
    "NoC flit-error rate driving per-link retransmits."
);

// Chaos schedules ------------------------------------------------------------
knob!(
    CHAOS,
    "NDPX_CHAOS",
    KnobKind::Str,
    "unset (chaos disabled)",
    "Hard-failure schedule: semicolon-separated `kind@time[+duration][:target]` events \
     (`cxl-down@10us+5us`, `stack-down@20us:1`, `noc-down@15us:0-1`); unset disables every \
     hard-failure injector."
);
knob!(
    CHAOS_RETRY_NS,
    "NDPX_CHAOS_RETRY_NS",
    KnobKind::U64,
    "500",
    "Base backoff (ns, doubling per probe) of the bounded retry loop that extended-memory \
     accesses spin on during a scheduled CXL outage."
);

// Bench binaries -------------------------------------------------------------
knob!(
    GAUGE_MICRO,
    "NDPX_GAUGE_MICRO",
    KnobKind::Bool,
    "0",
    "Adds the component micro-benchmark pass (queue ops, sampler, rehash, edge gen) to \
     `perf_gauge` reports."
);
knob!(
    THREAD_SWEEP,
    "NDPX_THREAD_SWEEP",
    KnobKind::Str,
    "unset",
    "Comma-separated extra thread widths for additional cached `perf_gauge` passes."
);
knob!(
    PERF_OUT,
    "NDPX_PERF_OUT",
    KnobKind::Path,
    "BENCH_PERF.json",
    "Output path for the `perf_gauge` report."
);
knob!(
    REPORT_THRESHOLD,
    "NDPX_REPORT_THRESHOLD",
    KnobKind::F64,
    "10.0",
    "`ndpx_report` throughput-regression warning threshold, in percent."
);
knob!(
    REPORT_STRICT,
    "NDPX_REPORT_STRICT",
    KnobKind::Bool,
    "0",
    "Makes `ndpx_report` exit non-zero on throughput regressions beyond the threshold (digest \
     mismatches always fail)."
);
knob!(
    OPS,
    "NDPX_OPS",
    KnobKind::U64,
    "scale default",
    "Per-core op budget override for the `sanity` binary."
);
knob!(
    POLICY,
    "NDPX_POLICY",
    KnobKind::Str,
    "all policies",
    "Restricts the `sanity` binary to one placement policy label."
);
knob!(
    DEBUG,
    "NDPX_DEBUG",
    KnobKind::Bool,
    "0",
    "Adds per-policy latency-breakdown lines to the `sanity` binary's output."
);

/// Every declared knob, in documentation order. `ndpx-lint --knobs-md`
/// renders this table; the lint's workspace scan guarantees no knob exists
/// outside it.
pub const ALL: &[&Knob] = &[
    &THREADS,
    &SCALE,
    &CELL_RETRIES,
    &HEARTBEAT_SECS,
    &SLOW_MULT,
    &QUEUE,
    &BATCH,
    &STALL_ITERS,
    &LOG,
    &TRACE,
    &TRACE_START,
    &TRACE_STOP,
    &TRACE_CAP,
    &TIMELINE,
    &TIMELINE_WINDOW_NS,
    &TIMELINE_CAP,
    &PROFILE,
    &METRICS,
    &TRACE_CACHE,
    &TRACE_CACHE_BYTES,
    &GRAPH_CACHE,
    &FAULT_SEED,
    &FAULT_CXL_BER,
    &FAULT_MEM_CE,
    &FAULT_MEM_UE,
    &FAULT_NOC_FER,
    &CHAOS,
    &CHAOS_RETRY_NS,
    &GAUGE_MICRO,
    &THREAD_SWEEP,
    &PERF_OUT,
    &REPORT_THRESHOLD,
    &REPORT_STRICT,
    &OPS,
    &POLICY,
    &DEBUG,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = ALL.iter().map(|k| k.name).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            assert_ne!(w[0], w[1], "duplicate knob {}", w[0]);
        }
        for k in ALL {
            assert!(k.name.starts_with("NDPX_"), "{} must carry the NDPX_ prefix", k.name);
            assert!(!k.doc.is_empty(), "{} needs a doc line", k.name);
            assert!(!k.default.is_empty(), "{} needs a documented default", k.name);
        }
    }

    #[test]
    fn the_registry_holds_all_knobs() {
        // The count is asserted so adding a knob without registering it in
        // `ALL` (or removing one without pruning) cannot go unnoticed.
        assert_eq!(ALL.len(), 36);
    }

    #[test]
    fn bool_grammar_is_uniform() {
        // Unset takes the knob default.
        assert!(parse_bool(None, true));
        assert!(!parse_bool(None, false));
        // Every off token, in any case, with surrounding space.
        for off in ["", "0", "false", "FALSE", "off", "Off", "no", " 0 ", "\tfalse\n"] {
            assert!(!parse_bool(Some(off), true), "{off:?} must read as false");
        }
        // Anything else — including the historical `1` — is true.
        for on in ["1", "true", "on", "yes", "2", "enabled"] {
            assert!(parse_bool(Some(on), false), "{on:?} must read as true");
        }
    }

    #[test]
    fn accessors_parse_and_filter() {
        // Pure-value checks through the parse helpers: the environment is
        // process-global and racy under the parallel test harness, so
        // these tests never set variables.
        assert_eq!("42".trim().parse::<u64>().ok(), Some(42));
        let unset: Option<String> = None;
        assert_eq!(unset.filter(|p: &String| !p.is_empty()), None);
        assert_eq!(Some(String::new()).filter(|p| !p.is_empty()), None);
    }
}
