//! Discrete-event scheduling.
//!
//! The simulator advances by always processing the earliest pending event.
//! [`EventQueue`] is a time-ordered priority queue with a deterministic
//! tiebreak (FIFO among equal timestamps), which keeps whole-system runs
//! reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in insertion order.
///
/// # Examples
///
/// ```
/// use ndpx_sim::engine::EventQueue;
/// use ndpx_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "late");
/// q.push(Time::from_ns(1), "early");
/// assert_eq!(q.pop(), Some((Time::from_ns(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    scheduled: u64,
    processed: u64,
    peak_len: usize,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled: 0, processed: 0, peak_len: 0 }
    }

    #[inline]
    fn note_depth(&mut self) {
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, payload });
        self.note_depth();
    }

    /// Schedules `payload` at `time` with an explicit equal-time tiebreak
    /// `rank` (lower pops first) in place of the insertion-order sequence
    /// number. Use when events carry a natural priority — e.g. a core
    /// index — that must be stable regardless of insertion interleaving.
    /// Mixing ranked and FIFO pushes in one queue is not meaningful.
    pub fn push_ranked(&mut self, time: Time, rank: u64, payload: T) {
        self.scheduled += 1;
        self.heap.push(Entry { time, seq: rank, payload });
        self.note_depth();
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let out = self.heap.pop().map(|e| (e.time, e.payload));
        self.processed += out.is_some() as u64;
        out
    }

    /// [`push`](Self::push) fused with [`pop`](Self::pop): schedules the
    /// event and returns the earliest pending one.
    ///
    /// Equivalent to `push(time, payload)` followed by `pop().unwrap()`,
    /// but when the new event pops right back out it never touches the
    /// heap, and otherwise the popped top is replaced in place (one
    /// sift-down instead of a sift-up plus a sift-down). This is the hot
    /// operation of a run loop where each completed event immediately
    /// schedules its successor.
    pub fn push_pop(&mut self, time: Time, payload: T) -> (Time, T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_pop_entry(Entry { time, seq, payload })
    }

    /// [`push_ranked`](Self::push_ranked) fused with [`pop`](Self::pop),
    /// with the same fast path as [`push_pop`](Self::push_pop).
    pub fn push_pop_ranked(&mut self, time: Time, rank: u64, payload: T) -> (Time, T) {
        self.push_pop_entry(Entry { time, seq: rank, payload })
    }

    fn push_pop_entry(&mut self, e: Entry<T>) -> (Time, T) {
        self.scheduled += 1;
        self.processed += 1;
        // Neither arm below changes the heap length, so the peak depth
        // cannot move here.
        match self.heap.peek_mut() {
            // The pending top pops before the new event: replace it in
            // place (`PeekMut` sifts the replacement down on drop). Ties
            // go to the top — its (time, seq) is lower or equal.
            Some(mut top) if (top.time, top.seq) <= (e.time, e.seq) => {
                let out = std::mem::replace(&mut *top, e);
                (out.time, out.payload)
            }
            // The new event is the earliest: it would pop immediately.
            _ => (e.time, e.payload),
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (fused push-pops included).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever processed (fused push-pops included).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

/// Diagnostic emitted by [`ProgressWatchdog`] when the run loop spins
/// without making progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// The frozen simulated time.
    pub at: Time,
    /// Consecutive loop iterations with neither time nor depth moving.
    pub iterations: u64,
    /// The frozen pending-event depth.
    pub queue_depth: usize,
}

impl std::fmt::Display for Stall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no progress for {} iterations: sim time frozen at {} with {} pending events",
            self.iterations, self.at, self.queue_depth
        )
    }
}

/// A no-progress detector for event-driven run loops.
///
/// A healthy run loop either advances simulated time or changes the pending
/// queue depth on (almost) every iteration. A loop that pops and re-pushes
/// events at a frozen timestamp with a frozen depth for a very large number
/// of iterations is livelocked — e.g. a component rescheduling itself at
/// `now` forever. The watchdog observes `(time, depth)` each iteration and
/// fires a structured [`Stall`] once when the freeze exceeds the limit; it
/// never touches simulation state, so enabling it cannot change results.
///
/// # Examples
///
/// ```
/// use ndpx_sim::engine::ProgressWatchdog;
/// use ndpx_sim::time::Time;
///
/// let mut dog = ProgressWatchdog::new(3);
/// let t = Time::from_ns(5);
/// assert!(dog.observe(t, 4).is_none());
/// assert!(dog.observe(t, 4).is_none());
/// assert!(dog.observe(t, 4).is_none());
/// let stall = dog.observe(t, 4).expect("limit exceeded");
/// assert_eq!(stall.iterations, 3);
/// ```
#[derive(Debug, Clone)]
pub struct ProgressWatchdog {
    limit: u64,
    last: Option<(Time, usize)>,
    frozen: u64,
    fired: bool,
}

impl ProgressWatchdog {
    /// Iteration limit used by [`from_env`](Self::from_env) when
    /// `NDPX_STALL_ITERS` is unset. Far above any legitimate same-time
    /// event burst at the scales the harness runs.
    pub const DEFAULT_LIMIT: u64 = 4_000_000;

    /// Creates a watchdog firing after `limit` frozen iterations.
    /// A limit of zero disables it.
    pub fn new(limit: u64) -> Self {
        ProgressWatchdog { limit, last: None, frozen: 0, fired: false }
    }

    /// Creates a watchdog from `NDPX_STALL_ITERS` (`0` disables; unset or
    /// unparsable uses [`DEFAULT_LIMIT`](Self::DEFAULT_LIMIT)).
    pub fn from_env() -> Self {
        Self::new(Self::parse_limit(std::env::var("NDPX_STALL_ITERS").ok().as_deref()))
    }

    /// Pure form of the `NDPX_STALL_ITERS` parse for tests.
    pub fn parse_limit(v: Option<&str>) -> u64 {
        v.and_then(|s| s.trim().parse().ok()).unwrap_or(Self::DEFAULT_LIMIT)
    }

    /// Records one loop iteration at simulated time `now` with `depth`
    /// pending events. Returns a [`Stall`] exactly once, the first time the
    /// freeze limit is exceeded.
    #[inline]
    pub fn observe(&mut self, now: Time, depth: usize) -> Option<Stall> {
        if self.limit == 0 || self.fired {
            return None;
        }
        if self.last == Some((now, depth)) {
            self.frozen += 1;
            if self.frozen >= self.limit {
                self.fired = true;
                return Some(Stall { at: now, iterations: self.frozen, queue_depth: depth });
            }
        } else {
            self.last = Some((now, depth));
            self.frozen = 0;
        }
        None
    }

    /// True once the stall diagnostic has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn push_pop_matches_push_then_pop() {
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from(0xE0E0);
        for _ in 0..64 {
            let mut fast = EventQueue::new();
            let mut slow = EventQueue::new();
            // Random pre-population, including duplicate timestamps.
            for i in 0..(1 + rng.below(20)) {
                let t = Time::from_ns(rng.below(16));
                fast.push(t, i);
                slow.push(t, i);
            }
            for i in 100..150 {
                let t = Time::from_ns(rng.below(16));
                let a = fast.push_pop(t, i);
                slow.push(t, i);
                let b = slow.pop().expect("non-empty");
                assert_eq!(a, b);
            }
            // Drain both: the remaining contents must agree too.
            loop {
                match (fast.pop(), slow.pop()) {
                    (None, None) => break,
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn ranked_pushes_order_by_rank_not_insertion() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        q.push_ranked(t, 7, "late");
        q.push_ranked(t, 2, "early");
        q.push_ranked(Time::from_ns(1), 9, "first");
        assert_eq!(q.pop(), Some((Time::from_ns(1), "first")));
        assert_eq!(q.pop(), Some((t, "early")));
        assert_eq!(q.pop(), Some((t, "late")));
    }

    #[test]
    fn push_pop_ranked_matches_ranked_push_then_pop() {
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from(0x0A3B);
        for _ in 0..64 {
            let mut fast = EventQueue::new();
            let mut slow = EventQueue::new();
            // Model the run loops: each rank (core) has one pending event.
            let ranks = 1 + rng.below(12);
            for r in 0..ranks {
                let t = Time::from_ns(rng.below(8));
                fast.push_ranked(t, r, r);
                slow.push_ranked(t, r, r);
            }
            let (mut tf, mut rf) = fast.pop().expect("non-empty");
            let (ts, rs) = slow.pop().expect("non-empty");
            assert_eq!((tf, rf), (ts, rs));
            for _ in 0..200 {
                let t = tf + Time::from_ns(rng.below(8));
                let a = fast.push_pop_ranked(t, rf, rf);
                slow.push_ranked(t, rf, rf);
                let b = slow.pop().expect("non-empty");
                assert_eq!(a, b);
                (tf, rf) = a;
            }
        }
    }

    #[test]
    fn push_pop_on_empty_returns_the_event() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.push_pop(Time::from_ns(3), 1), (Time::from_ns(3), 1));
        assert!(q.is_empty());
    }

    #[test]
    fn telemetry_counters() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), 1);
        q.push(Time::from_ns(2), 2);
        q.push(Time::from_ns(3), 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        // Fused ops count as one scheduled and one processed each.
        q.push_pop(Time::from_ns(4), 4);
        assert_eq!(q.scheduled(), 4);
        assert_eq!(q.processed(), 2);
        assert_eq!(q.peak_len(), 3);
    }

    #[test]
    fn watchdog_fires_once_on_frozen_progress() {
        let mut dog = ProgressWatchdog::new(5);
        let t = Time::from_ns(3);
        for _ in 0..5 {
            assert!(dog.observe(t, 2).is_none());
        }
        let stall = dog.observe(t, 2).expect("frozen past limit");
        assert_eq!(stall, Stall { at: t, iterations: 5, queue_depth: 2 });
        assert!(dog.fired());
        // Fires exactly once, even if the freeze continues.
        assert!(dog.observe(t, 2).is_none());
        let msg = stall.to_string();
        assert!(msg.contains("no progress"), "unhelpful diagnostic: {msg}");
    }

    #[test]
    fn watchdog_resets_on_any_progress() {
        let mut dog = ProgressWatchdog::new(3);
        let t = Time::from_ns(1);
        for i in 0..100u64 {
            // Either time or depth moves every other iteration.
            assert!(dog.observe(t + Time::from_ps(i / 2), (i % 2) as usize).is_none());
        }
        // Zero limit disables entirely.
        let mut off = ProgressWatchdog::new(0);
        for _ in 0..10 {
            assert!(off.observe(t, 1).is_none());
        }
        assert!(!off.fired());
    }

    #[test]
    fn watchdog_limit_parse() {
        assert_eq!(ProgressWatchdog::parse_limit(None), ProgressWatchdog::DEFAULT_LIMIT);
        assert_eq!(ProgressWatchdog::parse_limit(Some("123")), 123);
        assert_eq!(ProgressWatchdog::parse_limit(Some("0")), 0);
        assert_eq!(ProgressWatchdog::parse_limit(Some("bad")), ProgressWatchdog::DEFAULT_LIMIT);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(2), ());
        q.push(Time::from_ns(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
    }
}
