//! Discrete-event scheduling.
//!
//! The simulator advances by always processing the earliest pending event.
//! [`EventQueue`] is a time-ordered priority queue with a deterministic
//! tiebreak (FIFO among equal timestamps), which keeps whole-system runs
//! reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in insertion order.
///
/// # Examples
///
/// ```
/// use ndpx_sim::engine::EventQueue;
/// use ndpx_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "late");
/// q.push(Time::from_ns(1), "early");
/// assert_eq!(q.pop(), Some((Time::from_ns(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(2), ());
        q.push(Time::from_ns(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
    }
}
