//! Discrete-event scheduling.
//!
//! The simulator advances by always processing the earliest pending event.
//! [`EventQueue`] is a time-ordered priority queue with a deterministic
//! tiebreak (FIFO among equal timestamps), which keeps whole-system runs
//! reproducible bit-for-bit.
//!
//! Two implementations sit behind the one [`EventQueue`] front:
//!
//! * [`QueueImpl::Wheel`] (default) — a hierarchical time-wheel (calendar
//!   queue): fixed-tick buckets over a near horizon with a 256-bit
//!   occupancy bitmap, a `BTreeMap` overflow tree for far-future events,
//!   and slab/arena event slots with generation counters so no event ever
//!   takes a per-push allocation once the slab is warm.
//! * [`QueueImpl::Heap`] — the reference `BinaryHeap` implementation,
//!   retained for one release behind `NDPX_QUEUE=heap` as a differential
//!   oracle and escape hatch.
//!
//! Both produce the exact same pop order for any push sequence (pinned by
//! the differential property test in `tests/prop_sim.rs`), so switching
//! implementations can never change a simulated result.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::OnceLock;

use crate::time::Time;

struct Entry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which queue implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueImpl {
    /// Hierarchical time-wheel with arena event slots (default).
    Wheel,
    /// Reference `BinaryHeap` (the pre-time-wheel implementation).
    Heap,
}

impl QueueImpl {
    /// The implementation selected by `NDPX_QUEUE` (`heap` selects the
    /// reference heap; anything else — including unset — selects the
    /// wheel). The choice is read once per process.
    pub fn from_env() -> Self {
        static CHOICE: OnceLock<QueueImpl> = OnceLock::new();
        *CHOICE.get_or_init(|| Self::parse(crate::knobs::QUEUE.raw().as_deref()))
    }

    /// Pure form of the `NDPX_QUEUE` parse for tests.
    pub fn parse(v: Option<&str>) -> Self {
        match v.map(str::trim) {
            Some(s) if s.eq_ignore_ascii_case("heap") => QueueImpl::Heap,
            _ => QueueImpl::Wheel,
        }
    }

    /// Short stable name for reports (`"wheel"` / `"heap"`).
    pub fn name(self) -> &'static str {
        match self {
            QueueImpl::Wheel => "wheel",
            QueueImpl::Heap => "heap",
        }
    }
}

/// Whether the system run loops may run ahead — executing several of a
/// core's ops per queue event while completions stay inside the safe
/// window (see the run-loop docs). `NDPX_BATCH=0` (or any other off token
/// of [`crate::knobs::parse_bool`]) restores the historical per-op loop;
/// anything else (including unset) enables batching. The choice is read
/// once per process.
pub fn batching_from_env() -> bool {
    static CHOICE: OnceLock<bool> = OnceLock::new();
    *CHOICE.get_or_init(|| parse_batching(crate::knobs::BATCH.raw().as_deref()))
}

/// Pure form of the `NDPX_BATCH` parse for tests: the unified boolean
/// grammar with batching on by default.
pub fn parse_batching(v: Option<&str>) -> bool {
    crate::knobs::parse_bool(v, true)
}

/// Maximum ops a run loop may execute per run-ahead batch before it
/// returns to the queue. Purely a liveness bound: it keeps the progress
/// watchdog (which observes once per batch) firing within a bounded
/// number of ops when simulated time freezes, and it cannot change
/// results — a batch cut short re-enters through the fused push-pop,
/// which returns the same core whenever its completion still precedes
/// every pending event.
pub const BATCH_CAP: u64 = 1024;

/// Number of log2 batch-length classes tracked in [`BatchStats`]
/// (`1, 2–3, 4–7, …, ≥128`).
pub const BATCH_CLASSES: usize = 8;

/// Telemetry for a run loop's run-ahead batches.
///
/// A batch is the ops one core executes per queue event; length 1 means
/// the loop degenerated to the historical per-op behaviour (and with
/// batching disabled every batch has length 1). Fast hits count ops that
/// completed through the inlined L1-hit fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Batches executed (outer run-loop iterations).
    pub batches: u64,
    /// Total ops across all batches.
    pub ops: u64,
    /// Ops that completed through the inlined L1-hit fast path.
    pub fast_hits: u64,
    /// Longest batch observed.
    pub max_len: u64,
    /// Log2 batch-length histogram: class `i` counts batches of length
    /// `2^i ..= 2^(i+1) - 1` (the last class saturates).
    pub len_hist: [u64; BATCH_CLASSES],
}

impl BatchStats {
    /// Records one completed batch of `len` ops, `fast` of which took the
    /// fast path.
    #[inline]
    pub fn record(&mut self, len: u64, fast: u64) {
        self.batches += 1;
        self.ops += len;
        self.fast_hits += fast;
        if len > self.max_len {
            self.max_len = len;
        }
        let class = (63 - len.max(1).leading_zeros() as usize).min(BATCH_CLASSES - 1);
        self.len_hist[class] += 1;
    }

    /// Mean ops per batch (0 when nothing ran).
    pub fn mean_len(&self) -> f64 {
        if self.batches > 0 {
            self.ops as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    /// Fraction of ops that completed through the fast path.
    pub fn fast_hit_ratio(&self) -> f64 {
        if self.ops > 0 {
            self.fast_hits as f64 / self.ops as f64
        } else {
            0.0
        }
    }
}

/// Snapshot of an [`EventQueue`]'s telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Implementation name (`"wheel"` / `"heap"`).
    pub impl_name: &'static str,
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events ever processed.
    pub processed: u64,
    /// High-water mark of pending events.
    pub peak_depth: u64,
    /// Events that went through the far-future overflow tree (wheel only).
    pub overflow_scheduled: u64,
    /// Bucket-occupancy histogram: `bucket_occupancy[i]` counts near-wheel
    /// inserts that brought their bucket to `i + 1` resident events (the
    /// last class saturates). All zero under the heap implementation.
    pub bucket_occupancy: [u64; OCC_CLASSES],
}

/// Number of bucket-occupancy classes tracked in [`QueueStats`].
pub const OCC_CLASSES: usize = 8;

/// Sentinel slot index for "no slot".
const NIL: u32 = u32::MAX;
/// log2 of the wheel tick in picoseconds (512 ps per bucket). Ticks are
/// deliberately finer than the shortest simulated latency so that the
/// handful of in-flight events (one per core) land in *distinct* buckets:
/// the min scan then walks a one-element chain instead of sorting through
/// a shared bucket on every pop.
const TICK_SHIFT: u32 = 9;
/// Number of near-horizon buckets (horizon = `BUCKETS << TICK_SHIFT` ≈ 1 µs).
const BUCKETS: usize = 2048;
/// Occupancy bitmap words.
const WORDS: usize = BUCKETS / 64;

/// One arena slot. Free slots are chained through `next` on the free list;
/// live slots are chained through `next` within their bucket (or an
/// overflow duplicate chain). `gen` counts reuses of the slot, guarding
/// stale-index bugs in debug builds.
struct Slot<T> {
    time: Time,
    seq: u64,
    next: u32,
    gen: u32,
    payload: Option<T>,
}

/// Hierarchical time-wheel (calendar queue) keyed by `(time, seq)`.
///
/// Near-future events (within `BUCKETS` ticks of the wheel base) live in
/// fixed-tick buckets: intrusive singly-linked chains through the slot
/// arena, with a bitmap marking non-empty buckets. Far-future events live
/// in an overflow `BTreeMap` keyed by `(time_ps, seq)` and cascade into
/// the buckets when the wheel advances past the current horizon. Events
/// earlier than the wheel base (legal, if unusual) clamp into bucket 0,
/// which is always scanned first.
///
/// Determinism contract: `pop` returns the minimum `(time, seq)` key;
/// among exact duplicates, insertion order (FIFO). The per-bucket min scan
/// uses `<=` so the oldest of equal keys — deepest in the head-inserted
/// chain — wins.
struct TimeWheel<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    /// Head slot of each bucket chain (`NIL` when empty).
    buckets: [u32; BUCKETS],
    /// Resident events per bucket, saturating (stats only).
    bucket_len: [u8; BUCKETS],
    /// One bit per non-empty bucket.
    occ: [u64; WORDS],
    /// Lower bound on the first occupied word of `occ`: words below it are
    /// known empty. Advanced by the min scan (a `Cell` so the `&self` scan
    /// can record progress), pulled back by out-of-order inserts, reset on
    /// rebase. Makes repeated min scans O(1) amortized as the wheel drains
    /// front to back.
    scan_from: std::cell::Cell<usize>,
    /// Memoized [`find_min`](Self::find_min) result, so a `peek_time`
    /// followed by a fused `push_pop` costs one chain scan, not two.
    /// Invalidated on removal; kept coherent across inserts (a strictly
    /// smaller key replaces it, a head insert into its bucket fixes
    /// `prev`). A `Cell` so the `&self` scan can memoize.
    cached_min: std::cell::Cell<Option<FoundMin>>,
    /// Tick index (`time_ps >> TICK_SHIFT`) of bucket 0.
    base: u64,
    near_len: usize,
    overflow: BTreeMap<(u64, u64), u32>,
    overflow_len: usize,
}

/// Location of the minimum-key event in the near wheel.
#[derive(Clone, Copy)]
struct FoundMin {
    bucket: usize,
    idx: u32,
    /// Predecessor in the bucket chain (`NIL` if `idx` is the head).
    prev: u32,
    time: Time,
    seq: u64,
}

impl<T> TimeWheel<T> {
    fn new() -> Self {
        TimeWheel {
            slots: Vec::new(),
            free_head: NIL,
            buckets: [NIL; BUCKETS],
            bucket_len: [0; BUCKETS],
            occ: [0; WORDS],
            scan_from: std::cell::Cell::new(0),
            cached_min: std::cell::Cell::new(None),
            base: 0,
            near_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
        }
    }

    fn len(&self) -> usize {
        self.near_len + self.overflow_len
    }

    /// Takes a slot from the free list (or grows the arena) and fills it.
    fn alloc(&mut self, time: Time, seq: u64, payload: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.next = NIL;
            slot.payload = Some(payload);
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot { time, seq, next: NIL, gen: 0, payload: Some(payload) });
            idx
        }
    }

    /// Returns a slot to the free list, bumping its generation, and takes
    /// the payload out.
    fn free(&mut self, idx: u32) -> (Time, T) {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.payload.is_some(), "freeing an empty slot (stale index?)");
        let payload = slot.payload.take().expect("live slot has a payload");
        let time = slot.time;
        slot.gen = slot.gen.wrapping_add(1);
        slot.next = self.free_head;
        self.free_head = idx;
        (time, payload)
    }

    /// Inserts an already-allocated slot. Returns the occupancy class of
    /// the receiving bucket (`OCC_CLASSES` for overflow inserts) so the
    /// caller can update stats.
    fn insert_slot(&mut self, idx: u32) -> usize {
        let (time, seq) = {
            let s = &self.slots[idx as usize];
            (s.time, s.seq)
        };
        let tick = time.as_ps() >> TICK_SHIFT;
        if self.near_len == 0 && self.overflow.is_empty() {
            // Empty queue: rebase for free so the event lands in-range.
            self.base = tick;
            self.scan_from.set(0);
        }
        let rel = tick.saturating_sub(self.base);
        if rel >= BUCKETS as u64 {
            self.insert_overflow(idx, time, seq);
            return OCC_CLASSES;
        }
        let b = rel as usize;
        self.slots[idx as usize].next = self.buckets[b];
        self.buckets[b] = idx;
        self.occ[b / 64] |= 1u64 << (b % 64);
        if b / 64 < self.scan_from.get() {
            self.scan_from.set(b / 64);
        }
        self.bucket_len[b] = self.bucket_len[b].saturating_add(1);
        self.near_len += 1;
        match self.cached_min.get() {
            Some(c) if (time, seq) < (c.time, c.seq) => {
                // Strictly smaller key: the new head of bucket `b` is now
                // the min. (On an exact tie the resident event keeps
                // winning — FIFO — so the cache stays as-is.)
                self.cached_min.set(Some(FoundMin { bucket: b, idx, prev: NIL, time, seq }));
            }
            Some(c) if b == c.bucket && c.prev == NIL => {
                // Head insert in front of the cached min: it gained a
                // predecessor. Deeper nodes keep their `prev` unchanged.
                self.cached_min.set(Some(FoundMin { prev: idx, ..c }));
            }
            None if self.near_len == 1 => {
                // First near event is trivially the min.
                self.cached_min.set(Some(FoundMin { bucket: b, idx, prev: NIL, time, seq }));
            }
            _ => {}
        }
        (usize::from(self.bucket_len[b]) - 1).min(OCC_CLASSES - 1)
    }

    fn insert_overflow(&mut self, idx: u32, time: Time, seq: u64) {
        let key = (time.as_ps(), seq);
        match self.overflow.get_mut(&key) {
            None => {
                self.overflow.insert(key, idx);
            }
            Some(head) => {
                // Exact-duplicate key: append at the chain tail so the
                // chain stays oldest-first (FIFO on cascade).
                let mut cur = *head;
                loop {
                    let next = self.slots[cur as usize].next;
                    if next == NIL {
                        break;
                    }
                    cur = next;
                }
                self.slots[cur as usize].next = idx;
            }
        }
        self.overflow_len += 1;
    }

    /// Moves the earliest overflow window into the near buckets. Returns
    /// false when the whole queue is empty.
    fn refill(&mut self) -> bool {
        debug_assert_eq!(self.near_len, 0, "refill with resident near events");
        let Some((&(first_ps, _), _)) = self.overflow.first_key_value() else {
            return false;
        };
        self.base = first_ps >> TICK_SHIFT;
        self.scan_from.set(0);
        let limit_ps = (self.base + BUCKETS as u64) << TICK_SHIFT;
        let rest = self.overflow.split_off(&(limit_ps, 0));
        let drained = std::mem::replace(&mut self.overflow, rest);
        for (_, head) in drained {
            let mut cur = head;
            while cur != NIL {
                let next = self.slots[cur as usize].next;
                self.slots[cur as usize].next = NIL;
                self.overflow_len -= 1;
                self.insert_slot(cur);
                cur = next;
            }
        }
        debug_assert!(self.near_len > 0, "refill produced no near events");
        true
    }

    /// Locates the minimum `(time, seq)` event in the near wheel.
    /// Requires `near_len > 0`.
    fn find_min(&self) -> FoundMin {
        debug_assert!(self.near_len > 0, "find_min on an empty wheel");
        if let Some(m) = self.cached_min.get() {
            return m;
        }
        let mut b = 0usize;
        for (w, &word) in self.occ.iter().enumerate().skip(self.scan_from.get()) {
            if word != 0 {
                b = w * 64 + word.trailing_zeros() as usize;
                self.scan_from.set(w);
                break;
            }
        }
        let head = self.buckets[b];
        debug_assert_ne!(head, NIL, "occupancy bit set on an empty bucket");
        let mut best = FoundMin {
            bucket: b,
            idx: head,
            prev: NIL,
            time: self.slots[head as usize].time,
            seq: self.slots[head as usize].seq,
        };
        let mut prev = head;
        let mut cur = self.slots[head as usize].next;
        while cur != NIL {
            let s = &self.slots[cur as usize];
            // `<=` so the last of exact-duplicate keys wins: chains insert
            // at the head, so the deepest duplicate is the oldest (FIFO).
            if (s.time, s.seq) <= (best.time, best.seq) {
                best.idx = cur;
                best.prev = prev;
                best.time = s.time;
                best.seq = s.seq;
            }
            prev = cur;
            cur = s.next;
        }
        self.cached_min.set(Some(best));
        best
    }

    /// The minimum pending key without mutation, or `None` when empty.
    /// Near events always precede overflow events in key order.
    fn min_key(&self) -> Option<(Time, u64)> {
        if self.near_len > 0 {
            let m = self.find_min();
            Some((m.time, m.seq))
        } else {
            self.overflow.first_key_value().map(|(&(ps, seq), _)| (Time::from_ps(ps), seq))
        }
    }

    /// Unlinks a located min from its bucket chain and frees the slot.
    fn remove(&mut self, m: &FoundMin) -> (Time, T) {
        self.cached_min.set(None);
        let next = self.slots[m.idx as usize].next;
        if m.prev == NIL {
            self.buckets[m.bucket] = next;
        } else {
            self.slots[m.prev as usize].next = next;
        }
        if self.buckets[m.bucket] == NIL {
            self.occ[m.bucket / 64] &= !(1u64 << (m.bucket % 64));
        }
        self.bucket_len[m.bucket] = self.bucket_len[m.bucket].saturating_sub(1);
        self.near_len -= 1;
        self.free(m.idx)
    }

    fn pop(&mut self) -> Option<(Time, T)> {
        if self.near_len == 0 && !self.refill() {
            return None;
        }
        let m = self.find_min();
        Some(self.remove(&m))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in insertion order.
///
/// # Examples
///
/// ```
/// use ndpx_sim::engine::EventQueue;
/// use ndpx_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "late");
/// q.push(Time::from_ns(1), "early");
/// assert_eq!(q.pop(), Some((Time::from_ns(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    core: QueueCore<T>,
    next_seq: u64,
    scheduled: u64,
    processed: u64,
    peak_len: usize,
    overflow_scheduled: u64,
    occ_hist: [u64; OCC_CLASSES],
    /// Tiebreak space in use; guards the documented footgun that mixing
    /// `push` (FIFO seq) and `push_ranked` (caller rank) interleaves two
    /// incompatible tiebreak spaces. Checked under `debug_assertions`.
    mode: Option<TiebreakMode>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TiebreakMode {
    Fifo,
    Ranked,
}

enum QueueCore<T> {
    // Boxed: the wheel's inline bucket arrays are ~10 kB, far larger than
    // the heap variant, and a queue moves by value at construction.
    Wheel(Box<TimeWheel<T>>),
    Heap(BinaryHeap<Entry<T>>),
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue backed by the process-wide implementation
    /// choice ([`QueueImpl::from_env`]).
    pub fn new() -> Self {
        Self::with_impl(QueueImpl::from_env())
    }

    /// Creates an empty queue backed by a specific implementation. Both
    /// implementations are observably identical; this exists for
    /// differential tests and micro-benchmarks.
    pub fn with_impl(choice: QueueImpl) -> Self {
        let core = match choice {
            QueueImpl::Wheel => QueueCore::Wheel(Box::new(TimeWheel::new())),
            QueueImpl::Heap => QueueCore::Heap(BinaryHeap::new()),
        };
        EventQueue {
            core,
            next_seq: 0,
            scheduled: 0,
            processed: 0,
            peak_len: 0,
            overflow_scheduled: 0,
            occ_hist: [0; OCC_CLASSES],
            mode: None,
        }
    }

    /// The implementation backing this queue.
    pub fn impl_kind(&self) -> QueueImpl {
        match self.core {
            QueueCore::Wheel(_) => QueueImpl::Wheel,
            QueueCore::Heap(_) => QueueImpl::Heap,
        }
    }

    #[inline]
    fn note_depth(&mut self) {
        let len = self.len();
        if len > self.peak_len {
            self.peak_len = len;
        }
    }

    #[inline]
    fn note_mode(&mut self, mode: TiebreakMode) {
        if cfg!(debug_assertions) {
            debug_assert!(
                self.mode
                    != Some(match mode {
                        TiebreakMode::Fifo => TiebreakMode::Ranked,
                        TiebreakMode::Ranked => TiebreakMode::Fifo,
                    }),
                "EventQueue tiebreak modes mixed: push (FIFO seq) and push_ranked \
                 (explicit rank) interleave incompatible tiebreak spaces in one queue"
            );
            self.mode = Some(mode);
        }
    }

    #[inline]
    fn insert(&mut self, time: Time, seq: u64, payload: T) {
        match &mut self.core {
            QueueCore::Wheel(w) => {
                let idx = w.alloc(time, seq, payload);
                let class = w.insert_slot(idx);
                if class == OCC_CLASSES {
                    self.overflow_scheduled += 1;
                } else {
                    self.occ_hist[class] += 1;
                }
            }
            QueueCore::Heap(h) => h.push(Entry { time, seq, payload }),
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: T) {
        self.note_mode(TiebreakMode::Fifo);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.insert(time, seq, payload);
        self.note_depth();
    }

    /// Schedules `payload` at `time` with an explicit equal-time tiebreak
    /// `rank` (lower pops first) in place of the insertion-order sequence
    /// number. Use when events carry a natural priority — e.g. a core
    /// index — that must be stable regardless of insertion interleaving.
    /// Mixing ranked and FIFO pushes in one queue is not meaningful and
    /// panics in debug builds.
    pub fn push_ranked(&mut self, time: Time, rank: u64, payload: T) {
        self.note_mode(TiebreakMode::Ranked);
        self.scheduled += 1;
        self.insert(time, rank, payload);
        self.note_depth();
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let out = match &mut self.core {
            QueueCore::Wheel(w) => w.pop(),
            QueueCore::Heap(h) => h.pop().map(|e| (e.time, e.payload)),
        };
        self.processed += out.is_some() as u64;
        out
    }

    /// [`push`](Self::push) fused with [`pop`](Self::pop): schedules the
    /// event and returns the earliest pending one.
    ///
    /// Equivalent to `push(time, payload)` followed by `pop().unwrap()`,
    /// but when the new event pops right back out it never touches the
    /// queue structure. This is the hot operation of a run loop where each
    /// completed event immediately schedules its successor.
    pub fn push_pop(&mut self, time: Time, payload: T) -> (Time, T) {
        self.note_mode(TiebreakMode::Fifo);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_pop_keyed(time, seq, payload)
    }

    /// [`push_ranked`](Self::push_ranked) fused with [`pop`](Self::pop),
    /// with the same fast path as [`push_pop`](Self::push_pop).
    pub fn push_pop_ranked(&mut self, time: Time, rank: u64, payload: T) -> (Time, T) {
        self.note_mode(TiebreakMode::Ranked);
        self.push_pop_keyed(time, rank, payload)
    }

    fn push_pop_keyed(&mut self, time: Time, seq: u64, payload: T) -> (Time, T) {
        self.scheduled += 1;
        self.processed += 1;
        // Neither arm below changes the queue length, so the peak depth
        // cannot move here.
        match &mut self.core {
            QueueCore::Wheel(w) => {
                if w.near_len == 0 && w.overflow_len > 0 {
                    // Pull the overflow window in so min comparison and a
                    // possible removal both work on the near wheel.
                    w.refill();
                }
                if w.near_len > 0 {
                    let m = w.find_min();
                    // Ties go to the pending min — its (time, seq) is
                    // lower or equal.
                    if (m.time, m.seq) <= (time, seq) {
                        let out = w.remove(&m);
                        let idx = w.alloc(time, seq, payload);
                        let class = w.insert_slot(idx);
                        if class == OCC_CLASSES {
                            self.overflow_scheduled += 1;
                        } else {
                            self.occ_hist[class] += 1;
                        }
                        return out;
                    }
                }
                // The new event is the earliest: it would pop immediately.
                (time, payload)
            }
            QueueCore::Heap(h) => {
                let e = Entry { time, seq, payload };
                match h.peek_mut() {
                    // The pending top pops before the new event: replace it
                    // in place (`PeekMut` sifts the replacement down on
                    // drop). Ties go to the top — its (time, seq) is lower
                    // or equal.
                    Some(mut top) if (top.time, top.seq) <= (e.time, e.seq) => {
                        let out = std::mem::replace(&mut *top, e);
                        (out.time, out.payload)
                    }
                    // The new event is the earliest: it would pop immediately.
                    _ => (e.time, e.payload),
                }
            }
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.core {
            QueueCore::Wheel(w) => w.min_key().map(|(t, _)| t),
            QueueCore::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.core {
            QueueCore::Wheel(w) => w.len(),
            QueueCore::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (fused push-pops included).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever processed (fused push-pops included).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Snapshot of all telemetry counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            impl_name: self.impl_kind().name(),
            scheduled: self.scheduled,
            processed: self.processed,
            peak_depth: self.peak_len as u64,
            overflow_scheduled: self.overflow_scheduled,
            bucket_occupancy: self.occ_hist,
        }
    }
}

/// Diagnostic emitted by [`ProgressWatchdog`] when the run loop spins
/// without making progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// The frozen simulated time.
    pub at: Time,
    /// Consecutive loop iterations with neither time nor depth moving.
    pub iterations: u64,
    /// The frozen pending-event depth.
    pub queue_depth: usize,
}

impl std::fmt::Display for Stall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no progress for {} iterations: sim time frozen at {} with {} pending events",
            self.iterations, self.at, self.queue_depth
        )
    }
}

/// A no-progress detector for event-driven run loops.
///
/// A healthy run loop either advances simulated time or changes the pending
/// queue depth on (almost) every iteration. A loop that pops and re-pushes
/// events at a frozen timestamp with a frozen depth for a very large number
/// of iterations is livelocked — e.g. a component rescheduling itself at
/// `now` forever. The watchdog observes `(time, depth)` each iteration and
/// fires a structured [`Stall`] once when the freeze exceeds the limit; it
/// never touches simulation state, so enabling it cannot change results.
///
/// # Examples
///
/// ```
/// use ndpx_sim::engine::ProgressWatchdog;
/// use ndpx_sim::time::Time;
///
/// let mut dog = ProgressWatchdog::new(3);
/// let t = Time::from_ns(5);
/// assert!(dog.observe(t, 4).is_none());
/// assert!(dog.observe(t, 4).is_none());
/// assert!(dog.observe(t, 4).is_none());
/// let stall = dog.observe(t, 4).expect("limit exceeded");
/// assert_eq!(stall.iterations, 3);
/// ```
#[derive(Debug, Clone)]
pub struct ProgressWatchdog {
    limit: u64,
    last: Option<(Time, usize)>,
    frozen: u64,
    fired: bool,
}

impl ProgressWatchdog {
    /// Iteration limit used by [`from_env`](Self::from_env) when
    /// `NDPX_STALL_ITERS` is unset. Far above any legitimate same-time
    /// event burst at the scales the harness runs.
    pub const DEFAULT_LIMIT: u64 = 4_000_000;

    /// Creates a watchdog firing after `limit` frozen iterations.
    /// A limit of zero disables it.
    pub fn new(limit: u64) -> Self {
        ProgressWatchdog { limit, last: None, frozen: 0, fired: false }
    }

    /// Creates a watchdog from `NDPX_STALL_ITERS` (`0` disables; unset or
    /// unparsable uses [`DEFAULT_LIMIT`](Self::DEFAULT_LIMIT)).
    pub fn from_env() -> Self {
        Self::new(Self::parse_limit(crate::knobs::STALL_ITERS.raw().as_deref()))
    }

    /// Pure form of the `NDPX_STALL_ITERS` parse for tests.
    pub fn parse_limit(v: Option<&str>) -> u64 {
        v.and_then(|s| s.trim().parse().ok()).unwrap_or(Self::DEFAULT_LIMIT)
    }

    /// Records one loop iteration at simulated time `now` with `depth`
    /// pending events. Returns a [`Stall`] exactly once, the first time the
    /// freeze limit is exceeded.
    #[inline]
    pub fn observe(&mut self, now: Time, depth: usize) -> Option<Stall> {
        if self.limit == 0 || self.fired {
            return None;
        }
        if self.last == Some((now, depth)) {
            self.frozen += 1;
            if self.frozen >= self.limit {
                self.fired = true;
                return Some(Stall { at: now, iterations: self.frozen, queue_depth: depth });
            }
        } else {
            self.last = Some((now, depth));
            self.frozen = 0;
        }
        None
    }

    /// True once the stall diagnostic has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("impl", &self.impl_kind().name())
            .field("len", &self.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<i32>; 2] {
        [EventQueue::with_impl(QueueImpl::Wheel), EventQueue::with_impl(QueueImpl::Heap)]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(Time::from_ns(30), 3);
            q.push(Time::from_ns(10), 1);
            q.push(Time::from_ns(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for mut q in both() {
            let t = Time::from_ns(7);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        for mut q in both() {
            // Spread far beyond the near horizon (≈1 µs): exercises the
            // overflow tree and the cascade back into the buckets.
            q.push(Time::from_us(50), 5);
            q.push(Time::from_ns(1), 1);
            q.push(Time::from_us(5), 3);
            q.push(Time::from_us(5) + Time::from_ps(1), 4);
            q.push(Time::from_ns(900), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn push_pop_matches_push_then_pop() {
        use crate::rng::Xoshiro256;
        for choice in [QueueImpl::Wheel, QueueImpl::Heap] {
            let mut rng = Xoshiro256::seed_from(0xE0E0);
            for _ in 0..64 {
                let mut fast = EventQueue::with_impl(choice);
                let mut slow = EventQueue::with_impl(choice);
                // Random pre-population, including duplicate timestamps.
                for i in 0..(1 + rng.below(20)) {
                    let t = Time::from_ns(rng.below(16));
                    fast.push(t, i);
                    slow.push(t, i);
                }
                for i in 100..150 {
                    let t = Time::from_ns(rng.below(16));
                    let a = fast.push_pop(t, i);
                    slow.push(t, i);
                    let b = slow.pop().expect("non-empty");
                    assert_eq!(a, b);
                }
                // Drain both: the remaining contents must agree too.
                loop {
                    match (fast.pop(), slow.pop()) {
                        (None, None) => break,
                        (a, b) => assert_eq!(a, b),
                    }
                }
            }
        }
    }

    #[test]
    fn ranked_pushes_order_by_rank_not_insertion() {
        for mut q in
            [EventQueue::with_impl(QueueImpl::Wheel), EventQueue::with_impl(QueueImpl::Heap)]
        {
            let t = Time::from_ns(5);
            q.push_ranked(t, 7, "late");
            q.push_ranked(t, 2, "early");
            q.push_ranked(Time::from_ns(1), 9, "first");
            assert_eq!(q.pop(), Some((Time::from_ns(1), "first")));
            assert_eq!(q.pop(), Some((t, "early")));
            assert_eq!(q.pop(), Some((t, "late")));
        }
    }

    #[test]
    fn push_pop_ranked_matches_ranked_push_then_pop() {
        use crate::rng::Xoshiro256;
        for choice in [QueueImpl::Wheel, QueueImpl::Heap] {
            let mut rng = Xoshiro256::seed_from(0x0A3B);
            for _ in 0..64 {
                let mut fast = EventQueue::with_impl(choice);
                let mut slow = EventQueue::with_impl(choice);
                // Model the run loops: each rank (core) has one pending event.
                let ranks = 1 + rng.below(12);
                for r in 0..ranks {
                    let t = Time::from_ns(rng.below(8));
                    fast.push_ranked(t, r, r);
                    slow.push_ranked(t, r, r);
                }
                let (mut tf, mut rf) = fast.pop().expect("non-empty");
                let (ts, rs) = slow.pop().expect("non-empty");
                assert_eq!((tf, rf), (ts, rs));
                for _ in 0..200 {
                    let t = tf + Time::from_ns(rng.below(8));
                    let a = fast.push_pop_ranked(t, rf, rf);
                    slow.push_ranked(t, rf, rf);
                    let b = slow.pop().expect("non-empty");
                    assert_eq!(a, b);
                    (tf, rf) = a;
                }
            }
        }
    }

    #[test]
    fn push_pop_on_empty_returns_the_event() {
        for choice in [QueueImpl::Wheel, QueueImpl::Heap] {
            let mut q: EventQueue<u8> = EventQueue::with_impl(choice);
            assert_eq!(q.push_pop(Time::from_ns(3), 1), (Time::from_ns(3), 1));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn telemetry_counters() {
        for mut q in both() {
            q.push(Time::from_ns(1), 1);
            q.push(Time::from_ns(2), 2);
            q.push(Time::from_ns(3), 3);
            assert_eq!(q.peak_len(), 3);
            q.pop();
            // Fused ops count as one scheduled and one processed each.
            q.push_pop(Time::from_ns(4), 4);
            assert_eq!(q.scheduled(), 4);
            assert_eq!(q.processed(), 2);
            assert_eq!(q.peak_len(), 3);
            let stats = q.stats();
            assert_eq!(stats.scheduled, 4);
            assert_eq!(stats.processed, 2);
            assert_eq!(stats.peak_depth, 3);
        }
    }

    #[test]
    fn wheel_records_bucket_occupancy() {
        let mut q = EventQueue::with_impl(QueueImpl::Wheel);
        // Same tick: occupancy classes 1, 2, 3.
        q.push(Time::from_ps(1), 1);
        q.push(Time::from_ps(2), 2);
        q.push(Time::from_ps(3), 3);
        // Far future: overflow.
        q.push(Time::from_us(100), 4);
        let stats = q.stats();
        assert_eq!(stats.impl_name, "wheel");
        assert_eq!(stats.bucket_occupancy[0], 1);
        assert_eq!(stats.bucket_occupancy[1], 1);
        assert_eq!(stats.bucket_occupancy[2], 1);
        assert_eq!(stats.overflow_scheduled, 1);
        // Heap reports no occupancy.
        let h = EventQueue::<i32>::with_impl(QueueImpl::Heap);
        assert_eq!(h.stats().impl_name, "heap");
        assert_eq!(h.stats().bucket_occupancy, [0; OCC_CLASSES]);
    }

    #[test]
    fn queue_impl_parse() {
        assert_eq!(QueueImpl::parse(None), QueueImpl::Wheel);
        assert_eq!(QueueImpl::parse(Some("heap")), QueueImpl::Heap);
        assert_eq!(QueueImpl::parse(Some(" HEAP ")), QueueImpl::Heap);
        assert_eq!(QueueImpl::parse(Some("wheel")), QueueImpl::Wheel);
        assert_eq!(QueueImpl::parse(Some("garbage")), QueueImpl::Wheel);
        assert_eq!(QueueImpl::Wheel.name(), "wheel");
        assert_eq!(QueueImpl::Heap.name(), "heap");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tiebreak modes mixed")]
    fn mixing_push_and_push_ranked_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), 1);
        q.push_ranked(Time::from_ns(2), 0, 2);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut q = EventQueue::with_impl(QueueImpl::Wheel);
        for round in 0..1000u64 {
            // Steady-state run-loop shape: depth stays at 4, slots recycle.
            q.push(Time::from_ns(round), round as i32);
            if round >= 4 {
                q.pop().expect("non-empty");
            }
        }
        let QueueCore::Wheel(w) = &q.core else { panic!("wheel queue expected") };
        assert!(w.slots.len() <= 8, "arena grew to {} slots for depth 4", w.slots.len());
        // Recycled slots carry advanced generations.
        assert!(w.slots.iter().any(|s| s.gen > 0), "no slot was ever reused");
    }

    #[test]
    fn watchdog_fires_once_on_frozen_progress() {
        let mut dog = ProgressWatchdog::new(5);
        let t = Time::from_ns(3);
        for _ in 0..5 {
            assert!(dog.observe(t, 2).is_none());
        }
        let stall = dog.observe(t, 2).expect("frozen past limit");
        assert_eq!(stall, Stall { at: t, iterations: 5, queue_depth: 2 });
        assert!(dog.fired());
        // Fires exactly once, even if the freeze continues.
        assert!(dog.observe(t, 2).is_none());
        let msg = stall.to_string();
        assert!(msg.contains("no progress"), "unhelpful diagnostic: {msg}");
    }

    #[test]
    fn watchdog_resets_on_any_progress() {
        let mut dog = ProgressWatchdog::new(3);
        let t = Time::from_ns(1);
        for i in 0..100u64 {
            // Either time or depth moves every other iteration.
            assert!(dog.observe(t + Time::from_ps(i / 2), (i % 2) as usize).is_none());
        }
        // Zero limit disables entirely.
        let mut off = ProgressWatchdog::new(0);
        for _ in 0..10 {
            assert!(off.observe(t, 1).is_none());
        }
        assert!(!off.fired());
    }

    #[test]
    fn watchdog_limit_parse() {
        assert_eq!(ProgressWatchdog::parse_limit(None), ProgressWatchdog::DEFAULT_LIMIT);
        assert_eq!(ProgressWatchdog::parse_limit(Some("123")), 123);
        assert_eq!(ProgressWatchdog::parse_limit(Some("0")), 0);
        assert_eq!(ProgressWatchdog::parse_limit(Some("bad")), ProgressWatchdog::DEFAULT_LIMIT);
    }

    #[test]
    fn batching_parse() {
        assert!(parse_batching(None));
        assert!(parse_batching(Some("1")));
        assert!(parse_batching(Some("yes")));
        assert!(!parse_batching(Some("0")));
        assert!(!parse_batching(Some(" 0 ")));
    }

    #[test]
    fn batch_stats_histogram_and_ratios() {
        let mut b = BatchStats::default();
        b.record(1, 1);
        b.record(3, 0);
        b.record(8, 4);
        b.record(1 << 20, 0); // saturates into the last class
        assert_eq!(b.batches, 4);
        assert_eq!(b.ops, 12 + (1 << 20));
        assert_eq!(b.max_len, 1 << 20);
        assert_eq!(b.len_hist[0], 1); // len 1
        assert_eq!(b.len_hist[1], 1); // len 2-3
        assert_eq!(b.len_hist[3], 1); // len 8-15
        assert_eq!(b.len_hist[BATCH_CLASSES - 1], 1);
        assert!((b.mean_len() - b.ops as f64 / 4.0).abs() < 1e-9);
        assert!((b.fast_hit_ratio() - 5.0 / b.ops as f64).abs() < 1e-12);
        let empty = BatchStats::default();
        assert_eq!(empty.mean_len(), 0.0);
        assert_eq!(empty.fast_hit_ratio(), 0.0);
    }

    #[test]
    fn peek_and_len() {
        for choice in [QueueImpl::Wheel, QueueImpl::Heap] {
            let mut q = EventQueue::with_impl(choice);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(Time::from_ns(2), ());
            q.push(Time::from_ns(1), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        }
    }

    #[test]
    fn peek_sees_overflow_only_queue() {
        let mut q = EventQueue::with_impl(QueueImpl::Wheel);
        q.push(Time::from_ns(1), 1);
        q.push(Time::from_us(100), 2);
        q.pop();
        // Only the overflow event remains; peek must see through to it.
        assert_eq!(q.peek_time(), Some(Time::from_us(100)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_us(100), 2)));
    }
}
