//! Lightweight sim-phase profiler.
//!
//! A [`PhaseProfiler`] attributes wall time and simulated time to the
//! coarse phases of a run (trace generation, warmup placement, the run loop,
//! and the per-epoch sampler-solve / rehash / reconfiguration steps).
//! Phase totals land in two places with different determinism contracts:
//!
//! * the stat registry gets `profile.<phase>` nodes carrying **simulated
//!   time and counts only** — a pure function of the simulation, so registry
//!   dumps stay byte-identical across thread counts and machines;
//! * the Chrome trace sink gets `profile.<phase>.wall_us` / `.sim_us`
//!   counter tracks, where wall time is allowed because trace files are
//!   diagnostic artifacts, never compared byte-for-byte.
//!
//! Profiling is off unless the harness constructs a profiler (usually from
//! `NDPX_PROFILE=1`); disabled runs pay one `Option` branch per phase
//! boundary — phase boundaries are per-epoch, not per-op, so the hot path
//! never sees the profiler at all.

use std::time::{Duration, Instant};

use super::registry::{StatRegistry, StatValue};
use super::trace::TraceSink;
use crate::time::Time;

/// A coarse run phase the profiler attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Synthetic trace generation / trace-cache fill (host-side, sim time 0).
    TraceGen,
    /// Initial demand collection + placement before the first event.
    Warmup,
    /// The main event loop.
    Run,
    /// Per-epoch sampler demand solve (demand collection + allocation).
    SamplerSolve,
    /// Consistent-hash rehash deciding which lines move.
    Rehash,
    /// Applying a reconfiguration: migration drain window.
    Reconfig,
}

impl Phase {
    /// Every phase, in registry order.
    pub const ALL: [Phase; 6] = [
        Phase::TraceGen,
        Phase::Warmup,
        Phase::Run,
        Phase::SamplerSolve,
        Phase::Rehash,
        Phase::Reconfig,
    ];

    /// Stable lower-case label used in registry paths and counter tracks.
    pub fn label(self) -> &'static str {
        match self {
            Phase::TraceGen => "trace_gen",
            Phase::Warmup => "warmup",
            Phase::Run => "run",
            Phase::SamplerSolve => "sampler_solve",
            Phase::Rehash => "rehash",
            Phase::Reconfig => "reconfig",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulates per-phase wall time, simulated time, and span counts.
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::{Phase, PhaseProfiler, ProfileSpan};
/// use ndpx_sim::time::Time;
///
/// let mut prof = PhaseProfiler::new();
/// {
///     let mut span = ProfileSpan::enter(&mut prof, Phase::Rehash);
///     span.attribute_sim(Time::from_ns(30));
/// }
/// assert_eq!(prof.count(Phase::Rehash), 1);
/// assert_eq!(prof.sim(Phase::Rehash), Time::from_ns(30));
/// ```
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    wall: [Duration; 6],
    sim_ps: [u64; 6],
    count: [u64; 6],
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profiler if `NDPX_PROFILE` reads as true (unified boolean
    /// grammar; off by default).
    pub fn from_env() -> Option<Self> {
        crate::knobs::PROFILE.bool_or(false).then(Self::new)
    }

    /// Attributes one completed span to `phase`.
    pub fn add(&mut self, phase: Phase, wall: Duration, sim: Time) {
        let i = phase.index();
        self.wall[i] += wall;
        self.sim_ps[i] = self.sim_ps[i].saturating_add(sim.as_ps());
        self.count[i] += 1;
    }

    /// Total wall time attributed to `phase`.
    pub fn wall(&self, phase: Phase) -> Duration {
        self.wall[phase.index()]
    }

    /// Total simulated time attributed to `phase`.
    pub fn sim(&self, phase: Phase) -> Time {
        Time::from_ps(self.sim_ps[phase.index()])
    }

    /// Number of spans attributed to `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.count[phase.index()]
    }

    /// Publishes `profile.<phase>` nodes for every phase that recorded at
    /// least one span. Only simulated time and span counts are published —
    /// wall time would break the registry's byte-identity contract.
    pub fn register(&self, reg: &mut StatRegistry) {
        let mut scope = reg.scope("profile");
        for phase in Phase::ALL {
            let i = phase.index();
            if self.count[i] > 0 {
                scope.publish(
                    phase.label(),
                    StatValue::Latency { total_ps: self.sim_ps[i], count: self.count[i] },
                );
            }
        }
    }

    /// Emits `profile.<phase>.wall_us` / `.sim_us` counter samples at
    /// simulated time `at` (normally the makespan, so the totals sit at the
    /// right edge of the trace) for every recorded phase.
    pub fn export_trace(&self, sink: &mut TraceSink, track: u32, at: Time) {
        for phase in Phase::ALL {
            let i = phase.index();
            if self.count[i] == 0 {
                continue;
            }
            let wall_us = self.wall[i].as_secs_f64() * 1e6;
            sink.counter(
                "profile",
                format!("profile.{}.wall_us", phase.label()),
                track,
                at,
                wall_us,
            );
            sink.counter(
                "profile",
                format!("profile.{}.sim_us", phase.label()),
                track,
                at,
                Time::from_ps(self.sim_ps[i]).as_us_f64(),
            );
        }
    }
}

/// RAII span: measures wall time from construction to drop and attributes it
/// (plus any simulated time set via [`attribute_sim`](Self::attribute_sim))
/// to a phase.
#[derive(Debug)]
pub struct ProfileSpan<'a> {
    prof: &'a mut PhaseProfiler,
    phase: Phase,
    started: Instant,
    sim: Time,
}

impl<'a> ProfileSpan<'a> {
    /// Starts a span; the wall clock runs until the span is dropped.
    pub fn enter(prof: &'a mut PhaseProfiler, phase: Phase) -> Self {
        ProfileSpan { prof, phase, started: Instant::now(), sim: Time::ZERO }
    }

    /// Starts a span against an optional profiler, the common shape at call
    /// sites where profiling is opt-in.
    pub fn enter_opt(prof: Option<&'a mut PhaseProfiler>, phase: Phase) -> Option<Self> {
        prof.map(|p| Self::enter(p, phase))
    }

    /// Sets the simulated time this span will attribute on drop.
    pub fn attribute_sim(&mut self, sim: Time) {
        self.sim = sim;
    }
}

impl Drop for ProfileSpan<'_> {
    fn drop(&mut self) {
        self.prof.add(self.phase, self.started.elapsed(), self.sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::trace::{validate_chrome_trace, TraceConfig};

    #[test]
    fn spans_accumulate_per_phase() {
        let mut prof = PhaseProfiler::new();
        prof.add(Phase::Run, Duration::from_millis(2), Time::from_ns(500));
        prof.add(Phase::Run, Duration::from_millis(1), Time::from_ns(250));
        prof.add(Phase::Rehash, Duration::ZERO, Time::ZERO);
        assert_eq!(prof.count(Phase::Run), 2);
        assert_eq!(prof.sim(Phase::Run), Time::from_ns(750));
        assert!(prof.wall(Phase::Run) >= Duration::from_millis(3));
        assert_eq!(prof.count(Phase::Warmup), 0);
    }

    #[test]
    fn registry_gets_sim_time_only_for_recorded_phases() {
        let mut prof = PhaseProfiler::new();
        prof.add(Phase::Reconfig, Duration::from_millis(9), Time::from_ns(100));
        let mut reg = StatRegistry::new();
        prof.register(&mut reg);
        let json = reg.to_json();
        assert!(json.contains("\"profile.reconfig\""));
        assert!(json.contains("\"total_ps\": 100000"));
        assert!(!json.contains("profile.run"), "unrecorded phases stay absent");
        assert!(!json.contains("wall"), "wall time must not leak into the registry");
    }

    #[test]
    fn trace_export_emits_valid_counter_tracks() {
        let mut prof = PhaseProfiler::new();
        prof.add(Phase::Run, Duration::from_millis(5), Time::from_us(2));
        let mut sink = TraceSink::new(TraceConfig::to_path("/tmp/t.json"));
        prof.export_trace(&mut sink, 0, Time::from_us(2));
        let json = sink.render_json("t");
        assert!(json.contains("profile.run.wall_us"));
        assert!(json.contains("profile.run.sim_us"));
        assert!(validate_chrome_trace(&json).is_ok());
    }

    #[test]
    fn raii_span_attributes_on_drop() {
        let mut prof = PhaseProfiler::new();
        {
            let mut span = ProfileSpan::enter(&mut prof, Phase::SamplerSolve);
            span.attribute_sim(Time::from_ns(12));
        }
        assert_eq!(prof.count(Phase::SamplerSolve), 1);
        assert_eq!(prof.sim(Phase::SamplerSolve), Time::from_ns(12));
        assert!(ProfileSpan::enter_opt(None, Phase::Run).is_none());
    }
}
