//! Hierarchical stat registry with deterministic JSON serialization.
//!
//! Subsystems publish their counters under dotted paths after a run
//! completes; the registry is a plain sorted map, so the JSON dump is a pure
//! function of the recorded values — bit-identical no matter how many worker
//! threads drove the surrounding harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats::{Histogram, LatencyStat, MeanAcc};

/// One published stat node.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// A monotonically increasing event count.
    Count(u64),
    /// A point-in-time scalar (ratio, occupancy, rate).
    Gauge(f64),
    /// A dimensionless mean with its underlying sum and sample count.
    Mean {
        /// Sum of all samples.
        sum: f64,
        /// Number of samples.
        count: u64,
    },
    /// A duration mean with its underlying total and sample count.
    Latency {
        /// Sum of all samples, in picoseconds.
        total_ps: u64,
        /// Number of samples.
        count: u64,
    },
    /// A latency distribution snapshot from a [`Histogram`].
    Hist {
        /// Number of samples.
        count: u64,
        /// Sum of all samples, in picoseconds.
        total_ps: u64,
        /// Median (bucket floor), in nanoseconds.
        p50_ns: u64,
        /// 95th percentile (bucket floor), in nanoseconds.
        p95_ns: u64,
        /// 99th percentile (bucket floor), in nanoseconds.
        p99_ns: u64,
        /// `(bucket_floor_ns, count)` for every non-empty bucket, ascending.
        buckets: Vec<(u64, u64)>,
    },
}

impl StatValue {
    /// The event count, or `None` for non-count stats. Convenience for
    /// assertions over `registry.get(path)` results.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            StatValue::Count(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, or `None` for non-gauge stats.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            StatValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

/// A sorted map from dotted stat path to [`StatValue`].
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::StatRegistry;
///
/// let mut reg = StatRegistry::new();
/// let mut engine = reg.scope("engine");
/// engine.count("events", 42);
/// assert!(reg.to_json().contains("\"engine.events\": 42"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatRegistry {
    nodes: BTreeMap<String, StatValue>,
}

impl StatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a scope that prefixes every published path with `prefix.`.
    pub fn scope(&mut self, prefix: &str) -> StatScope<'_> {
        StatScope { reg: self, prefix: prefix.to_string() }
    }

    /// Publishes a value at an absolute path, replacing any existing node.
    pub fn publish(&mut self, path: &str, value: StatValue) {
        self.nodes.insert(path.to_string(), value);
    }

    /// Looks up a node by absolute path.
    pub fn get(&self, path: &str) -> Option<&StatValue> {
        self.nodes.get(path)
    }

    /// Number of published nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the registry has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates nodes in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.nodes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the registry to deterministic JSON: paths sorted
    /// lexicographically, floats in Rust's shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.nodes.len() * 48);
        out.push_str("{\n  \"schema\": \"ndpx-stat-registry-v1\",\n  \"stats\": ");
        self.write_stats_object(&mut out, 2);
        out.push_str("\n}\n");
        out
    }

    /// Writes the bare `{ "path": value, ... }` stats object (no schema
    /// envelope) with its closing brace at `indent` spaces, so callers can
    /// nest one registry per cell inside a larger deterministic document.
    pub fn write_stats_object(&self, out: &mut String, indent: usize) {
        out.push('{');
        for (i, (path, value)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            for _ in 0..indent + 2 {
                out.push(' ');
            }
            write_json_string(out, path);
            out.push_str(": ");
            write_value(out, value);
        }
        if !self.nodes.is_empty() {
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
        }
        out.push('}');
    }
}

/// A borrowed view of a [`StatRegistry`] that prefixes every path.
#[derive(Debug)]
pub struct StatScope<'a> {
    reg: &'a mut StatRegistry,
    prefix: String,
}

impl StatScope<'_> {
    /// Opens a nested scope (`parent.child`).
    pub fn scope(&mut self, sub: &str) -> StatScope<'_> {
        StatScope { prefix: format!("{}.{sub}", self.prefix), reg: self.reg }
    }

    fn path(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Publishes an arbitrary [`StatValue`] under this scope.
    pub fn publish(&mut self, name: &str, value: StatValue) {
        self.reg.publish(&self.path(name), value);
    }

    /// Publishes an event count.
    pub fn count(&mut self, name: &str, v: u64) {
        self.reg.publish(&self.path(name), StatValue::Count(v));
    }

    /// Publishes a scalar gauge.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.reg.publish(&self.path(name), StatValue::Gauge(v));
    }

    /// Publishes a dimensionless mean accumulator.
    pub fn mean(&mut self, name: &str, m: &MeanAcc) {
        self.reg.publish(&self.path(name), StatValue::Mean { sum: m.sum(), count: m.count() });
    }

    /// Publishes a latency accumulator.
    pub fn latency(&mut self, name: &str, l: &LatencyStat) {
        self.reg.publish(
            &self.path(name),
            StatValue::Latency { total_ps: l.total().as_ps(), count: l.count() },
        );
    }

    /// Publishes a latency histogram snapshot.
    pub fn hist(&mut self, name: &str, h: &Histogram) {
        self.reg.publish(
            &self.path(name),
            StatValue::Hist {
                count: h.count(),
                total_ps: h.total().as_ps(),
                p50_ns: h.p50().as_ns(),
                p95_ns: h.p95().as_ns(),
                p99_ns: h.p99().as_ns(),
                buckets: h.iter().collect(),
            },
        );
    }
}

fn write_value(out: &mut String, value: &StatValue) {
    match value {
        StatValue::Count(v) => {
            let _ = write!(out, "{v}");
        }
        StatValue::Gauge(v) => write_json_f64(out, *v),
        StatValue::Mean { sum, count } => {
            out.push_str("{\"mean\": ");
            write_json_f64(out, if *count == 0 { 0.0 } else { sum / *count as f64 });
            let _ = write!(out, ", \"sum\": ");
            write_json_f64(out, *sum);
            let _ = write!(out, ", \"count\": {count}}}");
        }
        StatValue::Latency { total_ps, count } => {
            let mean_ps = if *count == 0 { 0 } else { total_ps / count };
            let _ = write!(
                out,
                "{{\"mean_ps\": {mean_ps}, \"total_ps\": {total_ps}, \"count\": {count}}}"
            );
        }
        StatValue::Hist { count, total_ps, p50_ns, p95_ns, p99_ns, buckets } => {
            let _ = write!(
                out,
                "{{\"count\": {count}, \"total_ps\": {total_ps}, \"p50_ns\": {p50_ns}, \
                 \"p95_ns\": {p95_ns}, \"p99_ns\": {p99_ns}, \"buckets\": ["
            );
            for (i, (floor, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{floor}, {n}]");
            }
            out.push_str("]}");
        }
    }
}

/// Writes an `f64` as a JSON number in canonical (shortest round-trip) form.
/// Non-finite values, which JSON cannot represent, are written as `0`.
pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes a JSON string literal with the required escapes.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn scopes_compose_paths() {
        let mut reg = StatRegistry::new();
        let mut stack = reg.scope("stack00");
        let mut mesh = stack.scope("mesh");
        mesh.count("flits", 7);
        assert_eq!(reg.get("stack00.mesh.flits"), Some(&StatValue::Count(7)));
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut reg = StatRegistry::new();
        reg.scope("b").count("x", 2);
        reg.scope("a").count("x", 1);
        let json = reg.to_json();
        let a = json.find("\"a.x\"").unwrap();
        let b = json.find("\"b.x\"").unwrap();
        assert!(a < b, "paths must serialize in sorted order");
        assert_eq!(json, reg.clone().to_json());
    }

    #[test]
    fn hist_snapshot_readout() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Time::from_ns(4));
        }
        h.record(Time::from_ns(4096));
        let mut reg = StatRegistry::new();
        reg.scope("core").hist("latency", &h);
        let json = reg.to_json();
        assert!(json.contains("\"p50_ns\": 4"));
        assert!(json.contains("\"p99_ns\": 4"));
        assert!(json.contains("[4096, 1]"));
    }

    #[test]
    fn non_finite_gauges_serialize_as_zero() {
        let mut reg = StatRegistry::new();
        reg.scope("x").gauge("nan", f64::NAN);
        assert!(reg.to_json().contains("\"x.nan\": 0"));
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
