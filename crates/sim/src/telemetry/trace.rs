//! Opt-in Chrome trace-event export.
//!
//! A [`TraceSink`] is a bounded ring buffer of simulation events recorded at
//! simulated timestamps. When a run finishes, the sink renders the Chrome
//! trace-event JSON format (the "catapult" format understood by Perfetto and
//! `chrome://tracing`). Tracing is off unless the harness constructs a sink —
//! disabled runs pay one `Option` branch per call site and nothing else.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use super::json::Json;
use super::registry::{write_json_f64, write_json_string};
use crate::time::Time;

/// Configuration for a [`TraceSink`], usually read from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output path for the trace JSON. Multi-cell runs append a unique
    /// sequence suffix before the extension so cells never clobber each
    /// other.
    pub path: PathBuf,
    /// Only events at or after this simulated time are recorded.
    pub start: Time,
    /// Only events strictly before this simulated time are recorded.
    pub stop: Time,
    /// Ring-buffer capacity in events; older events are dropped first.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: enough for a detailed window without
    /// unbounded memory growth.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Builds a config capturing the whole run into `path`.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        TraceConfig {
            path: path.into(),
            start: Time::ZERO,
            stop: Time::MAX,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Reads `NDPX_TRACE` (output path; unset disables tracing),
    /// `NDPX_TRACE_START` / `NDPX_TRACE_STOP` (simulated-time window in
    /// microseconds), and `NDPX_TRACE_CAP` (ring capacity in events).
    pub fn from_env() -> Option<Self> {
        use crate::knobs;
        let path = knobs::TRACE.path()?;
        let mut cfg = TraceConfig::to_path(path);
        if let Some(us) = knobs::TRACE_START.f64_opt() {
            cfg.start = Time::from_ns_f64(us * 1e3);
        }
        if let Some(us) = knobs::TRACE_STOP.f64_opt() {
            cfg.stop = Time::from_ns_f64(us * 1e3);
        }
        if let Some(cap) = knobs::TRACE_CAP.u64_opt() {
            cfg.capacity = cap as usize;
        }
        Some(cfg)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    /// Chrome phase: `X` = complete (has `dur`), `i` = instant,
    /// `C` = counter sample (value in `args`).
    ph: char,
    cat: &'static str,
    name: String,
    /// Track (rendered as the Chrome `tid`): one lane per unit/component.
    track: u32,
    ts: Time,
    dur: Time,
    /// Counter sample value; only rendered for `C` events.
    value: f64,
}

/// Monotonic suffix so concurrent cells writing the same configured path get
/// distinct files.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded ring buffer of simulation events with Chrome-trace JSON output.
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::{validate_chrome_trace, TraceConfig, TraceSink};
/// use ndpx_sim::time::Time;
///
/// let mut sink = TraceSink::new(TraceConfig::to_path("/tmp/trace.json"));
/// sink.complete("noc", "msg e", 3, Time::from_ns(10), Time::from_ns(5));
/// let json = sink.render_json("demo");
/// assert!(validate_chrome_trace(&json).is_ok());
/// ```
#[derive(Debug)]
pub struct TraceSink {
    cfg: TraceConfig,
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once `events` has reached capacity.
    head: usize,
    dropped: u64,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new(cfg: TraceConfig) -> Self {
        let cap = cfg.capacity.max(1);
        TraceSink { cfg, events: Vec::with_capacity(cap.min(4096)), head: 0, dropped: 0 }
    }

    /// Creates a sink if `NDPX_TRACE` is set.
    pub fn from_env() -> Option<Self> {
        TraceConfig::from_env().map(Self::new)
    }

    /// Whether an event at simulated time `t` falls inside the capture
    /// window. Call sites that must format event names can use this to skip
    /// the formatting work entirely.
    #[inline]
    pub fn in_window(&self, t: Time) -> bool {
        t >= self.cfg.start && t < self.cfg.stop
    }

    /// Records a complete (duration) event.
    pub fn complete(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        track: u32,
        start: Time,
        dur: Time,
    ) {
        if self.in_window(start) {
            self.push(TraceEvent {
                ph: 'X',
                cat,
                name: name.into(),
                track,
                ts: start,
                dur,
                value: 0.0,
            });
        }
    }

    /// Records an instant event.
    pub fn instant(&mut self, cat: &'static str, name: impl Into<String>, track: u32, at: Time) {
        if self.in_window(at) {
            self.push(TraceEvent {
                ph: 'i',
                cat,
                name: name.into(),
                track,
                ts: at,
                dur: Time::ZERO,
                value: 0.0,
            });
        }
    }

    /// Records a counter sample. Perfetto renders consecutive samples with
    /// the same name as one counter track.
    pub fn counter(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        track: u32,
        at: Time,
        value: f64,
    ) {
        if self.in_window(at) {
            self.push(TraceEvent {
                ph: 'C',
                cat,
                name: name.into(),
                track,
                ts: at,
                dur: Time::ZERO,
                value,
            });
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let cap = self.cfg.capacity.max(1);
        if self.events.len() < cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted from the ring after it filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in record order (oldest first).
    fn ordered(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.events.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Renders the Chrome trace-event JSON. `ts`/`dur` are microseconds of
    /// simulated time; `track` becomes the Chrome thread id so every unit
    /// gets its own swimlane.
    pub fn render_json(&self, process_name: &str) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        out.push_str("  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": ");
        write_json_string(&mut out, process_name);
        out.push_str("}}");
        for ev in self.ordered() {
            out.push_str(",\n  {\"ph\": \"");
            out.push(ev.ph);
            let _ = write!(
                out,
                "\", \"pid\": 1, \"tid\": {}, \"cat\": \"{}\", \"name\": ",
                ev.track, ev.cat
            );
            write_json_string(&mut out, &ev.name);
            out.push_str(", \"ts\": ");
            write_json_f64(&mut out, ev.ts.as_us_f64());
            match ev.ph {
                'X' => {
                    out.push_str(", \"dur\": ");
                    write_json_f64(&mut out, ev.dur.as_us_f64());
                }
                'C' => {
                    out.push_str(", \"args\": {\"value\": ");
                    write_json_f64(&mut out, ev.value);
                    out.push('}');
                }
                _ => out.push_str(", \"s\": \"t\""),
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "\n], \"displayTimeUnit\": \"ns\", \"otherData\": {{\"dropped_events\": {}}}}}\n",
            self.dropped
        );
        out
    }

    /// Writes the rendered trace to the configured path, appending a unique
    /// sequence suffix before the extension (`trace.json` →
    /// `trace.0003.json`) so parallel cells never clobber each other.
    /// Returns the path written.
    pub fn write(&self, process_name: &str) -> io::Result<PathBuf> {
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = sequenced_path(&self.cfg.path, seq);
        std::fs::write(&path, self.render_json(process_name))?;
        Ok(path)
    }
}

fn sequenced_path(base: &Path, seq: u64) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let named = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{seq:04}.{ext}"),
        None => format!("{stem}.{seq:04}"),
    };
    base.with_file_name(named)
}

/// Validates that `json` is a well-formed Chrome trace-event document:
/// a top-level object with a `traceEvents` array whose entries each have a
/// string `ph` and `name`, a numeric `pid`/`tid`/`ts` (metadata events may
/// omit `ts`), a numeric `dur` when `ph` is `"X"`, and a numeric
/// `args.value` when `ph` is `"C"`. Returns the number of events on success.
///
/// Parsing goes through [`Json::parse`] — the whole document is tokenized,
/// so malformed JSON is rejected, not just missing keys.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = Json::parse(json)?;
    if !matches!(doc, Json::Object(_)) {
        return Err("top level is not an object".into());
    }
    let Some(Json::Array(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        if !matches!(ev, Json::Object(_)) {
            return Err(format!("event {i} is not an object"));
        }
        let Some(Json::String(ph)) = ev.get("ph") else {
            return Err(format!("event {i}: missing string ph"));
        };
        if !matches!(ev.get("name"), Some(Json::String(_))) {
            return Err(format!("event {i}: missing string name"));
        }
        for key in ["pid", "tid"] {
            if !matches!(ev.get(key), Some(Json::Number(_))) {
                return Err(format!("event {i}: missing numeric {key}"));
            }
        }
        if ph != "M" && !matches!(ev.get("ts"), Some(Json::Number(_))) {
            return Err(format!("event {i}: missing numeric ts"));
        }
        if ph == "X" && !matches!(ev.get("dur"), Some(Json::Number(_))) {
            return Err(format!("event {i}: complete event missing dur"));
        }
        if ph == "C"
            && !matches!(ev.get("args").and_then(|a| a.get("value")), Some(Json::Number(_)))
        {
            return Err(format!("event {i}: counter event missing args.value"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(cap: usize) -> TraceSink {
        let mut cfg = TraceConfig::to_path("/tmp/t.json");
        cfg.capacity = cap;
        TraceSink::new(cfg)
    }

    #[test]
    fn window_filters_events() {
        let mut cfg = TraceConfig::to_path("/tmp/t.json");
        cfg.start = Time::from_ns(100);
        cfg.stop = Time::from_ns(200);
        let mut s = TraceSink::new(cfg);
        s.instant("core", "early", 0, Time::from_ns(50));
        s.instant("core", "in", 0, Time::from_ns(150));
        s.instant("core", "late", 0, Time::from_ns(250));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut s = sink(2);
        for i in 0..5u64 {
            s.instant("core", format!("e{i}"), 0, Time::from_ns(i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let json = s.render_json("t");
        assert!(!json.contains("\"e2\"") && json.contains("\"e3\"") && json.contains("\"e4\""));
        // Oldest-first ordering survives the wraparound.
        assert!(json.find("\"e3\"").unwrap() < json.find("\"e4\"").unwrap());
    }

    #[test]
    fn rendered_trace_validates() {
        let mut s = sink(16);
        s.complete("noc", "msg \"quoted\"", 3, Time::from_ns(10), Time::from_ns(7));
        s.instant("core", "reconfig", 0, Time::from_ns(20));
        let json = s.render_json("cell hbm/ndpx/mv");
        assert_eq!(validate_chrome_trace(&json), Ok(3));
    }

    #[test]
    fn counter_events_render_and_validate() {
        let mut s = sink(16);
        s.counter("slo", "slo.epoch_p99_ns", 0, Time::from_ns(10), 420.0);
        s.counter("slo", "slo.epoch_p99_ns", 0, Time::from_ns(20), 560.0);
        let json = s.render_json("t");
        assert!(json.contains("\"args\": {\"value\": 420}"));
        assert_eq!(validate_chrome_trace(&json), Ok(3));
        let no_value =
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"a\", \"pid\": 1, \"tid\": 0, \"ts\": 1}]}";
        assert!(validate_chrome_trace(no_value).is_err());
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome_trace("{\"traceEvents\": [").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": {}}").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        let no_dur = "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"pid\": 1, \"tid\": 0, \"ts\": 1}]}";
        assert!(validate_chrome_trace(no_dur).is_err());
    }

    #[test]
    fn sequenced_paths_are_unique() {
        let a = sequenced_path(Path::new("out/trace.json"), 3);
        assert_eq!(a, Path::new("out/trace.0003.json"));
        let b = sequenced_path(Path::new("trace"), 12);
        assert_eq!(b, Path::new("trace.0012"));
    }
}
