//! Opt-in Chrome trace-event export.
//!
//! A [`TraceSink`] is a bounded ring buffer of simulation events recorded at
//! simulated timestamps. When a run finishes, the sink renders the Chrome
//! trace-event JSON format (the "catapult" format understood by Perfetto and
//! `chrome://tracing`). Tracing is off unless the harness constructs a sink —
//! disabled runs pay one `Option` branch per call site and nothing else.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use super::registry::{write_json_f64, write_json_string};
use crate::time::Time;

/// Configuration for a [`TraceSink`], usually read from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output path for the trace JSON. Multi-cell runs append a unique
    /// sequence suffix before the extension so cells never clobber each
    /// other.
    pub path: PathBuf,
    /// Only events at or after this simulated time are recorded.
    pub start: Time,
    /// Only events strictly before this simulated time are recorded.
    pub stop: Time,
    /// Ring-buffer capacity in events; older events are dropped first.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: enough for a detailed window without
    /// unbounded memory growth.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Builds a config capturing the whole run into `path`.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        TraceConfig {
            path: path.into(),
            start: Time::ZERO,
            stop: Time::MAX,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Reads `NDPX_TRACE` (output path; unset disables tracing),
    /// `NDPX_TRACE_START` / `NDPX_TRACE_STOP` (simulated-time window in
    /// microseconds), and `NDPX_TRACE_CAP` (ring capacity in events).
    pub fn from_env() -> Option<Self> {
        let path = std::env::var("NDPX_TRACE").ok().filter(|p| !p.is_empty())?;
        let mut cfg = TraceConfig::to_path(path);
        if let Some(us) = env_f64("NDPX_TRACE_START") {
            cfg.start = Time::from_ns_f64(us * 1e3);
        }
        if let Some(us) = env_f64("NDPX_TRACE_STOP") {
            cfg.stop = Time::from_ns_f64(us * 1e3);
        }
        if let Some(cap) = std::env::var("NDPX_TRACE_CAP").ok().and_then(|v| v.parse().ok()) {
            cfg.capacity = cap;
        }
        Some(cfg)
    }
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    /// Chrome phase: `X` = complete (has `dur`), `i` = instant.
    ph: char,
    cat: &'static str,
    name: String,
    /// Track (rendered as the Chrome `tid`): one lane per unit/component.
    track: u32,
    ts: Time,
    dur: Time,
}

/// Monotonic suffix so concurrent cells writing the same configured path get
/// distinct files.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded ring buffer of simulation events with Chrome-trace JSON output.
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::{validate_chrome_trace, TraceConfig, TraceSink};
/// use ndpx_sim::time::Time;
///
/// let mut sink = TraceSink::new(TraceConfig::to_path("/tmp/trace.json"));
/// sink.complete("noc", "msg e", 3, Time::from_ns(10), Time::from_ns(5));
/// let json = sink.render_json("demo");
/// assert!(validate_chrome_trace(&json).is_ok());
/// ```
#[derive(Debug)]
pub struct TraceSink {
    cfg: TraceConfig,
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once `events` has reached capacity.
    head: usize,
    dropped: u64,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new(cfg: TraceConfig) -> Self {
        let cap = cfg.capacity.max(1);
        TraceSink { cfg, events: Vec::with_capacity(cap.min(4096)), head: 0, dropped: 0 }
    }

    /// Creates a sink if `NDPX_TRACE` is set.
    pub fn from_env() -> Option<Self> {
        TraceConfig::from_env().map(Self::new)
    }

    /// Whether an event at simulated time `t` falls inside the capture
    /// window. Call sites that must format event names can use this to skip
    /// the formatting work entirely.
    #[inline]
    pub fn in_window(&self, t: Time) -> bool {
        t >= self.cfg.start && t < self.cfg.stop
    }

    /// Records a complete (duration) event.
    pub fn complete(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        track: u32,
        start: Time,
        dur: Time,
    ) {
        if self.in_window(start) {
            self.push(TraceEvent { ph: 'X', cat, name: name.into(), track, ts: start, dur });
        }
    }

    /// Records an instant event.
    pub fn instant(&mut self, cat: &'static str, name: impl Into<String>, track: u32, at: Time) {
        if self.in_window(at) {
            self.push(TraceEvent {
                ph: 'i',
                cat,
                name: name.into(),
                track,
                ts: at,
                dur: Time::ZERO,
            });
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let cap = self.cfg.capacity.max(1);
        if self.events.len() < cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted from the ring after it filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in record order (oldest first).
    fn ordered(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.events.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Renders the Chrome trace-event JSON. `ts`/`dur` are microseconds of
    /// simulated time; `track` becomes the Chrome thread id so every unit
    /// gets its own swimlane.
    pub fn render_json(&self, process_name: &str) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        out.push_str("  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": ");
        write_json_string(&mut out, process_name);
        out.push_str("}}");
        for ev in self.ordered() {
            out.push_str(",\n  {\"ph\": \"");
            out.push(ev.ph);
            let _ = write!(
                out,
                "\", \"pid\": 1, \"tid\": {}, \"cat\": \"{}\", \"name\": ",
                ev.track, ev.cat
            );
            write_json_string(&mut out, &ev.name);
            out.push_str(", \"ts\": ");
            write_json_f64(&mut out, ev.ts.as_us_f64());
            if ev.ph == 'X' {
                out.push_str(", \"dur\": ");
                write_json_f64(&mut out, ev.dur.as_us_f64());
            } else {
                out.push_str(", \"s\": \"t\"");
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "\n], \"displayTimeUnit\": \"ns\", \"otherData\": {{\"dropped_events\": {}}}}}\n",
            self.dropped
        );
        out
    }

    /// Writes the rendered trace to the configured path, appending a unique
    /// sequence suffix before the extension (`trace.json` →
    /// `trace.0003.json`) so parallel cells never clobber each other.
    /// Returns the path written.
    pub fn write(&self, process_name: &str) -> io::Result<PathBuf> {
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = sequenced_path(&self.cfg.path, seq);
        std::fs::write(&path, self.render_json(process_name))?;
        Ok(path)
    }
}

fn sequenced_path(base: &Path, seq: u64) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let named = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{seq:04}.{ext}"),
        None => format!("{stem}.{seq:04}"),
    };
    base.with_file_name(named)
}

/// Validates that `json` is a well-formed Chrome trace-event document:
/// a top-level object with a `traceEvents` array whose entries each have a
/// string `ph` and `name`, a numeric `pid`/`tid`/`ts` (metadata events may
/// omit `ts`), and a numeric `dur` when `ph` is `"X"`. Returns the number of
/// events on success.
///
/// This is a purpose-built parser, not a general JSON library — the workspace
/// is dependency-free by design — but it fully tokenizes the document, so
/// malformed JSON is rejected, not just missing keys.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut p = Parser { bytes: json.as_bytes(), pos: 0 };
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    let Json::Object(fields) = doc else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Array(events)) = fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(f) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Json::String(ph)) = get("ph") else {
            return Err(format!("event {i}: missing string ph"));
        };
        if !matches!(get("name"), Some(Json::String(_))) {
            return Err(format!("event {i}: missing string name"));
        }
        for key in ["pid", "tid"] {
            if !matches!(get(key), Some(Json::Number(_))) {
                return Err(format!("event {i}: missing numeric {key}"));
            }
        }
        if ph != "M" && !matches!(get("ts"), Some(Json::Number(_))) {
            return Err(format!("event {i}: missing numeric ts"));
        }
        if ph == "X" && !matches!(get("dur"), Some(Json::Number(_))) {
            return Err(format!("event {i}: complete event missing dur"));
        }
    }
    Ok(events.len())
}

enum Json {
    Null,
    Bool(#[allow(dead_code)] bool),
    Number(#[allow(dead_code)] f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (input is &str, so this is safe
                    // to slice on char boundaries).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .map_err(|_| format!("bad utf8 at offset {}", self.pos))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                c => {
                    return Err(format!("expected ',' or ']' got '{}' at {}", c as char, self.pos))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                c => {
                    return Err(format!("expected ',' or '}}' got '{}' at {}", c as char, self.pos))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(cap: usize) -> TraceSink {
        let mut cfg = TraceConfig::to_path("/tmp/t.json");
        cfg.capacity = cap;
        TraceSink::new(cfg)
    }

    #[test]
    fn window_filters_events() {
        let mut cfg = TraceConfig::to_path("/tmp/t.json");
        cfg.start = Time::from_ns(100);
        cfg.stop = Time::from_ns(200);
        let mut s = TraceSink::new(cfg);
        s.instant("core", "early", 0, Time::from_ns(50));
        s.instant("core", "in", 0, Time::from_ns(150));
        s.instant("core", "late", 0, Time::from_ns(250));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut s = sink(2);
        for i in 0..5u64 {
            s.instant("core", format!("e{i}"), 0, Time::from_ns(i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let json = s.render_json("t");
        assert!(!json.contains("\"e2\"") && json.contains("\"e3\"") && json.contains("\"e4\""));
        // Oldest-first ordering survives the wraparound.
        assert!(json.find("\"e3\"").unwrap() < json.find("\"e4\"").unwrap());
    }

    #[test]
    fn rendered_trace_validates() {
        let mut s = sink(16);
        s.complete("noc", "msg \"quoted\"", 3, Time::from_ns(10), Time::from_ns(7));
        s.instant("core", "reconfig", 0, Time::from_ns(20));
        let json = s.render_json("cell hbm/ndpx/mv");
        assert_eq!(validate_chrome_trace(&json), Ok(3));
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome_trace("{\"traceEvents\": [").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": {}}").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        let no_dur = "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"pid\": 1, \"tid\": 0, \"ts\": 1}]}";
        assert!(validate_chrome_trace(no_dur).is_err());
    }

    #[test]
    fn sequenced_paths_are_unique() {
        let a = sequenced_path(Path::new("out/trace.json"), 3);
        assert_eq!(a, Path::new("out/trace.0003.json"));
        let b = sequenced_path(Path::new("trace"), 12);
        assert_eq!(b, Path::new("trace.0012"));
    }
}
