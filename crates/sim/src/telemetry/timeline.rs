//! Time-resolved metric timelines: registry snapshots in fixed sim-time
//! windows.
//!
//! A [`TimelineSampler`] collects cumulative [`StatRegistry`] snapshots at
//! fixed simulated-time window boundaries and renders them as per-window
//! series: counters become per-window deltas, gauges stay point-in-time
//! readings. Windows are a pure function of simulated event order, so the
//! rendered file is byte-identical at any worker-thread count and for any
//! event-queue backend — the same guarantee the end-of-run registry dumps
//! give, extended over time.
//!
//! Sampling is off unless the harness constructs a sampler (usually from
//! `NDPX_TIMELINE`); disabled runs pay one `Option` branch per scheduler
//! pop and nothing else.

use std::io;
use std::path::{Path, PathBuf};

use super::registry::{write_json_string, StatRegistry, StatValue};
use crate::time::Time;

/// Configuration for a [`TimelineSampler`], usually read from the
/// environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Output path stem for the timeline JSON. The run label is inserted
    /// before the extension (`timeline.json` → `timeline.<label>.json`) so
    /// parallel cells write distinct, deterministically named files.
    pub path: PathBuf,
    /// Window width in simulated time.
    pub window: Time,
    /// Ring capacity in windows; the oldest windows are folded into a base
    /// snapshot once the ring fills, so deltas stay correct.
    pub capacity: usize,
}

impl TimelineConfig {
    /// Default window width: 10 µs of simulated time.
    pub const DEFAULT_WINDOW_NS: u64 = 10_000;
    /// Default ring capacity in windows.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Builds a config with default window and capacity writing to `path`.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        TimelineConfig {
            path: path.into(),
            window: Time::from_ns(Self::DEFAULT_WINDOW_NS),
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Reads `NDPX_TIMELINE` (output path; unset disables sampling),
    /// `NDPX_TIMELINE_WINDOW_NS` (window width in simulated nanoseconds) and
    /// `NDPX_TIMELINE_CAP` (ring capacity in windows).
    pub fn from_env() -> Option<Self> {
        use crate::knobs;
        let path = knobs::TIMELINE.path()?;
        let mut cfg = TimelineConfig::to_path(path);
        if let Some(ns) = knobs::TIMELINE_WINDOW_NS.u64_opt() {
            cfg.window = Time::from_ns(ns.max(1));
        }
        if let Some(cap) = knobs::TIMELINE_CAP.u64_opt() {
            cfg.capacity = (cap as usize).max(1);
        }
        Some(cfg)
    }
}

#[derive(Debug, Clone)]
struct Window {
    start: Time,
    end: Time,
    /// Cumulative registry snapshot at the window's close.
    snap: StatRegistry,
}

/// Collects cumulative registry snapshots at fixed sim-time boundaries and
/// renders per-window delta series.
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::{StatRegistry, TimelineConfig, TimelineSampler};
/// use ndpx_sim::time::Time;
///
/// let mut cfg = TimelineConfig::to_path("/tmp/timeline.json");
/// cfg.window = Time::from_ns(100);
/// let mut tl = TimelineSampler::new(cfg);
/// let mut snap = StatRegistry::new();
/// snap.scope("engine").count("ops", 7);
/// assert!(tl.due(Time::from_ns(150)));
/// tl.record(Time::from_ns(150), snap.clone());
/// snap.scope("engine").count("ops", 19);
/// tl.finish(snap);
/// let json = tl.render_json("demo");
/// assert!(json.contains("\"engine.ops\": 12"), "second window holds the delta");
/// ```
#[derive(Debug)]
pub struct TimelineSampler {
    cfg: TimelineConfig,
    windows: Vec<Window>,
    /// Next ring slot to overwrite once `windows` has reached capacity.
    head: usize,
    evicted: u64,
    /// Snapshot of the newest evicted window, so the first retained window
    /// still renders a correct delta.
    evicted_base: Option<StatRegistry>,
    next_boundary: Time,
}

impl TimelineSampler {
    /// Creates an empty sampler; the first window closes at one window
    /// width of simulated time.
    pub fn new(cfg: TimelineConfig) -> Self {
        let window = cfg.window.max(Time::from_ps(1));
        TimelineSampler {
            next_boundary: window,
            cfg: TimelineConfig { window, ..cfg },
            windows: Vec::new(),
            head: 0,
            evicted: 0,
            evicted_base: None,
        }
    }

    /// Creates a sampler if `NDPX_TIMELINE` is set.
    pub fn from_env() -> Option<Self> {
        TimelineConfig::from_env().map(Self::new)
    }

    /// The configured window width.
    pub fn window(&self) -> Time {
        self.cfg.window
    }

    /// The simulated time at which the current window closes. Run loops that
    /// execute ahead of the scheduler clamp their run-ahead horizon to this
    /// so no window boundary is skipped.
    pub fn next_boundary(&self) -> Time {
        self.next_boundary
    }

    /// Whether the event about to be processed at simulated time `t` lies at
    /// or past the current window boundary, i.e. a snapshot is due first.
    #[inline]
    pub fn due(&self, t: Time) -> bool {
        t >= self.next_boundary
    }

    /// Closes the current window with `snap`, the cumulative registry state
    /// strictly before the boundary, then advances the boundary past `t`.
    /// Call when [`due`](Self::due) returns `true`, before processing the
    /// event at `t`; windows with no events in them are skipped, which keeps
    /// sparse runs compact without losing any delta (gaps are zero-delta by
    /// construction).
    pub fn record(&mut self, t: Time, snap: StatRegistry) {
        let end = self.next_boundary;
        let start = end.saturating_sub(self.cfg.window);
        self.push(Window { start, end, snap });
        let w = self.cfg.window.as_ps();
        self.next_boundary = Time::from_ps((t.as_ps() / w + 1) * w);
    }

    /// Closes the trailing partial window with the end-of-run registry
    /// state. Every run records at least this one window.
    pub fn finish(&mut self, snap: StatRegistry) {
        let end = self.next_boundary;
        let start = end.saturating_sub(self.cfg.window);
        self.push(Window { start, end, snap });
    }

    fn push(&mut self, w: Window) {
        let cap = self.cfg.capacity.max(1);
        if self.windows.len() < cap {
            self.windows.push(w);
        } else {
            let old = std::mem::replace(&mut self.windows[self.head], w);
            self.evicted_base = Some(old.snap);
            self.head = (self.head + 1) % cap;
            self.evicted += 1;
        }
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no windows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows in record order (oldest first).
    fn ordered(&self) -> impl Iterator<Item = &Window> {
        let (tail, front) = self.windows.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Renders the timeline JSON: a `ndpx-timeline-v1` document whose
    /// windows carry per-window deltas for counters and point-in-time
    /// readings for gauges. Output is a pure function of the recorded
    /// snapshots, so it is byte-identical across thread counts and queue
    /// backends.
    pub fn render_json(&self, label: &str) -> String {
        let mut out = String::with_capacity(256 + self.windows.len() * 512);
        out.push_str("{\n  \"schema\": \"ndpx-timeline-v1\",\n  \"label\": ");
        write_json_string(&mut out, label);
        out.push_str(&format!(
            ",\n  \"window_ns\": {},\n  \"evicted_windows\": {},\n  \"windows\": [",
            self.cfg.window.as_ns(),
            self.evicted
        ));
        let mut prev: Option<&StatRegistry> = self.evicted_base.as_ref();
        for (i, w) in self.ordered().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"start_ns\": {}, \"end_ns\": {}, \"stats\": ",
                w.start.as_ns(),
                w.end.as_ns()
            ));
            delta_registry(&w.snap, prev).write_stats_object(&mut out, 4);
            out.push('}');
            prev = Some(&w.snap);
        }
        if !self.windows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the rendered timeline to the configured path with the
    /// sanitized `label` inserted before the extension, so parallel cells
    /// produce distinct files whose names do not depend on write order.
    /// Returns the path written.
    pub fn write(&self, label: &str) -> io::Result<PathBuf> {
        let path = labeled_path(&self.cfg.path, label);
        std::fs::write(&path, self.render_json(label))?;
        Ok(path)
    }
}

/// Per-window view of a cumulative snapshot: counters are differenced
/// against the previous window (missing paths diff against zero), everything
/// else passes through as a point-in-time reading.
fn delta_registry(cur: &StatRegistry, prev: Option<&StatRegistry>) -> StatRegistry {
    let mut out = StatRegistry::new();
    for (path, value) in cur.iter() {
        let v = match value {
            StatValue::Count(c) => {
                let base =
                    prev.and_then(|p| p.get(path)).and_then(StatValue::as_count).unwrap_or(0);
                StatValue::Count(c.saturating_sub(base))
            }
            other => other.clone(),
        };
        out.publish(path, v);
    }
    out
}

/// `timeline.json` + `Hbm-NdpExt-mv` → `timeline.Hbm-NdpExt-mv.json`, with
/// the label sanitized to filename-safe characters.
fn labeled_path(base: &Path, label: &str) -> PathBuf {
    let safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect();
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("timeline");
    let named = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{safe}.{ext}"),
        None => format!("{stem}.{safe}"),
    };
    base.with_file_name(named)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ns: u64, cap: usize) -> TimelineConfig {
        let mut c = TimelineConfig::to_path("/tmp/timeline.json");
        c.window = Time::from_ns(window_ns);
        c.capacity = cap;
        c
    }

    fn snap(ops: u64, depth: f64) -> StatRegistry {
        let mut reg = StatRegistry::new();
        let mut e = reg.scope("engine");
        e.count("ops", ops);
        e.gauge("queue.depth", depth);
        reg
    }

    #[test]
    fn counters_render_as_deltas_gauges_as_readings() {
        let mut tl = TimelineSampler::new(cfg(100, 64));
        assert!(!tl.due(Time::from_ns(99)));
        assert!(tl.due(Time::from_ns(100)));
        tl.record(Time::from_ns(120), snap(10, 3.0));
        tl.record(Time::from_ns(250), snap(25, 5.0));
        tl.finish(snap(40, 0.0));
        let json = tl.render_json("t");
        assert!(json.contains("\"ndpx-timeline-v1\""));
        // First window carries the raw count, later windows the deltas.
        assert!(json.contains("\"engine.ops\": 10"));
        assert!(json.contains("\"engine.ops\": 15"));
        assert!(json.contains("\"engine.queue.depth\": 5"));
        // Boundaries stay on fixed multiples of the window width.
        assert!(json.contains("\"start_ns\": 0, \"end_ns\": 100"));
        assert!(json.contains("\"start_ns\": 100, \"end_ns\": 200"));
        assert!(json.contains("\"start_ns\": 200, \"end_ns\": 300"));
    }

    #[test]
    fn boundary_skips_empty_windows() {
        let mut tl = TimelineSampler::new(cfg(100, 64));
        // An event at 950 closes the first window, then jumps the boundary
        // past the gap.
        tl.record(Time::from_ns(950), snap(5, 1.0));
        assert_eq!(tl.next_boundary(), Time::from_ns(1000));
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn ring_eviction_preserves_delta_base() {
        let mut tl = TimelineSampler::new(cfg(100, 2));
        tl.record(Time::from_ns(100), snap(10, 0.0));
        tl.record(Time::from_ns(200), snap(30, 0.0));
        tl.record(Time::from_ns(300), snap(70, 0.0));
        let json = tl.render_json("t");
        // Window one (ops 0→10) was evicted; the two survivors still show
        // their own deltas (20 and 40), not cumulative values.
        assert!(json.contains("\"evicted_windows\": 1"));
        assert!(json.contains("\"engine.ops\": 20"));
        assert!(json.contains("\"engine.ops\": 40"));
        assert!(!json.contains("\"engine.ops\": 30"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut tl = TimelineSampler::new(cfg(50, 8));
            tl.record(Time::from_ns(60), snap(1, 9.0));
            tl.finish(snap(4, 2.0));
            tl.render_json("cell")
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn labeled_paths_are_stable_and_sanitized() {
        let p = labeled_path(Path::new("out/timeline.json"), "Hbm-NdpExt/mv");
        assert_eq!(p, Path::new("out/timeline.Hbm-NdpExt-mv.json"));
        let q = labeled_path(Path::new("timeline"), "a b");
        assert_eq!(q, Path::new("timeline.a-b"));
    }
}
