//! A minimal levelled logging facade.
//!
//! The system models used to carry ad-hoc `eprintln!` debug paths, each with
//! its own environment flag. This module replaces them with one switchboard:
//! `NDPX_LOG=error|warn|info|debug|trace|off` sets the global level (default
//! `warn`, so normal runs are silent on stderr), and the `ndpx_error!` …
//! `ndpx_trace!` macros gate formatting on the level check so disabled
//! statements cost one relaxed atomic load.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising conditions.
    Error = 1,
    /// Suspicious conditions worth surfacing by default.
    Warn = 2,
    /// High-level run progress.
    Info = 3,
    /// Per-component diagnostics (allocation dumps, slow legs).
    Debug = 4,
    /// Per-event firehose.
    Trace = 5,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNSET: u8 = u8::MAX;
/// Level value meaning "log nothing".
const OFF: u8 = 0;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// Parses a level name as accepted by `NDPX_LOG` (case-insensitive; `off`,
/// `0`, and `none` disable logging entirely).
pub fn parse_level(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(OFF),
        "error" | "1" => Some(Level::Error as u8),
        "warn" | "warning" | "2" => Some(Level::Warn as u8),
        "info" | "3" => Some(Level::Info as u8),
        "debug" | "4" => Some(Level::Debug as u8),
        "trace" | "5" => Some(Level::Trace as u8),
        _ => None,
    }
}

fn init_from_env() -> u8 {
    let level = crate::knobs::LOG.raw().and_then(|v| parse_level(&v)).unwrap_or(Level::Warn as u8);
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// Whether messages at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == UNSET { init_from_env() } else { max };
    level as u8 <= max
}

/// Overrides the global level (tests and harness binaries; `None` disables
/// logging entirely).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Emits one formatted line to stderr. Use through the `ndpx_*!` macros,
/// which perform the level check before formatting.
pub fn log(level: Level, module: &str, args: fmt::Arguments<'_>) {
    // A single write_all keeps concurrent worker-thread lines whole.
    let line = format!("[{:5} {module}] {args}\n", level.label());
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! ndpx_error {
    ($($arg:tt)*) => {
        if $crate::telemetry::log::enabled($crate::telemetry::log::Level::Error) {
            $crate::telemetry::log::log(
                $crate::telemetry::log::Level::Error,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! ndpx_warn {
    ($($arg:tt)*) => {
        if $crate::telemetry::log::enabled($crate::telemetry::log::Level::Warn) {
            $crate::telemetry::log::log(
                $crate::telemetry::log::Level::Warn,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! ndpx_info {
    ($($arg:tt)*) => {
        if $crate::telemetry::log::enabled($crate::telemetry::log::Level::Info) {
            $crate::telemetry::log::log(
                $crate::telemetry::log::Level::Info,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! ndpx_debug {
    ($($arg:tt)*) => {
        if $crate::telemetry::log::enabled($crate::telemetry::log::Level::Debug) {
            $crate::telemetry::log::log(
                $crate::telemetry::log::Level::Debug,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! ndpx_trace {
    ($($arg:tt)*) => {
        if $crate::telemetry::log::enabled($crate::telemetry::log::Level::Trace) {
            $crate::telemetry::log::log(
                $crate::telemetry::log::Level::Trace,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(parse_level("warn"), Some(Level::Warn as u8));
        assert_eq!(parse_level("DEBUG"), Some(Level::Debug as u8));
        assert_eq!(parse_level("off"), Some(0));
        assert_eq!(parse_level("bogus"), None);
    }

    #[test]
    fn explicit_level_gates() {
        // Do not touch NDPX_LOG here: env mutation races parallel tests.
        set_max_level(Some(Level::Info));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        // Restore the default so other tests see the usual gate.
        set_max_level(Some(Level::Warn));
    }
}
