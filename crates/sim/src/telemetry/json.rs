//! Minimal JSON value model and parser shared by the telemetry validators
//! and the run-diff reporter.
//!
//! The workspace is dependency-free by design, so this is a purpose-built
//! tokenizer rather than a general JSON library — but it fully tokenizes its
//! input (strings, escapes, nested containers), so malformed documents are
//! rejected outright, not just documents missing an expected key.

/// A parsed JSON value.
///
/// Object fields preserve source order; lookups are linear, which is fine
/// for the small telemetry documents this crate produces.
///
/// # Examples
///
/// ```
/// use ndpx_sim::telemetry::Json;
///
/// let doc = Json::parse("{\"cells\": [{\"digest\": \"2a\"}]}").unwrap();
/// let cells = doc.get("cells").and_then(Json::as_array).unwrap();
/// assert_eq!(cells[0].get("digest").and_then(Json::as_str), Some("2a"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array of values.
    Array(Vec<Json>),
    /// An object as `(key, value)` pairs in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document. Trailing non-whitespace bytes are an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let doc = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(doc)
    }

    /// Looks up an object field by key. Returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (input is &str, so this is safe
                    // to slice on char boundaries).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .map_err(|_| format!("bad utf8 at offset {}", self.pos))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                c => {
                    return Err(format!("expected ',' or ']' got '{}' at {}", c as char, self.pos))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                c => {
                    return Err(format!("expected ',' or '}}' got '{}' at {}", c as char, self.pos))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Json::parse(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, \"s\": \"x\\ny\"}",
        )
        .unwrap();
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\": ").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_is_none_for_scalars() {
        let doc = Json::parse("42").unwrap();
        assert!(doc.get("a").is_none());
        assert_eq!(doc.as_f64(), Some(42.0));
    }
}
