//! Deterministic hard-failure schedules ("chaos plans").
//!
//! [`fault`](crate::fault) models *transient* faults — CRC replays, ECC
//! scrubs, flit retransmits — drawn from a seeded per-decision hash. This
//! module models *hard* failures: whole devices or links going away at a
//! scheduled simulated time, optionally coming back after a window. The
//! schedule is parsed from the `NDPX_CHAOS` knob (or set directly on a
//! config by tests) and is a pure function of the spec string, so chaos
//! runs replay byte-identically at any worker-thread count, exactly like
//! [`FaultPlan`](crate::fault::FaultPlan) schedules do.
//!
//! # Spec grammar
//!
//! `NDPX_CHAOS` is a semicolon-separated list of events, each
//! `kind@time[+duration][:target]`:
//!
//! * `cxl-down@10us+5us` — the CXL link to extended memory goes down at
//!   t = 10 µs and restores at 15 µs; ext accesses issued meanwhile stall
//!   behind bounded doubling retry/backoff until the restore. The duration
//!   is mandatory: a permanent link-down would starve every miss to
//!   extended memory.
//! * `stack-down@20us:1` — NDP stack 1 (all of its units, cores, and DRAM
//!   ranks) dies at t = 20 µs. With `+duration` the stack restores (empty)
//!   after the window; without, the loss is permanent.
//! * `noc-down@15us:0-1` — the directed inter-stack NoC link from stack 0
//!   to stack 1 dies at t = 15 µs, forcing route recomputation. Optional
//!   `+duration` restores it.
//!
//! Times are unsigned integers with an `ns`, `us`, or `ms` suffix (a bare
//! number reads as nanoseconds). Events may be given in any order; the
//! plan applies them in simulated-time order (ties keep spec order).

use crate::time::Time;

/// What fails (and, for directed failures, where).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// The CXL link to extended memory is down for the event's window.
    CxlDown,
    /// An entire NDP stack (units, cores, DRAM) is lost.
    StackDown {
        /// Index of the stack that dies.
        stack: usize,
    },
    /// A directed inter-stack NoC link is lost.
    NocLinkDown {
        /// Source stack of the dead directed link.
        src: usize,
        /// Destination stack of the dead directed link.
        dst: usize,
    },
}

impl ChaosKind {
    /// Stable label used in logs and recovery manifests.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::CxlDown => "cxl-down",
            ChaosKind::StackDown { .. } => "stack-down",
            ChaosKind::NocLinkDown { .. } => "noc-down",
        }
    }
}

/// One scheduled hard failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// What fails.
    pub kind: ChaosKind,
    /// Simulated time the failure hits.
    pub at: Time,
    /// Window length until the resource restores; `None` is permanent.
    pub duration: Option<Time>,
}

impl ChaosEvent {
    /// The restore time, if the failure is windowed.
    pub fn restore_at(&self) -> Option<Time> {
        self.duration.map(|d| self.at + d)
    }
}

/// Parsed chaos configuration. The default ([`ChaosConfig::disabled`]) has
/// no events and leaves every device on its ideal path; a populated config
/// drives the escalation machinery in `ndpx-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Scheduled failures, sorted by time (ties keep spec order).
    pub events: Vec<ChaosEvent>,
    /// Base backoff of the bounded retry loop that ext accesses spin on
    /// during a CXL outage (doubles per probe). From `NDPX_CHAOS_RETRY_NS`.
    pub retry: Time,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ChaosConfig {
    /// Default outage-probe backoff base.
    pub const DEFAULT_RETRY: Time = Time::from_ns(500);

    /// The disabled configuration: no scheduled failures.
    pub const fn disabled() -> Self {
        ChaosConfig { events: Vec::new(), retry: Self::DEFAULT_RETRY }
    }

    /// True when at least one failure is scheduled.
    pub fn enabled(&self) -> bool {
        !self.events.is_empty()
    }

    /// Reads `NDPX_CHAOS` / `NDPX_CHAOS_RETRY_NS`.
    ///
    /// # Panics
    ///
    /// On an unparsable `NDPX_CHAOS` spec: a chaos experiment with a typo'd
    /// schedule must fail loudly, not silently run the ideal path.
    pub fn from_env() -> Self {
        let spec = crate::knobs::CHAOS.raw();
        let retry_ns = crate::knobs::CHAOS_RETRY_NS.u64_opt();
        match Self::parse(spec.as_deref(), retry_ns) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{}: {e}", crate::knobs::CHAOS.name),
        }
    }

    /// Pure parse of the spec grammar (see the module docs). `None` or an
    /// empty spec is the disabled configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn parse(spec: Option<&str>, retry_ns: Option<u64>) -> Result<Self, String> {
        let mut cfg = ChaosConfig::disabled();
        if let Some(ns) = retry_ns {
            cfg.retry = Time::from_ns(ns.max(1));
        }
        let Some(spec) = spec else { return Ok(cfg) };
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            cfg.events.push(parse_event(part)?);
        }
        // Stable: simultaneous events keep their spec order.
        cfg.events.sort_by_key(|e| e.at);
        Ok(cfg)
    }

    /// Validates the schedule's internal consistency (target bounds are
    /// checked by the system config, which knows the topology).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.events {
            if let ChaosKind::CxlDown = e.kind {
                if e.duration.is_none() {
                    return Err("cxl-down needs a +duration (a permanent CXL outage \
                                would starve every extended-memory access)"
                        .into());
                }
            }
            if let ChaosKind::NocLinkDown { src, dst } = e.kind {
                if src == dst {
                    return Err(format!("noc-down target {src}-{dst} is a self-loop"));
                }
            }
            if e.duration == Some(Time::ZERO) {
                return Err(format!("{} at {}ps has a zero-length window", e.kind.label(), {
                    e.at.as_ps()
                }));
            }
        }
        Ok(())
    }
}

/// A runtime cursor over a [`ChaosConfig`]'s schedule: events are consumed
/// in time order, once each, as the simulation clock passes them.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    next: usize,
}

impl ChaosPlan {
    /// A cursor at the start of `cfg`'s schedule.
    pub fn new(cfg: &ChaosConfig) -> Self {
        ChaosPlan { events: cfg.events.clone(), next: 0 }
    }

    /// Simulated time of the next unconsumed event, if any. Run loops clamp
    /// their run-ahead window to this so no batch skips past a failure.
    pub fn next_at(&self) -> Option<Time> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Consumes and returns the next event if it is due at `now`, together
    /// with its schedule index (stable event id for recovery stats).
    pub fn pop_due(&mut self, now: Time) -> Option<(usize, ChaosEvent)> {
        let e = *self.events.get(self.next)?;
        if e.at > now {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        Some((idx, e))
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Parses one `kind@time[+duration][:target]` event.
fn parse_event(part: &str) -> Result<ChaosEvent, String> {
    let (kind_str, rest) =
        part.split_once('@').ok_or_else(|| format!("event {part:?} is missing '@time'"))?;
    // Target first (it follows the time fields).
    let (times, target) = match rest.split_once(':') {
        Some((t, tgt)) => (t, Some(tgt)),
        None => (rest, None),
    };
    let (at_str, dur_str) = match times.split_once('+') {
        Some((a, d)) => (a, Some(d)),
        None => (times, None),
    };
    let at = parse_time(at_str)?;
    let duration = dur_str.map(parse_time).transpose()?;
    let kind = match kind_str.trim() {
        "cxl-down" => {
            if target.is_some() {
                return Err(format!("cxl-down takes no target, got {part:?}"));
            }
            ChaosKind::CxlDown
        }
        "stack-down" => {
            let tgt = target.ok_or_else(|| format!("stack-down needs ':stack', got {part:?}"))?;
            let stack = tgt
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("stack-down target {tgt:?} is not a stack index"))?;
            ChaosKind::StackDown { stack }
        }
        "noc-down" => {
            let tgt = target.ok_or_else(|| format!("noc-down needs ':src-dst', got {part:?}"))?;
            let (s, d) = tgt
                .split_once('-')
                .ok_or_else(|| format!("noc-down target {tgt:?} is not 'src-dst'"))?;
            let src = s
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("noc-down source {s:?} is not a stack index"))?;
            let dst = d
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("noc-down destination {d:?} is not a stack index"))?;
            ChaosKind::NocLinkDown { src, dst }
        }
        other => {
            return Err(format!("unknown chaos kind {other:?} (cxl-down|stack-down|noc-down)"))
        }
    };
    Ok(ChaosEvent { kind, at, duration })
}

/// Parses an unsigned duration with an optional `ns`/`us`/`ms` suffix
/// (bare numbers read as nanoseconds).
fn parse_time(s: &str) -> Result<Time, String> {
    let s = s.trim();
    let (digits, mult_ns) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    let n = digits
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("time {s:?} is not an unsigned integer with ns/us/ms"))?;
    Ok(Time::from_ns(n.saturating_mul(mult_ns)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(spec: &str) -> ChaosConfig {
        ChaosConfig::parse(Some(spec), None).expect("valid spec")
    }

    #[test]
    fn disabled_by_default() {
        let cfg = ChaosConfig::parse(None, None).unwrap();
        assert!(!cfg.enabled());
        assert_eq!(cfg, ChaosConfig::disabled());
        assert!(ChaosConfig::parse(Some("  "), None).unwrap().events.is_empty());
        cfg.validate().unwrap();
    }

    #[test]
    fn parses_every_kind_and_suffix() {
        let cfg = parse("cxl-down@10us+5us; stack-down@20us:1; noc-down@15000ns+1ms:0-1");
        assert_eq!(cfg.events.len(), 3);
        // Sorted by time: cxl @10us, noc @15us, stack @20us.
        assert_eq!(cfg.events[0].kind, ChaosKind::CxlDown);
        assert_eq!(cfg.events[0].at, Time::from_us(10));
        assert_eq!(cfg.events[0].restore_at(), Some(Time::from_us(15)));
        assert_eq!(cfg.events[1].kind, ChaosKind::NocLinkDown { src: 0, dst: 1 });
        assert_eq!(cfg.events[1].at, Time::from_us(15));
        assert_eq!(cfg.events[1].duration, Some(Time::from_us(1000)));
        assert_eq!(cfg.events[2].kind, ChaosKind::StackDown { stack: 1 });
        assert_eq!(cfg.events[2].duration, None);
        assert_eq!(cfg.events[2].restore_at(), None);
        cfg.validate().unwrap();
    }

    #[test]
    fn bare_numbers_read_as_nanoseconds() {
        let cfg = parse("stack-down@750:0");
        assert_eq!(cfg.events[0].at, Time::from_ns(750));
    }

    #[test]
    fn retry_override_clamps_to_one_ns() {
        assert_eq!(ChaosConfig::parse(None, Some(0)).unwrap().retry, Time::from_ns(1));
        assert_eq!(ChaosConfig::parse(None, Some(250)).unwrap().retry, Time::from_ns(250));
        assert_eq!(ChaosConfig::disabled().retry, ChaosConfig::DEFAULT_RETRY);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "stack-down",            // no @time
            "stack-down@10us",       // no target
            "stack-down@10us:x",     // non-numeric target
            "noc-down@10us:3",       // not a src-dst pair
            "cxl-down@10us:1",       // cxl takes no target
            "meteor-strike@10us",    // unknown kind
            "stack-down@-3us:0",     // negative time
            "stack-down@1.5us:0",    // fractional time
            "stack-down@10parsec:0", // unknown suffix
        ] {
            assert!(ChaosConfig::parse(Some(bad), None).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn validation_rejects_inconsistent_events() {
        // Permanent CXL outage.
        let cfg = parse("cxl-down@10us+5us");
        cfg.validate().unwrap();
        let mut cfg = cfg;
        cfg.events[0].duration = None;
        assert!(cfg.validate().is_err());
        // Self-loop link.
        assert!(parse("noc-down@1us:2-2").validate().is_err());
        // Zero-length window.
        assert!(parse("stack-down@1us+0ns:0").validate().is_err());
    }

    #[test]
    fn plan_consumes_events_in_time_order_once() {
        let cfg = parse("stack-down@20us:1; cxl-down@10us+5us");
        let mut plan = ChaosPlan::new(&cfg);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.next_at(), Some(Time::from_us(10)));
        assert!(plan.pop_due(Time::from_us(9)).is_none());
        let (idx, e) = plan.pop_due(Time::from_us(10)).unwrap();
        assert_eq!((idx, e.kind), (0, ChaosKind::CxlDown));
        assert_eq!(plan.next_at(), Some(Time::from_us(20)));
        // Far-future clock drains the rest, exactly once.
        let (idx, e) = plan.pop_due(Time::from_us(1000)).unwrap();
        assert_eq!((idx, e.kind), (1, ChaosKind::StackDown { stack: 1 }));
        assert!(plan.pop_due(Time::from_us(2000)).is_none());
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn simultaneous_events_keep_spec_order() {
        let cfg = parse("noc-down@5us:0-1; stack-down@5us:2");
        let mut plan = ChaosPlan::new(&cfg);
        let (_, first) = plan.pop_due(Time::from_us(5)).unwrap();
        let (_, second) = plan.pop_due(Time::from_us(5)).unwrap();
        assert_eq!(first.kind, ChaosKind::NocLinkDown { src: 0, dst: 1 });
        assert_eq!(second.kind, ChaosKind::StackDown { stack: 2 });
    }
}
