//! Exact strength-reduced division by runtime-constant divisors.
//!
//! The run loop's per-op cost is dominated by a handful of integer
//! divisions whose divisors are fixed at construction (line bytes, DRAM
//! row/bank geometry, affine-shape dimension lengths, sampler strides). A
//! hardware 64-bit divide is ~20–40 cycles and serializes; [`Divisor`]
//! precomputes the divisor's shape once and answers `div`/`rem`/
//! `is_multiple` with shifts and multiplies instead.
//!
//! Exactness contract: every operation returns *bit-identical* results to
//! the plain `/`, `%`, and `is_multiple_of` it replaces, for every input —
//! this is load-bearing for the simulator's digest stability. Power-of-two
//! divisors reduce to shift/mask (always exact); other divisors use a
//! Lemire magic multiply, which is proven exact for dividends below 2³²,
//! with an automatic fallback to the hardware divide above that (the
//! fallback branch compares against a constant and predicts perfectly in
//! the simulator, where dividends are element indices and addresses that
//! rarely cross 2³²). Divisibility testing uses the modular-inverse trick
//! (Hacker's Delight 10-17), exact for all 64-bit inputs.

/// A divisor with precomputed reduction constants.
///
/// # Examples
///
/// ```
/// use ndpx_sim::fastdiv::Divisor;
///
/// let d = Divisor::new(12);
/// assert_eq!(d.div(145), 145 / 12);
/// assert_eq!(d.rem(145), 145 % 12);
/// assert!(d.is_multiple(144));
/// assert!(!d.is_multiple(145));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Divisor {
    d: u64,
    kind: Kind,
    /// Modular inverse of the odd part of `d` (mod 2⁶⁴).
    odd_inv: u64,
    /// `u64::MAX / odd_part`: multiples of the odd part map at or below
    /// this bound under `odd_inv` multiplication.
    odd_limit: u64,
    /// Trailing zero bits of `d` (the power-of-two part).
    tz: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// `d` is a power of two: shift and mask.
    Pow2(u32),
    /// Lemire magic `ceil(2⁶⁴ / d)`: exact for dividends `< 2³²`.
    Magic(u64),
    /// Divisor too large for the 32-bit-dividend magic: hardware divide.
    Plain,
}

impl Divisor {
    /// Precomputes constants for divisor `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero divisor");
        let kind = if d.is_power_of_two() {
            Kind::Pow2(d.trailing_zeros())
        } else if d <= u64::from(u32::MAX) {
            // ceil(2^64 / d) for non-power-of-two d, computed without u128.
            Kind::Magic(u64::MAX / d + 1)
        } else {
            Kind::Plain
        };
        let tz = d.trailing_zeros();
        let odd = d >> tz;
        Divisor { d, kind, odd_inv: mod_inverse(odd), odd_limit: u64::MAX / odd, tz }
    }

    /// The divisor value.
    pub fn get(&self) -> u64 {
        self.d
    }

    /// `n / d`, exactly.
    #[inline]
    pub fn div(&self, n: u64) -> u64 {
        match self.kind {
            Kind::Pow2(s) => n >> s,
            Kind::Magic(m) => {
                if n > u64::from(u32::MAX) {
                    return n / self.d;
                }
                (((u128::from(m)) * u128::from(n)) >> 64) as u64
            }
            Kind::Plain => n / self.d,
        }
    }

    /// `n % d`, exactly.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        match self.kind {
            Kind::Pow2(s) => n & ((1u64 << s) - 1),
            _ => n - self.div(n) * self.d,
        }
    }

    /// `(n / d, n % d)` in one reduction.
    #[inline]
    pub fn divmod(&self, n: u64) -> (u64, u64) {
        match self.kind {
            Kind::Pow2(s) => (n >> s, n & ((1u64 << s) - 1)),
            _ => {
                let q = self.div(n);
                (q, n - q * self.d)
            }
        }
    }

    /// `n % d == 0`, exactly, for all 64-bit `n` (no 2³² restriction):
    /// `d = odd · 2^k` divides `n` iff the low `k` bits of `n` are zero
    /// and `(n >> k) · odd⁻¹ (mod 2⁶⁴) ≤ ⌊(2⁶⁴−1)/odd⌋`.
    #[inline]
    pub fn is_multiple(&self, n: u64) -> bool {
        if self.tz > 0 && n & ((1u64 << self.tz) - 1) != 0 {
            return false;
        }
        (n >> self.tz).wrapping_mul(self.odd_inv) <= self.odd_limit
    }
}

/// Multiplicative inverse of odd `a` modulo 2⁶⁴ (Newton iteration).
fn mod_inverse(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "inverse needs an odd argument");
    // 5 Newton steps double the valid bits each time: 4 → 64.
    let mut x = a; // correct to 4 bits for odd a
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn matches_hardware_division_exhaustively() {
        let mut rng = Xoshiro256::seed_from(0xD1F_D1F);
        let mut divisors = vec![1, 2, 3, 4, 5, 6, 7, 8, 12, 63, 64, 65, 100, 4096, 1 << 20];
        divisors.extend((0..50).map(|_| rng.next_u64() % (1 << 34) + 1));
        divisors.extend((0..10).map(|_| rng.next_u64() | 1)); // huge odd
        for d in divisors {
            let fd = Divisor::new(d);
            let mut inputs =
                vec![0, 1, d - 1, d, d.wrapping_add(1), d.wrapping_mul(3), u64::MAX, u64::MAX - 1];
            inputs.extend((0..200).map(|_| rng.next_u64()));
            inputs.extend((0..200).map(|_| rng.next_u64() % (1 << 32)));
            inputs.extend((0..50).map(|i| d.wrapping_mul(i)));
            for n in inputs {
                assert_eq!(fd.div(n), n / d, "div n={n} d={d}");
                assert_eq!(fd.rem(n), n % d, "rem n={n} d={d}");
                assert_eq!(fd.divmod(n), (n / d, n % d), "divmod n={n} d={d}");
                assert_eq!(fd.is_multiple(n), n % d == 0, "is_multiple n={n} d={d}");
            }
        }
    }

    #[test]
    fn mod_inverse_is_exact() {
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..1000 {
            let a = rng.next_u64() | 1;
            assert_eq!(a.wrapping_mul(mod_inverse(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero divisor")]
    fn zero_divisor_panics() {
        let _ = Divisor::new(0);
    }
}
