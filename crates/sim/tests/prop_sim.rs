//! Randomized property tests for the simulation substrate: time arithmetic,
//! event ordering, and RNG range guarantees.
//!
//! Cases are driven by the crate's own seeded [`Xoshiro256`] so the suite is
//! deterministic and needs no external property-testing framework (the
//! workspace builds fully offline).

use ndpx_sim::engine::EventQueue;
use ndpx_sim::rng::{hash_range, Xoshiro256};
use ndpx_sim::time::{Freq, Time};

const CASES: u64 = 256;

#[test]
fn time_addition_is_commutative_and_monotonic() {
    let mut rng = Xoshiro256::seed_from(0xA11CE);
    for _ in 0..CASES {
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let ta = Time::from_ps(a);
        let tb = Time::from_ps(b);
        assert_eq!(ta + tb, tb + ta);
        assert!(ta + tb >= ta);
        assert_eq!((ta + tb) - tb, ta);
        assert_eq!(ta.max(tb).min(ta), ta.min(tb).max(ta));
    }
}

#[test]
fn saturating_sub_never_underflows() {
    let mut rng = Xoshiro256::seed_from(0xB0B);
    for _ in 0..CASES {
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let d = Time::from_ps(a).saturating_sub(Time::from_ps(b));
        assert_eq!(d.as_ps(), a.saturating_sub(b));
    }
}

#[test]
fn cycle_conversions_round_trip() {
    let mut rng = Xoshiro256::seed_from(0xC1C);
    for _ in 0..CASES {
        let mhz = 1 + rng.below(4999);
        let cycles = rng.below(1 << 24);
        let f = Freq::from_mhz(mhz);
        let t = f.cycles_to_time(cycles);
        assert_eq!(f.time_to_cycles(t), cycles);
    }
}

#[test]
fn event_queue_pops_sorted_and_stable() {
    let mut rng = Xoshiro256::seed_from(0xE7E);
    for _ in 0..64 {
        let n = 1 + rng.below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Time::from_ns(rng.below(1000)), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "events out of time order");
                if t == lt {
                    assert!(i > li, "equal-time events must be FIFO");
                }
            }
            last = Some((t, i));
        }
    }
}

#[test]
fn hash_range_is_deterministic_and_bounded() {
    let mut rng = Xoshiro256::seed_from(0x44A);
    for _ in 0..CASES {
        let x = rng.next_u64();
        let n = 1 + rng.below((1 << 32) - 1);
        let h = hash_range(x, n);
        assert!(h < n);
        assert_eq!(h, hash_range(x, n));
    }
}

#[test]
fn rng_below_and_powerlaw_bounded() {
    let mut meta = Xoshiro256::seed_from(0x9999);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let n = 1 + meta.below((1 << 20) - 1);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..32 {
            assert!(rng.below(n) < n);
        }
        let n2 = n.max(2);
        for _ in 0..32 {
            assert!(rng.powerlaw_below(n2, 1.8) < n2);
        }
    }
}

#[test]
fn same_seed_same_stream() {
    let mut meta = Xoshiro256::seed_from(0x5EED);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let mut a = Xoshiro256::seed_from(seed);
        let mut b = Xoshiro256::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
