//! Property tests for the simulation substrate: time arithmetic, event
//! ordering, and RNG range guarantees.

use ndpx_sim::engine::EventQueue;
use ndpx_sim::rng::{hash_range, Xoshiro256};
use ndpx_sim::time::{Freq, Time};
use proptest::prelude::*;

proptest! {
    #[test]
    fn time_addition_is_commutative_and_monotonic(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let ta = Time::from_ps(a);
        let tb = Time::from_ps(b);
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert!(ta + tb >= ta);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.max(tb).min(ta), ta.min(tb).max(ta));
    }

    #[test]
    fn saturating_sub_never_underflows(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let d = Time::from_ps(a).saturating_sub(Time::from_ps(b));
        prop_assert_eq!(d.as_ps(), a.saturating_sub(b));
    }

    #[test]
    fn cycle_conversions_round_trip(mhz in 1u64..5000, cycles in 0u64..1 << 24) {
        let f = Freq::from_mhz(mhz);
        let t = f.cycles_to_time(cycles);
        prop_assert_eq!(f.time_to_cycles(t), cycles);
    }

    #[test]
    fn event_queue_pops_sorted_and_stable(events in prop::collection::vec((0u64..1000, 0u32..100), 1..200)) {
        let mut q = EventQueue::new();
        for (i, &(t, tag)) in events.iter().enumerate() {
            q.push(Time::from_ns(t), (tag, i));
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, (_, i))) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "events out of time order");
                if t == lt {
                    prop_assert!(i > li, "equal-time events must be FIFO");
                }
            }
            last = Some((t, i));
        }
    }

    #[test]
    fn hash_range_is_deterministic_and_bounded(x in any::<u64>(), n in 1u64..1 << 32) {
        let h = hash_range(x, n);
        prop_assert!(h < n);
        prop_assert_eq!(h, hash_range(x, n));
    }

    #[test]
    fn rng_below_and_powerlaw_bounded(seed in any::<u64>(), n in 1u64..1 << 20) {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
        let n2 = n.max(2);
        for _ in 0..32 {
            prop_assert!(rng.powerlaw_below(n2, 1.8) < n2);
        }
    }

    #[test]
    fn same_seed_same_stream(seed in any::<u64>()) {
        let mut a = Xoshiro256::seed_from(seed);
        let mut b = Xoshiro256::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
