//! Randomized property tests for the simulation substrate: time arithmetic,
//! event ordering, and RNG range guarantees.
//!
//! Cases are driven by the crate's own seeded [`Xoshiro256`] so the suite is
//! deterministic and needs no external property-testing framework (the
//! workspace builds fully offline).

use ndpx_sim::engine::{EventQueue, QueueImpl};
use ndpx_sim::rng::{hash_range, Xoshiro256};
use ndpx_sim::time::{Freq, Time};

const CASES: u64 = 256;

/// A random event time mixing near-horizon and far-future (overflow-tree)
/// scales: mostly nanoseconds, sometimes tens of microseconds beyond the
/// wheel's near horizon, with repeated values so equal-time ties occur.
fn mixed_time(rng: &mut Xoshiro256, base: Time) -> Time {
    let t = match rng.below(8) {
        0..=4 => Time::from_ns(rng.below(64)),
        5 => Time::from_ns(rng.below(4)), // dense ties
        6 => Time::from_us(1 + rng.below(40)),
        _ => Time::from_ps(rng.below(1 << 30)),
    };
    base + t
}

#[test]
fn time_addition_is_commutative_and_monotonic() {
    let mut rng = Xoshiro256::seed_from(0xA11CE);
    for _ in 0..CASES {
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let ta = Time::from_ps(a);
        let tb = Time::from_ps(b);
        assert_eq!(ta + tb, tb + ta);
        assert!(ta + tb >= ta);
        assert_eq!((ta + tb) - tb, ta);
        assert_eq!(ta.max(tb).min(ta), ta.min(tb).max(ta));
    }
}

#[test]
fn saturating_sub_never_underflows() {
    let mut rng = Xoshiro256::seed_from(0xB0B);
    for _ in 0..CASES {
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let d = Time::from_ps(a).saturating_sub(Time::from_ps(b));
        assert_eq!(d.as_ps(), a.saturating_sub(b));
    }
}

#[test]
fn cycle_conversions_round_trip() {
    let mut rng = Xoshiro256::seed_from(0xC1C);
    for _ in 0..CASES {
        let mhz = 1 + rng.below(4999);
        let cycles = rng.below(1 << 24);
        let f = Freq::from_mhz(mhz);
        let t = f.cycles_to_time(cycles);
        assert_eq!(f.time_to_cycles(t), cycles);
    }
}

#[test]
fn event_queue_pops_sorted_and_stable() {
    let mut rng = Xoshiro256::seed_from(0xE7E);
    for _ in 0..64 {
        let n = 1 + rng.below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Time::from_ns(rng.below(1000)), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "events out of time order");
                if t == lt {
                    assert!(i > li, "equal-time events must be FIFO");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Differential oracle: the time-wheel and the reference `BinaryHeap`
/// implementation must produce identical results for identical random
/// FIFO-mode sequences (`push` / `push_pop` / `pop`), including equal-time
/// ties and far-future times that route through the wheel's overflow tree.
#[test]
fn wheel_matches_heap_fifo_sequences() {
    let mut rng = Xoshiro256::seed_from(0xD1FF);
    for _ in 0..96 {
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut heap = EventQueue::with_impl(QueueImpl::Heap);
        let mut now = Time::ZERO;
        let mut payload = 0u64;
        for _ in 0..400 {
            match rng.below(4) {
                0 | 1 => {
                    let t = mixed_time(&mut rng, now);
                    wheel.push(t, payload);
                    heap.push(t, payload);
                    payload += 1;
                }
                2 => {
                    let t = mixed_time(&mut rng, now);
                    let a = wheel.push_pop(t, payload);
                    let b = heap.push_pop(t, payload);
                    assert_eq!(a, b, "push_pop diverged");
                    payload += 1;
                    now = now.max(a.0);
                }
                _ => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "pop diverged");
                    if let Some((t, _)) = a {
                        now = now.max(t);
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
        }
        assert_eq!(wheel.peek_time(), heap.peek_time());
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "drain diverged"),
            }
        }
        assert_eq!(wheel.scheduled(), heap.scheduled());
        assert_eq!(wheel.processed(), heap.processed());
    }
}

/// `peek_time` checked after every mutation: the wheel memoizes its
/// minimum, and that cache must stay coherent through inserts (smaller,
/// equal, and later keys), removals, and overflow cascades. The run-ahead
/// batching window reads `peek_time` once per batch — a stale cache would
/// silently widen or shrink the window, changing simulated interleavings.
#[test]
fn peek_time_stays_coherent_under_churn() {
    let mut rng = Xoshiro256::seed_from(0x9EEC);
    for _ in 0..96 {
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut heap = EventQueue::with_impl(QueueImpl::Heap);
        let mut now = Time::ZERO;
        let mut payload = 0u64;
        for _ in 0..300 {
            match rng.below(5) {
                0 | 1 => {
                    let t = mixed_time(&mut rng, now);
                    wheel.push(t, payload);
                    heap.push(t, payload);
                    payload += 1;
                }
                2 => {
                    let t = mixed_time(&mut rng, now);
                    let a = wheel.push_pop(t, payload);
                    let b = heap.push_pop(t, payload);
                    assert_eq!(a, b, "push_pop diverged");
                    payload += 1;
                    now = now.max(a.0);
                }
                _ => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "pop diverged");
                    if let Some((t, _)) = a {
                        now = now.max(t);
                    }
                }
            }
            assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged mid-churn");
        }
        // Drain: every peek must equal the time the next pop returns, and
        // peeking must never perturb pop order.
        while let Some(pt) = wheel.peek_time() {
            let (t, _) = wheel.pop().expect("peek said non-empty");
            assert_eq!(pt, t, "peek disagreed with pop");
            let (th, _) = heap.pop().expect("heap in lockstep");
            assert_eq!(t, th, "drain diverged");
        }
        assert!(heap.peek_time().is_none());
        assert!(wheel.pop().is_none() && heap.pop().is_none());
    }
}

/// Differential oracle for the ranked tiebreak space: identical random
/// `push_ranked` / `push_pop_ranked` / `pop` sequences — with deliberate
/// equal-time, distinct-rank collisions — must pop identically from both
/// implementations.
#[test]
fn wheel_matches_heap_ranked_sequences() {
    let mut rng = Xoshiro256::seed_from(0xAB1E);
    for _ in 0..96 {
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut heap = EventQueue::with_impl(QueueImpl::Heap);
        // One pending event per rank (the run-loop invariant), times drawn
        // from few distinct values so equal-time rank ties are common.
        let ranks = 2 + rng.below(14);
        for r in 0..ranks {
            let t = mixed_time(&mut rng, Time::ZERO);
            wheel.push_ranked(t, r, r);
            heap.push_ranked(t, r, r);
        }
        let (mut now, mut rank) = {
            let a = wheel.pop().expect("non-empty");
            let b = heap.pop().expect("non-empty");
            assert_eq!(a, b);
            a
        };
        for _ in 0..500 {
            let t = mixed_time(&mut rng, now);
            let a = wheel.push_pop_ranked(t, rank, rank);
            let b = heap.push_pop_ranked(t, rank, rank);
            assert_eq!(a, b, "push_pop_ranked diverged");
            (now, rank) = a;
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "ranked drain diverged"),
            }
        }
    }
}

#[test]
fn hash_range_is_deterministic_and_bounded() {
    let mut rng = Xoshiro256::seed_from(0x44A);
    for _ in 0..CASES {
        let x = rng.next_u64();
        let n = 1 + rng.below((1 << 32) - 1);
        let h = hash_range(x, n);
        assert!(h < n);
        assert_eq!(h, hash_range(x, n));
    }
}

#[test]
fn rng_below_and_powerlaw_bounded() {
    let mut meta = Xoshiro256::seed_from(0x9999);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let n = 1 + meta.below((1 << 20) - 1);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..32 {
            assert!(rng.below(n) < n);
        }
        let n2 = n.max(2);
        for _ in 0..32 {
            assert!(rng.powerlaw_below(n2, 1.8) < n2);
        }
    }
}

#[test]
fn same_seed_same_stream() {
    let mut meta = Xoshiro256::seed_from(0x5EED);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let mut a = Xoshiro256::seed_from(seed);
        let mut b = Xoshiro256::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
