//! # ndpx-mem
//!
//! DRAM device timing and energy models for the NDPExt reproduction.
//!
//! The crate provides bank-level models of the three memory families in the
//! paper's Table II:
//!
//! * **HBM3-1600** — the per-unit memory region of HBM-style NDP stacks;
//! * **HMC 2.1** — the per-vault memory of HMC-style NDP stacks;
//! * **DDR5-4800** — the backend of the CXL extended memory.
//!
//! [`device::DramDevice`] models open-row state and per-bank queueing;
//! [`timing::DramTiming`] / [`timing::DramEnergy`] hold the datasheet
//! parameters.
//!
//! # Examples
//!
//! ```
//! use ndpx_mem::device::{DramConfig, DramDevice};
//! use ndpx_sim::time::Time;
//!
//! let mut hbm = DramDevice::new(DramConfig::hbm3_unit(256 << 20));
//! let done = hbm.access(0x1000, 64, false, Time::ZERO);
//! assert_eq!(done, hbm.config().timing.row_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod timing;

pub use device::{DramConfig, DramDevice, DramStats, EccOutcome, MemFault, MemFaultStats};
pub use timing::{DramEnergy, DramTiming};
