//! Bank-level DRAM device model.
//!
//! [`DramDevice`] models a set of independent banks with open-row state and a
//! per-bank `busy_until` reservation. An access pays the row-hit / row-empty /
//! row-conflict latency of [`super::timing::DramTiming`] plus any queueing
//! delay behind earlier accesses to the same bank. Energy is accounted per
//! bit transferred and per activate/precharge pair.

use ndpx_sim::energy::Energy;
use ndpx_sim::fastdiv::Divisor;
use ndpx_sim::fault::FaultPlan;
use ndpx_sim::stats::Counter;
use ndpx_sim::time::Time;

use crate::timing::{DramEnergy, DramTiming};

/// Static configuration of one DRAM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Timing parameter set.
    pub timing: DramTiming,
    /// Energy parameter set.
    pub energy: DramEnergy,
    /// Number of independent banks (channels × ranks × banks for DIMMs).
    pub banks: usize,
    /// Independent data channels (each bank belongs to `bank % channels`).
    pub channels: usize,
    /// Data-bus bandwidth per channel, bytes per nanosecond.
    pub bus_bytes_per_ns: f64,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Total device capacity in bytes.
    pub capacity: u64,
}

impl DramConfig {
    /// One NDP unit's HBM3 region (Table II: 256 MB/unit, 2 kB rows).
    pub fn hbm3_unit(capacity: u64) -> Self {
        DramConfig {
            timing: DramTiming::hbm3(),
            energy: DramEnergy::hbm3(),
            banks: 16,
            channels: 1,
            bus_bytes_per_ns: 50.0,
            row_bytes: 2048,
            capacity,
        }
    }

    /// One NDP unit's HMC2 vault.
    pub fn hmc2_unit(capacity: u64) -> Self {
        DramConfig {
            timing: DramTiming::hmc2(),
            energy: DramEnergy::hmc2(),
            banks: 16,
            channels: 1,
            bus_bytes_per_ns: 16.0,
            row_bytes: 256,
            capacity,
        }
    }

    /// The CXL extended memory backend
    /// (Table II: DDR5-4800, 4 channels × 2 ranks × 16 banks).
    pub fn ddr5_extended(capacity: u64) -> Self {
        DramConfig {
            timing: DramTiming::ddr5_4800(),
            energy: DramEnergy::ddr5(),
            banks: 4 * 2 * 16,
            channels: 4,
            bus_bytes_per_ns: 38.4,
            row_bytes: 8192,
            capacity,
        }
    }

    /// Number of DRAM rows in the device.
    pub fn rows(&self) -> u64 {
        self.capacity / self.row_bytes
    }
}

/// Counters exposed by a [`DramDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses served.
    pub reads: Counter,
    /// Write accesses served.
    pub writes: Counter,
    /// Accesses that hit the open row.
    pub row_hits: Counter,
    /// Accesses to a precharged bank.
    pub row_empty: Counter,
    /// Accesses that had to close another row first.
    pub row_conflicts: Counter,
    /// Bytes transferred.
    pub bytes: Counter,
    /// Activate operations issued.
    pub activates: Counter,
}

impl DramStats {
    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        self.row_hits.ratio_of(self.accesses())
    }
}

/// The ECC verdict of one read access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EccOutcome {
    /// No error detected.
    #[default]
    Clean,
    /// A single-bit error was corrected; the access paid scrub latency.
    Corrected,
    /// A multi-bit error SEC-DED cannot fix: the returned data is poisoned
    /// and the consumer must discard (and refetch) it.
    Poisoned,
}

/// Counters for the SEC-DED ECC fault model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemFaultStats {
    /// Correctable (single-bit) errors scrubbed.
    pub ce: u64,
    /// Uncorrectable errors: reads that returned poisoned data.
    pub ue: u64,
    /// Total scrub latency added to correctable-error reads.
    pub scrub_time: Time,
}

/// SEC-DED ECC fault model for a [`DramDevice`].
///
/// Error events are drawn per *read* from a deterministic [`FaultPlan`]:
/// an uncorrectable roll poisons the returned data; otherwise a correctable
/// roll adds scrub latency and extends the bank occupancy. Writes always
/// store clean data.
#[derive(Debug, Clone, PartialEq)]
pub struct MemFault {
    plan: FaultPlan,
    /// Correctable-error probability per read.
    ce: f64,
    /// Uncorrectable-error probability per read.
    ue: f64,
    /// Latency of an in-line scrub (correct + write back).
    scrub: Time,
    stats: MemFaultStats,
}

impl MemFault {
    /// Default in-line scrub latency.
    pub const DEFAULT_SCRUB: Time = Time::from_ns(100);

    /// Creates the model from a derived decision [`FaultPlan`] and per-read
    /// correctable / uncorrectable error probabilities.
    pub fn new(plan: FaultPlan, ce: f64, ue: f64) -> Self {
        MemFault { plan, ce, ue, scrub: Self::DEFAULT_SCRUB, stats: MemFaultStats::default() }
    }

    /// Injection counters.
    pub fn stats(&self) -> &MemFaultStats {
        &self.stats
    }

    /// Decisions drawn so far.
    pub fn rolls(&self) -> u64 {
        self.plan.rolls()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Time,
}

/// A DRAM device with per-bank open-row tracking and reservation-based
/// queueing.
///
/// # Examples
///
/// ```
/// use ndpx_mem::device::{DramConfig, DramDevice};
/// use ndpx_sim::time::Time;
///
/// let mut dram = DramDevice::new(DramConfig::hbm3_unit(1 << 20));
/// let t0 = dram.access(0, 64, false, Time::ZERO);
/// // A second access to the same row hits the open row buffer.
/// let t1 = dram.access(64, 64, false, t0);
/// assert!(t1 - t0 < t0 - Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Two interleaved reservation slots per channel bus (each holding 2×
    /// the transfer time) so future-scheduled transfers do not falsely block
    /// earlier idle windows while aggregate bandwidth stays exact.
    buses: Vec<Time>,
    stats: DramStats,
    dynamic: Energy,
    fault: Option<MemFault>,
    /// Set while the rank is offline (chaos stack loss): background power
    /// stops accruing and accesses are a logic error.
    offline_at: Option<Time>,
    /// Total span of already-closed offline windows (power-gated).
    offline_span: Time,
    /// Strength-reduced geometry divisors (`/ row_bytes`, `/ banks`,
    /// `% channels`): the address decompose runs on every access.
    row_div: Divisor,
    bank_div: Divisor,
    chan_div: Divisor,
}

/// Reservation slots per channel bus.
const BUS_SLOTS: usize = 2;

impl DramDevice {
    /// Creates a device with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero-sized row.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "device must have at least one bank");
        assert!(cfg.channels > 0, "device must have at least one channel");
        assert!(cfg.row_bytes > 0, "row size must be positive");
        assert!(cfg.bus_bytes_per_ns > 0.0, "bus bandwidth must be positive");
        DramDevice {
            banks: vec![Bank::default(); cfg.banks],
            buses: vec![Time::ZERO; cfg.channels * BUS_SLOTS],
            row_div: Divisor::new(cfg.row_bytes),
            bank_div: Divisor::new(cfg.banks as u64),
            chan_div: Divisor::new(cfg.channels as u64),
            cfg,
            stats: DramStats::default(),
            dynamic: Energy::ZERO,
            fault: None,
            offline_at: None,
            offline_span: Time::ZERO,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Installs (or clears) the ECC fault model.
    pub fn set_fault(&mut self, fault: Option<MemFault>) {
        self.fault = fault;
    }

    /// The installed fault model's counters, if any.
    pub fn fault_stats(&self) -> Option<&MemFaultStats> {
        self.fault.as_ref().map(MemFault::stats)
    }

    /// Decisions drawn by the installed fault model, if any.
    pub fn fault_rolls(&self) -> Option<u64> {
        self.fault.as_ref().map(MemFault::rolls)
    }

    /// Takes the rank offline at `at` (chaos stack loss): its contents are
    /// gone, background power stops accruing, and further accesses are a
    /// logic error until [`set_online`](Self::set_online). Idempotent while
    /// already offline.
    pub fn set_offline(&mut self, at: Time) {
        if self.offline_at.is_none() {
            self.offline_at = Some(at);
        }
    }

    /// Brings an offline rank back at `at`, restored empty (rows closed,
    /// reservations forgotten). No-op if the rank is online.
    pub fn set_online(&mut self, at: Time) {
        if let Some(off) = self.offline_at.take() {
            self.offline_span += at.saturating_sub(off);
            self.reset_state();
        }
    }

    /// True while the rank is offline.
    pub fn offline(&self) -> bool {
        self.offline_at.is_some()
    }

    /// Performs one access of `bytes` bytes at `addr`, no earlier than `now`.
    ///
    /// Returns the completion time (data fully transferred). The request
    /// queues behind any earlier access to the same bank. Equivalent to
    /// [`access_checked`](Self::access_checked) with the ECC verdict
    /// discarded — callers that can recover from poisoned data should use
    /// that method instead.
    pub fn access(&mut self, addr: u64, bytes: u32, write: bool, now: Time) -> Time {
        self.access_checked(addr, bytes, write, now).0
    }

    /// [`access`](Self::access) plus the ECC verdict of the returned data.
    ///
    /// Without an installed fault model the verdict is always
    /// [`EccOutcome::Clean`] and the timing is the ideal path's.
    pub fn access_checked(
        &mut self,
        addr: u64,
        bytes: u32,
        write: bool,
        now: Time,
    ) -> (Time, EccOutcome) {
        debug_assert!(self.offline_at.is_none(), "access to an offline DRAM rank");
        let row_id = self.row_div.div(addr);
        let (row, bank_idx) = self.bank_div.divmod(row_id);
        let bank_idx = bank_idx as usize;
        let bank = &mut self.banks[bank_idx];

        let start = now.max(bank.busy_until);
        let t = &self.cfg.timing;
        let latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits.inc();
                t.row_hit()
            }
            Some(_) => {
                self.stats.row_conflicts.inc();
                self.stats.activates.inc();
                self.dynamic += self.cfg.energy.act_pre;
                t.row_conflict()
            }
            None => {
                self.stats.row_empty.inc();
                self.stats.activates.inc();
                self.dynamic += self.cfg.energy.act_pre;
                t.row_empty()
            }
        };
        bank.open_row = Some(row);

        // Multi-burst transfers extend occupancy beyond the first 64 B burst.
        let extra_bursts = (u64::from(bytes).div_ceil(64)).saturating_sub(1);
        let bank_done = start + latency + t.freq.cycles_to_time(t.burst * extra_bursts);
        bank.busy_until = bank_done;

        // The channel data bus serializes transfers from all banks on it.
        let transfer = Time::from_ns_f64(f64::from(bytes) / self.cfg.bus_bytes_per_ns);
        let chan = self.chan_div.rem(bank_idx as u64) as usize;
        let slots = &mut self.buses[chan * BUS_SLOTS..(chan + 1) * BUS_SLOTS];
        let slot = if slots[0] <= slots[1] { 0 } else { 1 };
        let bus_start = bank_done.saturating_sub(transfer).max(slots[slot]);
        slots[slot] = bus_start + transfer * BUS_SLOTS as u64;
        let mut done = bank_done.max(bus_start + transfer);

        let mut ecc = EccOutcome::Clean;
        if !write {
            if let Some(f) = &mut self.fault {
                if f.plan.roll(f.ue) {
                    f.stats.ue += 1;
                    ecc = EccOutcome::Poisoned;
                } else if f.plan.roll(f.ce) {
                    // In-line scrub: correct, write back, and hold the bank.
                    f.stats.ce += 1;
                    f.stats.scrub_time += f.scrub;
                    done += f.scrub;
                    let bank = &mut self.banks[bank_idx];
                    bank.busy_until = bank.busy_until.max(done);
                    ecc = EccOutcome::Corrected;
                }
            }
        }

        if write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        self.stats.bytes.add(u64::from(bytes));
        self.dynamic += self.cfg.energy.rw_per_bit * (f64::from(bytes) * 8.0);
        (done, ecc)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Publishes device counters and the row-hit rate under `scope`.
    pub fn register_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("reads", self.stats.reads.get());
        scope.count("writes", self.stats.writes.get());
        scope.count("row_hits", self.stats.row_hits.get());
        scope.count("row_empty", self.stats.row_empty.get());
        scope.count("row_conflicts", self.stats.row_conflicts.get());
        scope.count("bytes", self.stats.bytes.get());
        scope.count("activates", self.stats.activates.get());
        scope.gauge("row_hit_rate", self.stats.row_hit_rate());
        scope.gauge("dynamic_pj", self.dynamic.as_pj());
    }

    /// Publishes ECC fault counters under `scope` (no-op without a fault
    /// model, so disabled runs keep their registry dumps byte-identical).
    pub fn register_fault_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        if let Some(f) = &self.fault {
            scope.count("ce", f.stats.ce);
            scope.count("ue", f.stats.ue);
            scope.count("scrub_ps", f.stats.scrub_time.as_ps());
            scope.count("rolls", f.plan.rolls());
        }
    }

    /// Dynamic energy consumed so far.
    pub fn dynamic_energy(&self) -> Energy {
        self.dynamic
    }

    /// Background (static) energy over a run of length `elapsed`. Offline
    /// windows (chaos stack loss) are power-gated and accrue nothing.
    pub fn background_energy(&self, elapsed: Time) -> Energy {
        let mut powered = elapsed.saturating_sub(self.offline_span);
        if let Some(off) = self.offline_at {
            powered = powered.saturating_sub(elapsed.saturating_sub(off));
        }
        self.cfg.energy.background.over(powered)
    }

    /// Closes all rows and forgets reservations (e.g. between epochs in
    /// tests). Statistics are preserved.
    pub fn reset_state(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
        self.buses.fill(Time::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DramDevice {
        DramDevice::new(DramConfig {
            banks: 4,
            row_bytes: 1024,
            capacity: 1 << 20,
            ..DramConfig::hbm3_unit(1 << 20)
        })
    }

    #[test]
    fn channel_bus_limits_bandwidth() {
        // One channel at 50 B/ns: 100 × 64 B back-to-back needs ≥ 128 ns of
        // bus time even across independent banks.
        let mut d = small();
        let mut last = Time::ZERO;
        for i in 0..100u64 {
            // Different banks, same channel.
            last = last.max(d.access(i * 1024, 64, false, Time::ZERO));
        }
        assert!(last >= Time::from_ns(100), "bus did not serialize: {last}");
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = small();
        let done = d.access(0, 64, false, Time::ZERO);
        assert_eq!(done, d.config().timing.row_empty());
        assert_eq!(d.stats().row_empty.get(), 1);
    }

    #[test]
    fn same_row_hits_different_row_conflicts() {
        let mut d = small();
        let t0 = d.access(0, 64, false, Time::ZERO);
        let t1 = d.access(512, 64, false, t0); // same row (row_bytes=1024)
        assert_eq!(t1 - t0, d.config().timing.row_hit());
        // Same bank, different row: rows map to banks round-robin, so the
        // next row in this bank is row_id + banks.
        let conflict_addr = 4 * 1024;
        let t2 = d.access(conflict_addr, 64, false, t1);
        assert_eq!(t2 - t1, d.config().timing.row_conflict());
        assert_eq!(d.stats().row_conflicts.get(), 1);
    }

    #[test]
    fn bank_queueing_delays_service() {
        let mut d = small();
        let t0 = d.access(0, 64, false, Time::ZERO);
        // Second access to the same bank issued at time zero must wait.
        let t1 = d.access(0, 64, false, Time::ZERO);
        assert_eq!(t1, t0 + d.config().timing.row_hit());
    }

    #[test]
    fn different_banks_do_not_queue() {
        let mut d = small();
        let t0 = d.access(0, 64, false, Time::ZERO);
        let t1 = d.access(1024, 64, false, Time::ZERO); // next row -> next bank
        assert_eq!(t0, t1);
    }

    #[test]
    fn large_transfer_takes_extra_bursts() {
        let mut d = small();
        let small_done = d.access(0, 64, false, Time::ZERO);
        d.reset_state();
        let mut d2 = small();
        let big_done = d2.access(0, 1024, false, Time::ZERO);
        let t = d.config().timing;
        assert_eq!(
            big_done - small_done,
            t.freq.cycles_to_time(t.burst * 15) // 16 bursts total, 15 extra
        );
    }

    #[test]
    fn energy_accumulates() {
        let mut d = small();
        d.access(0, 64, false, Time::ZERO);
        let after_one = d.dynamic_energy();
        // One activate + 64 B.
        let expected = d.config().energy.act_pre + d.config().energy.rw_per_bit * (64.0 * 8.0);
        assert!((after_one.as_pj() - expected.as_pj()).abs() < 1e-9);
        let done = d.access(64, 64, true, Time::ZERO);
        assert!(d.dynamic_energy() > after_one);
        assert!(done > Time::ZERO);
        assert_eq!(d.stats().writes.get(), 1);
    }

    #[test]
    fn background_energy_scales_with_time() {
        let d = small();
        let e1 = d.background_energy(Time::from_us(1));
        let e2 = d.background_energy(Time::from_us(2));
        assert!((e2.as_pj() - 2.0 * e1.as_pj()).abs() < 1e-6);
    }

    #[test]
    fn offline_windows_are_power_gated() {
        let mut d = small();
        let online = d.background_energy(Time::from_us(4));
        // Offline from 1 µs to 3 µs: only 2 µs of a 4 µs run is powered.
        d.set_offline(Time::from_us(1));
        assert!(d.offline());
        d.set_online(Time::from_us(3));
        assert!(!d.offline());
        let gated = d.background_energy(Time::from_us(4));
        assert!((gated.as_pj() - online.as_pj() / 2.0).abs() < 1e-6);
        // Still offline at the end of the run: powered span stops at the
        // offline point.
        d.set_offline(Time::from_us(3));
        let tail = d.background_energy(Time::from_us(4));
        assert!((tail.as_pj() - online.as_pj() / 4.0).abs() < 1e-6);
        // Restore wipes device state but keeps statistics.
        d.set_online(Time::from_us(4));
        assert_eq!(d.stats().reads.get(), 0);
        let t = d.access(0, 64, false, Time::from_us(4));
        assert!(t > Time::from_us(4));
    }

    #[test]
    fn ecc_disabled_is_the_ideal_device() {
        let mut ideal = small();
        let mut off = small();
        off.set_fault(None);
        assert!(off.fault_stats().is_none());
        for i in 0..64u64 {
            let (done, ecc) = off.access_checked(i * 64, 64, i % 4 == 0, Time::ZERO);
            assert_eq!(done, ideal.access(i * 64, 64, i % 4 == 0, Time::ZERO));
            assert_eq!(ecc, EccOutcome::Clean);
        }
    }

    fn faulty(ce: f64, ue: f64) -> DramDevice {
        use ndpx_sim::fault::{domain, FaultPlan};
        let mut d = small();
        d.set_fault(Some(MemFault::new(FaultPlan::derive(11, domain::MEM, 0), ce, ue)));
        d
    }

    #[test]
    fn correctable_errors_pay_scrub_latency() {
        let mut ideal = small();
        let mut f = faulty(1.0, 0.0); // every read scrubs
        let a = ideal.access(0, 64, false, Time::ZERO);
        let (b, ecc) = f.access_checked(0, 64, false, Time::ZERO);
        assert_eq!(ecc, EccOutcome::Corrected);
        assert_eq!(b - a, MemFault::DEFAULT_SCRUB);
        // The scrub holds the bank: a back-to-back read queues behind it.
        let (c, _) = f.access_checked(0, 64, false, Time::ZERO);
        assert!(c >= b + f.config().timing.row_hit());
        let stats = *f.fault_stats().expect("installed");
        assert_eq!(stats.ce, 2);
        assert_eq!(stats.scrub_time, MemFault::DEFAULT_SCRUB * 2);
    }

    #[test]
    fn uncorrectable_errors_poison_reads_only() {
        let mut f = faulty(0.0, 1.0);
        let (_, w) = f.access_checked(0, 64, true, Time::ZERO);
        assert_eq!(w, EccOutcome::Clean, "writes cannot observe poison");
        let (_, r) = f.access_checked(0, 64, false, Time::ZERO);
        assert_eq!(r, EccOutcome::Poisoned);
        let stats = *f.fault_stats().expect("installed");
        assert_eq!((stats.ce, stats.ue), (0, 1));
        // Only the read drew decisions (UE roll + no CE roll after a hit).
        assert_eq!(f.fault_rolls(), Some(1));
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = |n: u64| {
            let mut d = faulty(0.3, 0.05);
            let mut outcomes = Vec::new();
            for i in 0..n {
                outcomes.push(d.access_checked(i * 64, 64, false, Time::ZERO).1);
            }
            outcomes
        };
        assert_eq!(run(500), run(500));
        let mixed = run(500);
        assert!(mixed.contains(&EccOutcome::Corrected));
        assert!(mixed.contains(&EccOutcome::Poisoned));
        assert!(mixed.contains(&EccOutcome::Clean));
    }

    #[test]
    fn fault_stats_register_only_when_enabled() {
        use ndpx_sim::telemetry::StatRegistry;
        let mut reg = StatRegistry::new();
        small().register_fault_stats(&mut reg.scope("fault.mem"));
        assert!(reg.is_empty());
        let mut f = faulty(1.0, 0.0);
        f.access(0, 64, false, Time::ZERO);
        f.register_fault_stats(&mut reg.scope("fault.mem"));
        assert!(reg.get("fault.mem.ce").is_some());
        assert!(reg.get("fault.mem.rolls").is_some());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut d = small();
        let mut now = Time::ZERO;
        for i in 0..10 {
            now = d.access(i * 64, 64, false, now);
        }
        // All within row 0 after the first: 9 hits / 10 accesses.
        assert!((d.stats().row_hit_rate() - 0.9).abs() < 1e-12);
    }
}
