//! DRAM timing and energy parameter sets.
//!
//! The three device families used by the paper's evaluation (Table II) are
//! provided as presets: HBM3-1600 and HMC2-1250 for the NDP stacks, and
//! DDR5-4800 for the CXL extended memory. Parameters come from the respective
//! datasheets as cited by the paper.

use ndpx_sim::energy::{Energy, Power};
use ndpx_sim::time::{Freq, Time};

/// Core DRAM timing parameters, in device clock cycles.
///
/// Latency composition per access (all in cycles of [`DramTiming::freq`]):
///
/// * row hit: `t_cas + burst`
/// * row empty (bank precharged): `t_rcd + t_cas + burst`
/// * row conflict: `t_rp + t_rcd + t_cas + burst`
///
/// # Examples
///
/// ```
/// use ndpx_mem::timing::DramTiming;
///
/// let hbm = DramTiming::hbm3();
/// // 24 cycles at 1600 MHz = 15 ns.
/// assert_eq!(hbm.freq.cycles_to_time(hbm.t_cas).as_ns(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Command/data clock.
    pub freq: Freq,
    /// RAS-to-CAS delay (activate to column command), cycles.
    pub t_rcd: u64,
    /// CAS latency (column command to first data), cycles.
    pub t_cas: u64,
    /// Row precharge time, cycles.
    pub t_rp: u64,
    /// Data burst duration for one 64 B transfer, cycles.
    pub burst: u64,
}

impl DramTiming {
    /// HBM3-1600 (Table II: `RCD-CAS-RP: 24-24-24`).
    pub const fn hbm3() -> Self {
        DramTiming { freq: Freq::from_mhz(1600), t_rcd: 24, t_cas: 24, t_rp: 24, burst: 4 }
    }

    /// HMC 2.1 at 1250 MHz (Table II: `RCD-CAS-RP: 14-14-14`).
    pub const fn hmc2() -> Self {
        DramTiming { freq: Freq::from_mhz(1250), t_rcd: 14, t_cas: 14, t_rp: 14, burst: 4 }
    }

    /// DDR5-4800 (Table II: `RCD-CAS-RP: 40-40-40`).
    ///
    /// Timing cycles are given against the 2400 MHz command clock.
    pub const fn ddr5_4800() -> Self {
        DramTiming { freq: Freq::from_mhz(2400), t_rcd: 40, t_cas: 40, t_rp: 40, burst: 8 }
    }

    /// Latency of a row-buffer hit.
    pub fn row_hit(&self) -> Time {
        self.freq.cycles_to_time(self.t_cas + self.burst)
    }

    /// Latency of an access to a precharged (closed) bank.
    pub fn row_empty(&self) -> Time {
        self.freq.cycles_to_time(self.t_rcd + self.t_cas + self.burst)
    }

    /// Latency of a row conflict (precharge, then activate, then read).
    pub fn row_conflict(&self) -> Time {
        self.freq.cycles_to_time(self.t_rp + self.t_rcd + self.t_cas + self.burst)
    }
}

/// Per-device DRAM energy parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergy {
    /// Read/write data energy per bit transferred.
    pub rw_per_bit: Energy,
    /// Energy per activate+precharge pair.
    pub act_pre: Energy,
    /// Background (static) power per device.
    pub background: Power,
}

impl DramEnergy {
    /// HBM3: `RD/WR: 1.7 pJ/bit, ACT/PRE: 0.6 nJ`.
    pub fn hbm3() -> Self {
        DramEnergy {
            rw_per_bit: Energy::from_pj(1.7),
            act_pre: Energy::from_nj(0.6),
            background: Power::from_mw(45.0),
        }
    }

    /// HMC2 uses the same per-bit figures in our model (the paper's Table II
    /// lists only HBM energy; HMC trends match within the evaluation).
    pub fn hmc2() -> Self {
        Self::hbm3()
    }

    /// DDR5: `RD/WR: 3.2 pJ/bit, ACT/PRE: 3.3 nJ`.
    pub fn ddr5() -> Self {
        DramEnergy {
            rw_per_bit: Energy::from_pj(3.2),
            act_pre: Energy::from_nj(3.3),
            background: Power::from_mw(90.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3_matches_table2() {
        let t = DramTiming::hbm3();
        assert_eq!(t.freq.cycle().as_ps(), 625);
        // 24-24-24 at 625 ps = 15 ns per component.
        assert_eq!(t.freq.cycles_to_time(t.t_rcd).as_ps(), 15_000);
        assert_eq!(t.row_conflict().as_ps(), (24 + 24 + 24 + 4) * 625);
        assert!(t.row_hit() < t.row_empty());
        assert!(t.row_empty() < t.row_conflict());
    }

    #[test]
    fn hmc2_is_faster_per_component_than_hbm3() {
        let hbm = DramTiming::hbm3();
        let hmc = DramTiming::hmc2();
        assert!(hmc.row_empty() < hbm.row_empty());
    }

    #[test]
    fn ddr5_is_slowest() {
        let ddr = DramTiming::ddr5_4800();
        assert!(ddr.row_conflict() > DramTiming::hbm3().row_conflict());
        // 40 cycles at 2400 MHz ≈ 16.7 ns.
        assert_eq!(ddr.freq.cycles_to_time(ddr.t_cas).as_ns(), 16);
    }

    #[test]
    fn energy_presets() {
        let e = DramEnergy::hbm3();
        assert!((e.rw_per_bit.as_pj() - 1.7).abs() < 1e-12);
        assert!((e.act_pre.as_nj() - 0.6).abs() < 1e-12);
        let d = DramEnergy::ddr5();
        assert!(d.rw_per_bit > e.rw_per_bit);
        assert!(d.act_pre > e.act_pre);
    }
}
