//! Randomized property tests for stream address math and the stream table.
//!
//! Cases are driven by the workspace's seeded [`Xoshiro256`] so the suite is
//! deterministic and needs no external property-testing framework.

use ndpx_sim::rng::Xoshiro256;
use ndpx_stream::{
    AffineShape, DimOrder, StreamConfig, StreamId, StreamKind, StreamSpec, StreamTable,
};

const ELEM_SIZES: [u32; 5] = [1, 2, 4, 8, 16];

/// A valid dense affine stream (≤3 dims, canonical strides) with random
/// lengths, element size, and access order.
fn random_affine(rng: &mut Xoshiro256) -> StreamConfig {
    let l0 = 1 + rng.below(31);
    let l1 = 1 + rng.below(15);
    let l2 = 1 + rng.below(7);
    let es = ELEM_SIZES[rng.below(ELEM_SIZES.len() as u64) as usize];
    let order = DimOrder::ALL[rng.below(6) as usize];
    let shape = AffineShape {
        lengths: [l0, l1, l2],
        strides: [u64::from(es), l0 * u64::from(es), l0 * l1 * u64::from(es)],
        order,
    };
    StreamConfig {
        sid: StreamId(0),
        kind: StreamKind::Affine(shape),
        base: 0x10_0000,
        size: l0 * l1 * l2 * u64::from(es),
        elem_size: es,
        read_only: true,
    }
}

#[test]
fn affine_round_trips_every_element() {
    let mut rng = Xoshiro256::seed_from(0xAFF1);
    for _ in 0..64 {
        let cfg = random_affine(&mut rng);
        cfg.validate().expect("constructed valid");
        let n = cfg.elems();
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..n {
            let a = cfg.addr_of(k);
            assert!(cfg.contains(a), "addr outside range");
            assert!(seen.insert(a), "duplicate address for element {k}");
            assert_eq!(cfg.elem_of(a), Some(k));
        }
    }
}

#[test]
fn out_of_range_addresses_never_resolve() {
    let mut rng = Xoshiro256::seed_from(0x0072);
    for _ in 0..128 {
        let cfg = random_affine(&mut rng);
        let off = rng.below(1 << 20);
        if let Some(a) = cfg.base.checked_sub(1 + off % cfg.base.max(1)) {
            assert_eq!(cfg.elem_of(a), None);
        }
        assert_eq!(cfg.elem_of(cfg.end() + off), None);
    }
}

#[test]
fn indirect_round_trips() {
    let mut rng = Xoshiro256::seed_from(0x17D1);
    for _ in 0..128 {
        let n = 1 + rng.below(4095);
        let es = ELEM_SIZES[rng.below(ELEM_SIZES.len() as u64) as usize];
        let cfg = StreamConfig {
            sid: StreamId(1),
            kind: StreamKind::Indirect { source: None },
            base: 0x4000,
            size: n * u64::from(es),
            elem_size: es,
            read_only: true,
        };
        cfg.validate().expect("valid");
        let k = rng.below(n);
        assert_eq!(cfg.elem_of(cfg.addr_of(k)), Some(k));
    }
}

#[test]
fn table_lookup_agrees_with_configs() {
    let mut rng = Xoshiro256::seed_from(0x7AB1);
    for _ in 0..32 {
        let streams = 1 + rng.below(19) as usize;
        let mut table = StreamTable::new();
        let mut next = 0x1000u64;
        for _ in 0..streams {
            let es = if rng.chance(0.5) { 4u32 } else { 8 };
            let bytes = 64 + rng.below(4032);
            let size = bytes / u64::from(es) * u64::from(es);
            if size == 0 {
                continue;
            }
            table.configure(StreamSpec::affine_linear(next, size, es)).expect("disjoint");
            next += size + 64;
        }
        for _ in 0..64 {
            let probe = rng.below(1 << 22);
            match table.lookup(probe) {
                Some((sid, elem)) => {
                    let cfg = table.get(sid);
                    assert!(cfg.contains(probe));
                    assert_eq!(cfg.elem_of(probe), Some(elem));
                }
                None => {
                    for s in table.iter() {
                        assert!(s.elem_of(probe).is_none());
                    }
                }
            }
        }
    }
}

#[test]
fn overlapping_ranges_always_rejected() {
    let mut rng = Xoshiro256::seed_from(0x0E71);
    for _ in 0..128 {
        let base = rng.below(1 << 20);
        let size = (64 + rng.below(4032)) / 8 * 8;
        if size < 8 {
            continue;
        }
        let mut table = StreamTable::new();
        table.configure(StreamSpec::affine_linear(base, size, 8)).expect("first");
        let overlap_base = base + rng.below(size);
        let r = table.configure(StreamSpec::affine_linear(overlap_base, size, 8));
        assert!(r.is_err(), "overlap accepted at {overlap_base:#x}");
    }
}
