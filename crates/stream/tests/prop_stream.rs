//! Property tests for stream address math and the stream table.

use ndpx_stream::{AffineShape, DimOrder, StreamConfig, StreamId, StreamKind, StreamSpec, StreamTable};
use proptest::prelude::*;

/// Strategy: a valid dense affine shape (≤3 dims, canonical strides) plus
/// element size.
fn affine_config() -> impl Strategy<Value = StreamConfig> {
    (1u64..32, 1u64..16, 1u64..8, prop::sample::select(vec![1u32, 2, 4, 8, 16]), 0u8..6)
        .prop_map(|(l0, l1, l2, es, ord)| {
            let order = DimOrder::from_encoding(ord).expect("0..6 is valid");
            let shape = AffineShape {
                lengths: [l0, l1, l2],
                strides: [
                    u64::from(es),
                    l0 * u64::from(es),
                    l0 * l1 * u64::from(es),
                ],
                order,
            };
            StreamConfig {
                sid: StreamId(0),
                kind: StreamKind::Affine(shape),
                base: 0x10_0000,
                size: l0 * l1 * l2 * u64::from(es),
                elem_size: es,
                read_only: true,
            }
        })
}

proptest! {
    #[test]
    fn affine_round_trips_every_element(cfg in affine_config()) {
        cfg.validate().expect("constructed valid");
        let n = cfg.elems();
        let mut seen = std::collections::HashSet::new();
        for k in 0..n {
            let a = cfg.addr_of(k);
            prop_assert!(cfg.contains(a), "addr outside range");
            prop_assert!(seen.insert(a), "duplicate address for element {k}");
            prop_assert_eq!(cfg.elem_of(a), Some(k));
        }
    }

    #[test]
    fn out_of_range_addresses_never_resolve(cfg in affine_config(), off in 0u64..1 << 20) {
        let below = cfg.base.checked_sub(1 + off % cfg.base.max(1));
        if let Some(a) = below {
            prop_assert_eq!(cfg.elem_of(a), None);
        }
        prop_assert_eq!(cfg.elem_of(cfg.end() + off), None);
    }

    #[test]
    fn indirect_round_trips(n in 1u64..4096, es in prop::sample::select(vec![1u32, 2, 4, 8, 16]), k_frac in 0.0f64..1.0) {
        let cfg = StreamConfig {
            sid: StreamId(1),
            kind: StreamKind::Indirect { source: None },
            base: 0x4000,
            size: n * u64::from(es),
            elem_size: es,
            read_only: true,
        };
        cfg.validate().expect("valid");
        let k = ((n - 1) as f64 * k_frac) as u64;
        prop_assert_eq!(cfg.elem_of(cfg.addr_of(k)), Some(k));
    }

    #[test]
    fn table_lookup_agrees_with_configs(sizes in prop::collection::vec((64u64..4096, prop::sample::select(vec![4u32, 8])), 1..20), probe in 0u64..1 << 22) {
        let mut table = StreamTable::new();
        let mut next = 0x1000u64;
        for (bytes, es) in sizes {
            let size = bytes / u64::from(es) * u64::from(es);
            if size == 0 { continue; }
            table.configure(StreamSpec::affine_linear(next, size, es)).expect("disjoint");
            next += size + 64;
        }
        match table.lookup(probe) {
            Some((sid, elem)) => {
                let cfg = table.get(sid);
                prop_assert!(cfg.contains(probe));
                prop_assert_eq!(cfg.elem_of(probe), Some(elem));
            }
            None => {
                for s in table.iter() {
                    prop_assert!(s.elem_of(probe).is_none());
                }
            }
        }
    }

    #[test]
    fn overlapping_ranges_always_rejected(base in 0u64..1 << 20, size in 64u64..4096, shift in 0u64..4095) {
        let mut table = StreamTable::new();
        let size = size / 8 * 8;
        prop_assume!(size >= 8);
        table.configure(StreamSpec::affine_linear(base, size, 8)).expect("first");
        let overlap_base = base + (shift % size);
        let r = table.configure(StreamSpec::affine_linear(overlap_base, size, 8));
        prop_assert!(r.is_err(), "overlap accepted at {overlap_base:#x}");
    }
}
