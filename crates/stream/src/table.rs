//! The stream table: `configure_stream` and address lookup.
//!
//! The runtime configures each data structure as a stream after allocation
//! (paper §IV-A). The table owns the metadata of all live streams, enforces
//! the Table I limits (512 streams, non-overlapping ranges — §IV-C: one
//! address maps to at most one stream), and answers the address→(stream,
//! element) queries the SLB hardware performs.

use crate::config::{AffineShape, StreamConfig, StreamError, StreamId, StreamKind};

/// Arguments of the `configure_stream` call, before an ID is assigned.
///
/// Mirrors the paper's API:
/// `configure_stream(type, base, size, elemSize, [stride, length, order])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Affine shape (with strides/lengths/order) or indirect.
    pub kind: StreamKind,
    /// Base physical address.
    pub base: u64,
    /// Total size in bytes.
    pub size: u64,
    /// Element size in bytes.
    pub elem_size: u32,
}

impl StreamSpec {
    /// A dense 1-D affine stream.
    pub fn affine_linear(base: u64, size: u64, elem_size: u32) -> Self {
        StreamSpec {
            kind: StreamKind::Affine(AffineShape::linear(size / u64::from(elem_size), elem_size)),
            base,
            size,
            elem_size,
        }
    }

    /// An indirect stream driven by `source`.
    pub fn indirect(base: u64, size: u64, elem_size: u32, source: Option<StreamId>) -> Self {
        StreamSpec { kind: StreamKind::Indirect { source }, base, size, elem_size }
    }
}

/// The centralized table of configured streams.
///
/// Kept by the host runtime; the per-unit SLBs cache entries from here.
///
/// # Examples
///
/// ```
/// use ndpx_stream::table::{StreamSpec, StreamTable};
///
/// let mut table = StreamTable::new();
/// let sid = table.configure(StreamSpec::affine_linear(0x1000, 4096, 8))?;
/// let (hit_sid, elem) = table.lookup(0x1008).expect("in range");
/// assert_eq!(hit_sid, sid);
/// assert_eq!(elem, 1);
/// assert_eq!(table.lookup(0x0), None);
/// # Ok::<(), ndpx_stream::config::StreamError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamTable {
    streams: Vec<StreamConfig>,
    /// Stream indices sorted by base address for binary-search lookup.
    by_base: Vec<u16>,
    /// Streams whose DRAM-cache copy returned poisoned (uncorrectable-ECC)
    /// data, parallel to `streams`. A poisoned stream's cached replicas are
    /// untrusted: the runtime aborts the cached copy and refetches from the
    /// backing store.
    poisoned: Vec<bool>,
    /// Count of `true` entries in `poisoned`, kept incrementally so the
    /// per-window SLO readout is O(1) instead of a scan.
    poisoned_count: u64,
    /// Total poison events observed (every [`mark_poisoned`]
    /// (Self::mark_poisoned) call, first or repeat) — each one is a
    /// cached-copy abort followed by a refetch from the backing store.
    poison_events: u64,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StreamTable::default()
    }

    /// Configures a new stream and assigns its ID.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::TableFull`] past 512 streams,
    /// [`StreamError::Overlap`] if the range intersects an existing stream,
    /// and any of the field-validation errors of [`StreamConfig::validate`].
    pub fn configure(&mut self, spec: StreamSpec) -> Result<StreamId, StreamError> {
        if self.streams.len() >= StreamId::MAX_STREAMS {
            return Err(StreamError::TableFull);
        }
        let sid = StreamId(self.streams.len() as u16);
        let cfg = StreamConfig {
            sid,
            kind: spec.kind,
            base: spec.base,
            size: spec.size,
            elem_size: spec.elem_size,
            read_only: true,
        };
        cfg.validate()?;
        for s in &self.streams {
            if cfg.base < s.end() && s.base < cfg.end() {
                return Err(StreamError::Overlap { with: s.sid });
            }
        }
        self.streams.push(cfg);
        self.poisoned.push(false);
        let pos = self.by_base.partition_point(|&i| self.streams[i as usize].base < cfg.base);
        self.by_base.insert(pos, sid.0);
        Ok(sid)
    }

    /// Number of configured streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True if no streams are configured.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Publishes table occupancy under `scope`. The poisoned-stream count is
    /// only emitted when nonzero, so fault-free runs keep their registry
    /// dumps byte-identical.
    pub fn register_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("streams", self.streams.len() as u64);
        scope.count("capacity", StreamId::MAX_STREAMS as u64);
        let poisoned = self.poisoned_streams();
        if poisoned > 0 {
            scope.count("poisoned", poisoned);
        }
    }

    /// The configuration of `sid`.
    ///
    /// # Panics
    ///
    /// Panics if `sid` was not issued by this table.
    pub fn get(&self, sid: StreamId) -> &StreamConfig {
        &self.streams[sid.index()]
    }

    /// Iterates over all configured streams in ID order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamConfig> {
        self.streams.iter()
    }

    /// Finds the stream containing `addr` and the access-order element index.
    ///
    /// Returns `None` for non-stream addresses (which bypass the DRAM cache,
    /// §IV-C) and for addresses inside affine stride padding.
    pub fn lookup(&self, addr: u64) -> Option<(StreamId, u64)> {
        // Find the last stream whose base <= addr.
        let pos = self.by_base.partition_point(|&i| self.streams[i as usize].base <= addr);
        if pos == 0 {
            return None;
        }
        let cfg = &self.streams[self.by_base[pos - 1] as usize];
        let elem = cfg.elem_of(addr)?;
        Some((cfg.sid, elem))
    }

    /// Records a write to `sid`: clears the read-only bit. Returns `true` if
    /// this was the *first* write (the event that triggers the host exception
    /// and replica invalidation in §IV-B).
    pub fn mark_written(&mut self, sid: StreamId) -> bool {
        let s = &mut self.streams[sid.index()];
        let first = s.read_only;
        s.read_only = false;
        first
    }

    /// Records that `sid`'s cached data returned an uncorrectable ECC error.
    /// Returns `true` if this is the first poison event for the stream (the
    /// event that triggers the cached-copy abort).
    ///
    /// # Panics
    ///
    /// Panics if `sid` was not issued by this table.
    pub fn mark_poisoned(&mut self, sid: StreamId) -> bool {
        self.poison_events += 1;
        let first = !self.poisoned[sid.index()];
        if first {
            self.poisoned[sid.index()] = true;
            self.poisoned_count += 1;
        }
        first
    }

    /// Marks every stream in `ids` poisoned in one sweep (chaos stack loss:
    /// all streams resident on a dead stack lose their cached copies at
    /// once). Returns how many were *newly* poisoned; repeats still count as
    /// poison events, exactly like [`mark_poisoned`](Self::mark_poisoned).
    ///
    /// # Panics
    ///
    /// Panics if any id was not issued by this table.
    pub fn mark_poisoned_many(&mut self, ids: impl IntoIterator<Item = StreamId>) -> u64 {
        ids.into_iter().filter(|&sid| self.mark_poisoned(sid)).count() as u64
    }

    /// True if `sid` has seen a poison event.
    ///
    /// # Panics
    ///
    /// Panics if `sid` was not issued by this table.
    pub fn is_poisoned(&self, sid: StreamId) -> bool {
        self.poisoned[sid.index()]
    }

    /// Number of streams that have seen at least one poison event. O(1):
    /// timeline sampling reads this once per window.
    pub fn poisoned_streams(&self) -> u64 {
        self.poisoned_count
    }

    /// Total poison events observed (cached-copy aborts + refetches),
    /// counting repeats on an already-poisoned stream.
    pub fn poison_events(&self) -> u64 {
        self.poison_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_assigns_sequential_ids() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0, 64, 8)).unwrap();
        let b = t.configure(StreamSpec::affine_linear(0x100, 64, 8)).unwrap();
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0x100, 256, 8)).unwrap();
        let err = t.configure(StreamSpec::affine_linear(0x180, 256, 8)).unwrap_err();
        assert_eq!(err, StreamError::Overlap { with: a });
        // Adjacent ranges are fine.
        t.configure(StreamSpec::affine_linear(0x200, 64, 8)).unwrap();
    }

    #[test]
    fn lookup_picks_correct_stream() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0x1000, 256, 4)).unwrap();
        let b = t.configure(StreamSpec::indirect(0x4000, 1024, 16, None)).unwrap();
        assert_eq!(t.lookup(0x1004), Some((a, 1)));
        assert_eq!(t.lookup(0x4000 + 32), Some((b, 2)));
        assert_eq!(t.lookup(0x2000), None);
        assert_eq!(t.lookup(0x0), None);
        assert_eq!(t.lookup(u64::MAX >> 20), None);
    }

    #[test]
    fn table_fills_at_512() {
        let mut t = StreamTable::new();
        for i in 0..512u64 {
            t.configure(StreamSpec::affine_linear(i * 0x1000, 8, 8)).unwrap();
        }
        assert_eq!(
            t.configure(StreamSpec::affine_linear(0x1_000_000, 8, 8)),
            Err(StreamError::TableFull)
        );
    }

    #[test]
    fn mark_written_fires_once() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0, 64, 8)).unwrap();
        assert!(t.get(a).read_only);
        assert!(t.mark_written(a));
        assert!(!t.mark_written(a));
        assert!(!t.get(a).read_only);
    }

    #[test]
    fn mark_poisoned_many_counts_only_new_streams() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0, 64, 8)).unwrap();
        let b = t.configure(StreamSpec::affine_linear(0x100, 64, 8)).unwrap();
        let c = t.configure(StreamSpec::affine_linear(0x200, 64, 8)).unwrap();
        assert!(t.mark_poisoned(a));
        assert_eq!(t.mark_poisoned_many([a, b, c]), 2, "a was already poisoned");
        assert_eq!(t.poisoned_streams(), 3);
        assert_eq!(t.poison_events(), 4, "the repeat on a still counts as an event");
    }

    #[test]
    fn mark_poisoned_fires_once_and_registers() {
        let mut t = StreamTable::new();
        let a = t.configure(StreamSpec::affine_linear(0, 64, 8)).unwrap();
        let b = t.configure(StreamSpec::affine_linear(0x100, 64, 8)).unwrap();
        assert!(!t.is_poisoned(a));
        assert!(t.mark_poisoned(a));
        assert!(!t.mark_poisoned(a), "only the first poison event fires");
        assert!(t.is_poisoned(a));
        assert!(!t.is_poisoned(b));
        assert_eq!(t.poisoned_streams(), 1, "incremental count matches distinct streams");
        assert_eq!(t.poison_events(), 2, "every event counts, repeats included");

        let mut reg = ndpx_sim::telemetry::StatRegistry::new();
        t.register_stats(&mut reg.scope("streams"));
        assert!(reg.get("streams.poisoned").is_some());
    }

    #[test]
    fn clean_table_omits_poison_stat() {
        let mut t = StreamTable::new();
        t.configure(StreamSpec::affine_linear(0, 64, 8)).unwrap();
        let mut reg = ndpx_sim::telemetry::StatRegistry::new();
        t.register_stats(&mut reg.scope("streams"));
        assert!(reg.get("streams.poisoned").is_none(), "fault-free dumps must not change");
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = StreamTable::new();
        t.configure(StreamSpec::affine_linear(0x5000, 64, 8)).unwrap();
        t.configure(StreamSpec::affine_linear(0x1000, 64, 8)).unwrap();
        let ids: Vec<u16> = t.iter().map(|s| s.sid.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
