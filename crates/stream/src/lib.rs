//! # ndpx-stream
//!
//! Software-defined data streams — the coarse-grained abstraction at the
//! heart of NDPExt (paper §II-C, §IV-A).
//!
//! A stream couples a physical address range with its expected access
//! pattern. **Affine** streams have statically determined addresses (up to
//! three dimensions, optionally iterated in a non-storage order); **indirect**
//! streams are driven by the contents of another stream (`addr = s[i]`).
//!
//! * [`config`] — per-stream metadata with the paper's Table I field widths,
//!   and the access-index ↔ address math;
//! * [`table`] — the centralized stream table behind `configure_stream`.
//!
//! # Examples
//!
//! ```
//! use ndpx_stream::table::{StreamSpec, StreamTable};
//!
//! let mut table = StreamTable::new();
//! // Vertex array: 1k elements of 8 bytes, dense affine.
//! let vertices = table.configure(StreamSpec::affine_linear(0x10_0000, 8192, 8))?;
//! // Rank scores accessed through the edge list: indirect.
//! let ranks = table.configure(StreamSpec::indirect(0x20_0000, 4096, 4, Some(vertices)))?;
//! assert_eq!(table.lookup(0x20_0008), Some((ranks, 2)));
//! # Ok::<(), ndpx_stream::config::StreamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detect;
pub mod table;

pub use config::{AffineShape, DimOrder, StreamConfig, StreamError, StreamId, StreamKind};
pub use detect::{DetectedStream, DetectorConfig, StreamDetector};
pub use table::{StreamSpec, StreamTable};
