//! Automatic stream detection from raw address traces.
//!
//! The paper inserts `configure_stream` hints manually and defers automatic
//! annotation to future work (§IV-A). This module implements that future
//! work for trace-visible behaviour: it watches a raw access stream,
//! clusters addresses into contiguous regions, classifies each region as
//! affine (a dominant stride explains most consecutive deltas) or indirect,
//! and emits ready-to-configure [`StreamSpec`]s.
//!
//! # Examples
//!
//! ```
//! use ndpx_stream::detect::StreamDetector;
//!
//! let mut det = StreamDetector::default();
//! // A sequential 8-byte scan…
//! for i in 0..1000u64 {
//!     det.observe(0x10_0000 + i * 8, false);
//! }
//! // …and a scattered structure.
//! let mut x = 9u64;
//! for _ in 0..1000 {
//!     x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
//!     det.observe(0x80_0000 + (x % 4096) * 16, false);
//! }
//! let found = det.finish();
//! assert_eq!(found.len(), 2);
//! assert!(found[0].is_affine && found[0].stride == Some(8));
//! assert!(!found[1].is_affine);
//! ```

use crate::table::StreamSpec;

/// Tuning knobs for the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Addresses farther apart than this start a new region.
    pub region_gap: u64,
    /// Regions with fewer accesses are dropped (noise, stack spill).
    pub min_accesses: u64,
    /// A stride must explain at least this fraction (percent) of
    /// consecutive deltas for the region to classify as affine.
    pub affine_threshold_pct: u8,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { region_gap: 1 << 20, min_accesses: 64, affine_threshold_pct: 60 }
    }
}

/// One detected stream candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedStream {
    /// Lowest address observed in the region.
    pub base: u64,
    /// Span in bytes (last byte estimated from the guessed element size).
    pub size: u64,
    /// Guessed element size (GCD of access deltas, clamped to `[1, 64]`).
    pub elem_size: u32,
    /// True when a dominant stride explains the region.
    pub is_affine: bool,
    /// The dominant stride for affine regions.
    pub stride: Option<u64>,
    /// Accesses attributed to the region.
    pub accesses: u64,
    /// Fraction of accesses that were writes, in percent.
    pub write_pct: u8,
}

impl DetectedStream {
    /// Converts the candidate into a `configure_stream` specification.
    pub fn to_spec(&self) -> StreamSpec {
        let size = self.size.max(u64::from(self.elem_size)) / u64::from(self.elem_size)
            * u64::from(self.elem_size);
        if self.is_affine {
            StreamSpec::affine_linear(self.base, size, self.elem_size)
        } else {
            StreamSpec::indirect(self.base, size, self.elem_size, None)
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    lo: u64,
    hi: u64,
    accesses: u64,
    writes: u64,
    last: u64,
    /// (stride, count) — small top-k histogram of consecutive deltas.
    strides: Vec<(u64, u64)>,
    delta_gcd: u64,
    deltas: u64,
}

impl Region {
    fn new(addr: u64, write: bool) -> Self {
        Region {
            lo: addr,
            hi: addr,
            accesses: 1,
            writes: u64::from(write),
            last: addr,
            strides: Vec::new(),
            delta_gcd: 0,
            deltas: 0,
        }
    }

    fn note_delta(&mut self, delta: u64) {
        self.deltas += 1;
        self.delta_gcd = gcd(self.delta_gcd, delta);
        if let Some(e) = self.strides.iter_mut().find(|(s, _)| *s == delta) {
            e.1 += 1;
            return;
        }
        if self.strides.len() < 8 {
            self.strides.push((delta, 1));
        } else if let Some(min) = self.strides.iter_mut().min_by_key(|(_, c)| *c) {
            // Space-saving sketch: recycle the weakest counter.
            *min = (delta, min.1 + 1);
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// The trace-driven stream detector.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    cfg: DetectorConfig,
    /// Regions sorted by `lo`.
    regions: Vec<Region>,
}

impl Default for StreamDetector {
    fn default() -> Self {
        Self::new(DetectorConfig::default())
    }
}

impl StreamDetector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        StreamDetector { cfg, regions: Vec::new() }
    }

    /// Feeds one access.
    pub fn observe(&mut self, addr: u64, write: bool) {
        // Find the region whose extended span contains the address.
        let pos = self.regions.partition_point(|r| r.lo <= addr);
        let gap = self.cfg.region_gap;
        // Candidate: the region just below (covers or is near), or the one
        // above if the address falls just under it.
        let idx = if pos > 0 && addr <= self.regions[pos - 1].hi.saturating_add(gap) {
            Some(pos - 1)
        } else if pos < self.regions.len() && self.regions[pos].lo.saturating_sub(gap) <= addr {
            Some(pos)
        } else {
            None
        };
        match idx {
            Some(i) => {
                let r = &mut self.regions[i];
                r.accesses += 1;
                if write {
                    r.writes += 1;
                }
                let delta = addr.abs_diff(r.last);
                if delta > 0 {
                    r.note_delta(delta);
                }
                r.last = addr;
                r.lo = r.lo.min(addr);
                r.hi = r.hi.max(addr);
                // Merge with the next region if the spans now touch.
                while i + 1 < self.regions.len()
                    && self.regions[i].hi.saturating_add(gap) >= self.regions[i + 1].lo
                {
                    let next = self.regions.remove(i + 1);
                    let r = &mut self.regions[i];
                    r.hi = r.hi.max(next.hi);
                    r.accesses += next.accesses;
                    r.writes += next.writes;
                    r.deltas += next.deltas;
                    r.delta_gcd = gcd(r.delta_gcd, next.delta_gcd);
                    for (s, c) in next.strides {
                        for _ in 0..c.min(1) {
                            r.note_delta(s);
                        }
                        if let Some(e) = r.strides.iter_mut().find(|(rs, _)| *rs == s) {
                            e.1 += c.saturating_sub(1);
                        }
                    }
                }
            }
            None => {
                self.regions.insert(pos, Region::new(addr, write));
            }
        }
    }

    /// Finishes detection, returning candidates sorted by base address.
    pub fn finish(self) -> Vec<DetectedStream> {
        let cfg = self.cfg;
        self.regions
            .into_iter()
            .filter(|r| r.accesses >= cfg.min_accesses)
            .map(|r| {
                let (top_stride, top_count) =
                    r.strides.iter().copied().max_by_key(|&(_, c)| c).unwrap_or((0, 0));
                let is_affine = r.deltas > 0
                    && top_count * 100 >= r.deltas * u64::from(cfg.affine_threshold_pct);
                let elem_size = r.delta_gcd.clamp(1, 64) as u32;
                let size = (r.hi - r.lo) + u64::from(elem_size);
                DetectedStream {
                    base: r.lo,
                    size,
                    elem_size,
                    is_affine,
                    stride: if is_affine { Some(top_stride) } else { None },
                    accesses: r.accesses,
                    write_pct: (r.writes * 100 / r.accesses) as u8,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_sequential_scan_as_affine() {
        let mut d = StreamDetector::default();
        for i in 0..500u64 {
            d.observe(0x1000 + i * 4, false);
        }
        let found = d.finish();
        assert_eq!(found.len(), 1);
        let s = &found[0];
        assert!(s.is_affine);
        assert_eq!(s.stride, Some(4));
        assert_eq!(s.elem_size, 4);
        assert_eq!(s.base, 0x1000);
        assert_eq!(s.write_pct, 0);
    }

    #[test]
    fn detects_strided_scan() {
        let mut d = StreamDetector::default();
        for i in 0..500u64 {
            d.observe(0x8000 + i * 64, true);
        }
        let found = d.finish();
        assert_eq!(found.len(), 1);
        assert!(found[0].is_affine);
        assert_eq!(found[0].stride, Some(64));
        assert_eq!(found[0].write_pct, 100);
    }

    #[test]
    fn detects_random_gather_as_indirect() {
        let mut d = StreamDetector::default();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            d.observe(0x10_0000 + (x % 8192) * 8, false);
        }
        let found = d.finish();
        assert_eq!(found.len(), 1);
        assert!(!found[0].is_affine, "random gather misclassified as affine");
        assert_eq!(found[0].elem_size, 8);
    }

    #[test]
    fn separates_distant_regions() {
        let mut d = StreamDetector::default();
        for i in 0..200u64 {
            d.observe(0x100_0000 + i * 8, false);
            d.observe(0x900_0000 + i * 8, false);
        }
        let found = d.finish();
        assert_eq!(found.len(), 2);
        assert!(found[0].base < found[1].base);
        // Interleaving the two scans must not destroy either's stride.
        assert!(found[0].is_affine && found[1].is_affine);
    }

    #[test]
    fn drops_noise_regions() {
        let mut d = StreamDetector::default();
        for i in 0..200u64 {
            d.observe(0x100_0000 + i * 8, false);
        }
        d.observe(0xFFFF_0000_0000, false); // lone stray access
        let found = d.finish();
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn specs_are_configurable(/* round trip into a table */) {
        use crate::table::StreamTable;
        let mut d = StreamDetector::default();
        for i in 0..300u64 {
            d.observe(0x20_0000 + i * 16, false);
        }
        let found = d.finish();
        let mut table = StreamTable::new();
        for f in &found {
            table.configure(f.to_spec()).expect("detected spec must be valid");
        }
        assert_eq!(table.len(), found.len());
        assert!(table.lookup(0x20_0000 + 160).is_some());
    }

    #[test]
    fn merges_regions_that_grow_together() {
        let mut d = StreamDetector::new(DetectorConfig {
            region_gap: 4096,
            min_accesses: 8,
            affine_threshold_pct: 60,
        });
        // Two halves of one array touched alternately from the ends inward;
        // their spans eventually meet in the middle and must merge.
        for i in 0..600u64 {
            d.observe(0x5000 + i * 8, false);
            d.observe(0x5000 + 8192 - i * 8, false);
        }
        let found = d.finish();
        assert_eq!(found.len(), 1, "halves should merge: {found:?}");
    }
}
