//! Stream configuration metadata (paper Table I).
//!
//! A *stream* describes one data structure's memory range plus its expected
//! access pattern. NDPExt distinguishes **affine** streams (statically
//! determined addresses, up to 3 dimensions with a reordered iteration order)
//! from **indirect** streams (addresses determined by the contents of another
//! stream). The metadata widths follow Table I of the paper: 9-bit stream
//! IDs, 48-bit base/size, 3-bit dimension order.

/// Identifies a configured stream. At most [`StreamId::MAX_STREAMS`] streams
/// exist at a time (Table I: 9-bit `sid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u16);

impl StreamId {
    /// The 9-bit sid field supports 512 simultaneous streams.
    pub const MAX_STREAMS: usize = 512;

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors from stream configuration and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// More than [`StreamId::MAX_STREAMS`] streams configured.
    TableFull,
    /// A field exceeds its Table I bit width.
    FieldOverflow {
        /// The offending field name.
        field: &'static str,
    },
    /// Element size is zero or does not divide the stream size.
    BadElementSize,
    /// Affine dimension lengths do not match the element count.
    BadShape,
    /// The new stream's address range overlaps an existing stream.
    Overlap {
        /// The already-configured stream it overlaps.
        with: StreamId,
    },
    /// Strides overlap, so addresses would not decompose uniquely.
    OverlappingStrides,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::TableFull => {
                write!(f, "stream table full (max {})", StreamId::MAX_STREAMS)
            }
            StreamError::FieldOverflow { field } => {
                write!(f, "stream field `{field}` exceeds its bit width")
            }
            StreamError::BadElementSize => {
                write!(f, "element size must be positive and divide the stream size")
            }
            StreamError::BadShape => {
                write!(f, "affine dimension lengths do not cover the element count")
            }
            StreamError::Overlap { with } => {
                write!(f, "stream range overlaps existing stream {with}")
            }
            StreamError::OverlappingStrides => {
                write!(f, "affine strides overlap; addresses are ambiguous")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Iteration order of an affine stream's (up to three) dimensions.
///
/// Dimension 0 is the storage-contiguous dimension. The order lists
/// dimensions from fastest-varying to slowest-varying during *access*; the
/// canonical row-major traversal is [`DimOrder::D012`]. Encoded in the 3-bit
/// `order` field of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DimOrder {
    /// dim0 fastest (storage order).
    #[default]
    D012,
    /// dim0, dim2, dim1.
    D021,
    /// dim1 fastest (e.g. column-major walk of a row-major matrix).
    D102,
    /// dim1, dim2, dim0.
    D120,
    /// dim2 fastest.
    D201,
    /// dim2, dim1, dim0.
    D210,
}

impl DimOrder {
    /// All six orders, indexed by their 3-bit encoding.
    pub const ALL: [DimOrder; 6] = [
        DimOrder::D012,
        DimOrder::D021,
        DimOrder::D102,
        DimOrder::D120,
        DimOrder::D201,
        DimOrder::D210,
    ];

    /// The dimension permutation, fastest first.
    #[inline]
    pub const fn perm(self) -> [usize; 3] {
        match self {
            DimOrder::D012 => [0, 1, 2],
            DimOrder::D021 => [0, 2, 1],
            DimOrder::D102 => [1, 0, 2],
            DimOrder::D120 => [1, 2, 0],
            DimOrder::D201 => [2, 0, 1],
            DimOrder::D210 => [2, 1, 0],
        }
    }

    /// The 3-bit hardware encoding.
    #[inline]
    pub const fn encoding(self) -> u8 {
        match self {
            DimOrder::D012 => 0,
            DimOrder::D021 => 1,
            DimOrder::D102 => 2,
            DimOrder::D120 => 3,
            DimOrder::D201 => 4,
            DimOrder::D210 => 5,
        }
    }

    /// Decodes the 3-bit hardware encoding.
    pub fn from_encoding(code: u8) -> Option<DimOrder> {
        Self::ALL.get(code as usize).copied()
    }
}

/// Shape of an affine stream: up to three dimensions with byte strides and an
/// access order.
///
/// Storage offset of coordinates `(c0, c1, c2)` is
/// `c0 * strides[0] + c1 * strides[1] + c2 * strides[2]` bytes. Unused
/// dimensions have length 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineShape {
    /// Per-dimension element counts (Table I: `length` along Y/Z; X derived).
    pub lengths: [u64; 3],
    /// Per-dimension byte strides (Table I: `stride` along X/Y/Z).
    pub strides: [u64; 3],
    /// Access-order permutation (Table I: `order`).
    pub order: DimOrder,
}

impl AffineShape {
    /// A dense 1-D shape of `n` elements of `elem_size` bytes.
    pub fn linear(n: u64, elem_size: u32) -> Self {
        AffineShape {
            lengths: [n, 1, 1],
            strides: [u64::from(elem_size), n * u64::from(elem_size), n * u64::from(elem_size)],
            order: DimOrder::D012,
        }
    }

    /// A dense 2-D row-major matrix of `rows × cols` elements, accessed in
    /// the given order.
    pub fn matrix(rows: u64, cols: u64, elem_size: u32, order: DimOrder) -> Self {
        let es = u64::from(elem_size);
        AffineShape { lengths: [cols, rows, 1], strides: [es, cols * es, rows * cols * es], order }
    }

    /// Total element count.
    pub fn elems(&self) -> u64 {
        self.lengths.iter().product()
    }

    /// Converts an access-order index `k` to storage coordinates.
    #[inline]
    pub fn access_to_coords(&self, k: u64) -> [u64; 3] {
        let p = self.order.perm();
        let mut c = [0u64; 3];
        c[p[0]] = k % self.lengths[p[0]];
        let k1 = k / self.lengths[p[0]];
        c[p[1]] = k1 % self.lengths[p[1]];
        c[p[2]] = k1 / self.lengths[p[1]];
        c
    }

    /// Byte offset of storage coordinates.
    #[inline]
    pub fn coords_to_offset(&self, c: [u64; 3]) -> u64 {
        c[0] * self.strides[0] + c[1] * self.strides[1] + c[2] * self.strides[2]
    }

    /// Decomposes a byte offset back to coordinates; `None` for offsets
    /// inside stride padding or out of range.
    pub fn offset_to_coords(&self, off: u64, elem_size: u32) -> Option<[u64; 3]> {
        // Peel dimensions from largest stride to smallest; strides are
        // validated non-overlapping so the decomposition is unique.
        // Length-1 dimensions always contribute coordinate 0 and their
        // strides carry no information, so they are skipped.
        let mut idx: Vec<usize> = (0..3).filter(|&i| self.lengths[i] > 1).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.strides[i]));
        let mut rem = off;
        let mut c = [0u64; 3];
        for &i in &idx {
            let v = rem / self.strides[i];
            if v >= self.lengths[i] {
                return None;
            }
            c[i] = v;
            rem %= self.strides[i];
        }
        // `rem` is a sub-element byte offset; any residue beyond the element
        // is padding.
        if rem >= u64::from(elem_size) {
            return None;
        }
        Some(c)
    }

    /// Converts storage coordinates to the access-order index.
    #[inline]
    pub fn coords_to_access(&self, c: [u64; 3]) -> u64 {
        let p = self.order.perm();
        c[p[0]] + self.lengths[p[0]] * (c[p[1]] + self.lengths[p[1]] * c[p[2]])
    }

    /// Validates that strides do not overlap (unique decomposition).
    pub fn validate(&self, elem_size: u32) -> Result<(), StreamError> {
        if self.lengths.contains(&0) {
            return Err(StreamError::BadShape);
        }
        let mut dims: Vec<usize> = (0..3).filter(|&i| self.lengths[i] > 1).collect();
        dims.sort_by_key(|&i| self.strides[i]);
        let mut min_next = u64::from(elem_size);
        for &i in &dims {
            if self.strides[i] < min_next {
                return Err(StreamError::OverlappingStrides);
            }
            min_next = self.strides[i] * self.lengths[i];
        }
        Ok(())
    }
}

/// The stream's kind: affine or indirect (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Addresses follow an affine function of the iteration index.
    Affine(AffineShape),
    /// Addresses are determined by data in another stream
    /// (`addr = s[i]`); the index stream is recorded when known.
    Indirect {
        /// The stream whose values drive this stream's access order.
        source: Option<StreamId>,
    },
}

impl StreamKind {
    /// True for affine streams.
    pub const fn is_affine(&self) -> bool {
        matches!(self, StreamKind::Affine(_))
    }
}

/// Full per-stream metadata, as configured by `configure_stream` (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Stream ID (assigned by the table).
    pub sid: StreamId,
    /// Affine or indirect.
    pub kind: StreamKind,
    /// Base physical address (48 bits).
    pub base: u64,
    /// Total stream size in bytes (48 bits).
    pub size: u64,
    /// Element size in bytes.
    pub elem_size: u32,
    /// Read-only flag, initialized true and cleared on the first write
    /// (paper §IV-B).
    pub read_only: bool,
}

const ADDR_BITS: u32 = 48;

impl StreamConfig {
    /// Number of elements in the stream.
    pub fn elems(&self) -> u64 {
        self.size / u64::from(self.elem_size)
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// True if `addr` falls inside the stream's range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Storage address of the element at *access-order* index `elem`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `elem` is out of range.
    pub fn addr_of(&self, elem: u64) -> u64 {
        debug_assert!(elem < self.elems(), "element {elem} out of range for {}", self.sid);
        match &self.kind {
            StreamKind::Affine(shape) => {
                let c = shape.access_to_coords(elem);
                self.base + shape.coords_to_offset(c)
            }
            StreamKind::Indirect { .. } => self.base + elem * u64::from(self.elem_size),
        }
    }

    /// Access-order element index containing `addr`, or `None` if the
    /// address is outside the stream (or in stride padding).
    pub fn elem_of(&self, addr: u64) -> Option<u64> {
        if !self.contains(addr) {
            return None;
        }
        let off = addr - self.base;
        match &self.kind {
            StreamKind::Affine(shape) => {
                let c = shape.offset_to_coords(off, self.elem_size)?;
                Some(shape.coords_to_access(c))
            }
            StreamKind::Indirect { .. } => Some(off / u64::from(self.elem_size)),
        }
    }

    /// Validates all Table I field widths and shape consistency.
    ///
    /// # Errors
    ///
    /// See [`StreamError`].
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.sid.index() >= StreamId::MAX_STREAMS {
            return Err(StreamError::FieldOverflow { field: "sid" });
        }
        if self.base >= (1 << ADDR_BITS) || self.end() > (1 << ADDR_BITS) {
            return Err(StreamError::FieldOverflow { field: "base" });
        }
        if self.size >= (1 << ADDR_BITS) {
            return Err(StreamError::FieldOverflow { field: "size" });
        }
        if self.elem_size == 0 || !self.size.is_multiple_of(u64::from(self.elem_size)) {
            return Err(StreamError::BadElementSize);
        }
        if let StreamKind::Affine(shape) = &self.kind {
            shape.validate(self.elem_size)?;
            if shape.elems() != self.elems() {
                return Err(StreamError::BadShape);
            }
            for (i, &s) in shape.strides.iter().enumerate() {
                if s >= (1 << ADDR_BITS) {
                    return Err(StreamError::FieldOverflow {
                        field: ["stride.x", "stride.y", "stride.z"][i],
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_stream(n: u64, elem: u32) -> StreamConfig {
        StreamConfig {
            sid: StreamId(0),
            kind: StreamKind::Affine(AffineShape::linear(n, elem)),
            base: 0x1000,
            size: n * u64::from(elem),
            elem_size: elem,
            read_only: true,
        }
    }

    #[test]
    fn linear_round_trip() {
        let s = linear_stream(100, 8);
        s.validate().unwrap();
        for e in [0u64, 1, 50, 99] {
            let a = s.addr_of(e);
            assert_eq!(s.elem_of(a), Some(e));
        }
        assert_eq!(s.addr_of(0), 0x1000);
        assert_eq!(s.elem_of(0xFFF), None);
        assert_eq!(s.elem_of(s.end()), None);
    }

    #[test]
    fn column_major_access_of_row_major_matrix() {
        // 4 rows x 8 cols, 4-byte elements, accessed column-major (dim 1 =
        // rows varies fastest).
        let shape = AffineShape::matrix(4, 8, 4, DimOrder::D102);
        let s = StreamConfig {
            sid: StreamId(1),
            kind: StreamKind::Affine(shape),
            base: 0,
            size: 4 * 8 * 4,
            elem_size: 4,
            read_only: true,
        };
        s.validate().unwrap();
        // Access index 0 -> (row 0, col 0), index 1 -> (row 1, col 0).
        assert_eq!(s.addr_of(0), 0);
        assert_eq!(s.addr_of(1), 8 * 4); // next row, same column
        assert_eq!(s.addr_of(4), 4); // column 1, row 0
                                     // Round trip across all elements.
        for k in 0..32 {
            assert_eq!(s.elem_of(s.addr_of(k)), Some(k));
        }
    }

    #[test]
    fn padded_matrix_detects_padding() {
        // 2 rows of 3 elements, but rows padded to 4 elements (stride 16).
        let shape = AffineShape { lengths: [3, 2, 1], strides: [4, 16, 32], order: DimOrder::D012 };
        let s = StreamConfig {
            sid: StreamId(2),
            kind: StreamKind::Affine(shape),
            base: 0,
            size: 6 * 4,
            elem_size: 4,
            read_only: true,
        };
        // Offset 12 is the padding element of row 0.
        assert_eq!(shape.offset_to_coords(12, 4), None);
        assert_eq!(shape.offset_to_coords(16, 4), Some([0, 1, 0]));
        assert_eq!(s.elem_of(16), Some(3));
    }

    #[test]
    fn overlapping_strides_rejected() {
        let shape =
            AffineShape { lengths: [8, 8, 1], strides: [4, 16, 256], order: DimOrder::D012 };
        assert_eq!(shape.validate(4), Err(StreamError::OverlappingStrides));
    }

    #[test]
    fn indirect_addressing_is_linear() {
        let s = StreamConfig {
            sid: StreamId(3),
            kind: StreamKind::Indirect { source: Some(StreamId(1)) },
            base: 0x100,
            size: 64,
            elem_size: 4,
            read_only: true,
        };
        s.validate().unwrap();
        assert_eq!(s.addr_of(3), 0x10C);
        assert_eq!(s.elem_of(0x10C), Some(3));
        assert_eq!(s.elems(), 16);
    }

    #[test]
    fn validation_catches_field_overflow() {
        let mut s = linear_stream(4, 8);
        s.base = 1 << 48;
        assert_eq!(s.validate(), Err(StreamError::FieldOverflow { field: "base" }));
        let mut s = linear_stream(4, 8);
        s.elem_size = 0;
        assert_eq!(s.validate(), Err(StreamError::BadElementSize));
        let mut s = linear_stream(4, 8);
        s.size = 33; // not a multiple of 8
        assert_eq!(s.validate(), Err(StreamError::BadElementSize));
    }

    #[test]
    fn dim_order_encodings_round_trip() {
        for o in DimOrder::ALL {
            assert_eq!(DimOrder::from_encoding(o.encoding()), Some(o));
            assert!(o.encoding() < 8, "order must fit in 3 bits");
        }
        assert_eq!(DimOrder::from_encoding(6), None);
        // Each permutation is a permutation of {0,1,2}.
        for o in DimOrder::ALL {
            let mut p = o.perm();
            p.sort_unstable();
            assert_eq!(p, [0, 1, 2]);
        }
    }

    #[test]
    fn three_dim_order_round_trip() {
        let es = 2u32;
        let shape = AffineShape { lengths: [4, 3, 5], strides: [2, 8, 24], order: DimOrder::D210 };
        let s = StreamConfig {
            sid: StreamId(4),
            kind: StreamKind::Affine(shape),
            base: 0x2000,
            size: 4 * 3 * 5 * u64::from(es),
            elem_size: es,
            read_only: true,
        };
        s.validate().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..60 {
            let a = s.addr_of(k);
            assert!(seen.insert(a), "duplicate address {a:#x}");
            assert_eq!(s.elem_of(a), Some(k));
        }
    }
}
