//! # ndpx-cxl
//!
//! CXL.mem extended-memory model for the NDPExt reproduction.
//!
//! The paper attaches a multi-headed CXL Type-3 memory expander to the NDP
//! stacks through a central CXL controller (Fig. 1). [`ExtendedMemory`]
//! models that device: a full-duplex link with a fixed propagation latency
//! (Table II: 200 ns, 16 lanes, 11.4 pJ/bit) in front of a DDR5-4800 backend
//! from [`ndpx_mem`].
//!
//! # Examples
//!
//! ```
//! use ndpx_cxl::{CxlParams, ExtendedMemory};
//! use ndpx_sim::time::Time;
//!
//! let mut ext = ExtendedMemory::new(CxlParams::paper_default(), 1 << 30);
//! let done = ext.access(0x4000, 64, false, Time::ZERO);
//! // Two link traversals dominate: ≥ 400 ns end to end.
//! assert!(done >= Time::from_ns(400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ndpx_mem::device::{DramConfig, DramDevice};
use ndpx_sim::energy::Energy;
use ndpx_sim::stats::{Counter, LatencyStat};
use ndpx_sim::time::Time;

/// CXL link parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlParams {
    /// One-way link propagation latency (excluding DRAM access).
    pub link_latency: Time,
    /// Number of lanes.
    pub lanes: u32,
    /// Serialization bandwidth per lane, bytes per nanosecond.
    pub bytes_per_ns_per_lane: f64,
    /// Link energy per bit transferred.
    pub pj_per_bit: f64,
}

impl CxlParams {
    /// The paper's default: 16 lanes, 200 ns link latency, 11.4 pJ/bit,
    /// 4 B/ns/lane (≈ 64 GB/s per direction).
    pub fn paper_default() -> Self {
        CxlParams {
            link_latency: Time::from_ns(200),
            lanes: 16,
            bytes_per_ns_per_lane: 4.0,
            pj_per_bit: 11.4,
        }
    }

    /// Same link with a different propagation latency (Fig. 8b sweeps
    /// 50–400 ns).
    pub fn with_latency(self, link_latency: Time) -> Self {
        CxlParams { link_latency, ..self }
    }

    /// Aggregate serialization bandwidth, bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.bytes_per_ns_per_lane * f64::from(self.lanes)
    }

    /// Serialization delay for `bytes`.
    pub fn serialization(&self, bytes: u32) -> Time {
        Time::from_ns_f64(f64::from(bytes) / self.bytes_per_ns())
    }
}

/// Statistics for the extended memory path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CxlStats {
    /// Requests served.
    pub requests: Counter,
    /// Payload bytes moved over the link (both directions).
    pub bytes: Counter,
    /// End-to-end latency of served requests.
    pub latency: LatencyStat,
}

/// A CXL-attached memory expander: link + DDR5 backend.
#[derive(Debug, Clone)]
pub struct ExtendedMemory {
    params: CxlParams,
    ddr: DramDevice,
    /// Next-free times of the request and response directions.
    req_free: Time,
    rsp_free: Time,
    stats: CxlStats,
    link_energy: Energy,
}

/// Size of a CXL.mem request header flit, bytes.
const REQUEST_BYTES: u32 = 16;

impl ExtendedMemory {
    /// Creates an expander of `capacity` bytes behind the given link.
    pub fn new(params: CxlParams, capacity: u64) -> Self {
        ExtendedMemory {
            params,
            ddr: DramDevice::new(DramConfig::ddr5_extended(capacity)),
            req_free: Time::ZERO,
            rsp_free: Time::ZERO,
            stats: CxlStats::default(),
            link_energy: Energy::ZERO,
        }
    }

    /// The link parameters.
    pub fn params(&self) -> &CxlParams {
        &self.params
    }

    /// The DDR backend (for statistics).
    pub fn ddr(&self) -> &DramDevice {
        &self.ddr
    }

    /// Performs one access of `bytes` at `addr`, issued from an NDP stack at
    /// `now`. Returns the time the response (data or write ack) arrives back.
    pub fn access(&mut self, addr: u64, bytes: u32, write: bool, now: Time) -> Time {
        // Request direction: header (+ data when writing).
        let req_payload = if write { REQUEST_BYTES + bytes } else { REQUEST_BYTES };
        let req_ser = self.params.serialization(req_payload);
        let req_start = now.max(self.req_free);
        self.req_free = req_start + req_ser;
        let at_device = req_start + req_ser + self.params.link_latency;

        let ddr_done = self.ddr.access(addr, bytes, write, at_device);

        // Response direction: data (+ header) for reads, ack for writes.
        let rsp_payload = if write { REQUEST_BYTES } else { REQUEST_BYTES + bytes };
        let rsp_ser = self.params.serialization(rsp_payload);
        let rsp_start = ddr_done.max(self.rsp_free);
        self.rsp_free = rsp_start + rsp_ser;
        let done = rsp_start + rsp_ser + self.params.link_latency;

        let moved = u64::from(req_payload + rsp_payload);
        self.stats.requests.inc();
        self.stats.bytes.add(moved);
        self.stats.latency.record(done - now);
        self.link_energy += Energy::from_pj(self.params.pj_per_bit * moved as f64 * 8.0);
        done
    }

    /// Statistics for the link.
    pub fn stats(&self) -> &CxlStats {
        &self.stats
    }

    /// Publishes port counters under `scope`, with the DDR backend nested at
    /// `…​.ddr`.
    pub fn register_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("requests", self.stats.requests.get());
        scope.count("bytes", self.stats.bytes.get());
        scope.latency("latency", &self.stats.latency);
        scope.gauge("link_pj", self.link_energy.as_pj());
        self.ddr.register_stats(&mut scope.scope("ddr"));
    }

    /// Dynamic energy: link traversal plus DDR access energy.
    pub fn dynamic_energy(&self) -> Energy {
        self.link_energy + self.ddr.dynamic_energy()
    }

    /// Link-only dynamic energy.
    pub fn link_energy(&self) -> Energy {
        self.link_energy
    }

    /// Background energy of the DDR backend over `elapsed`.
    pub fn background_energy(&self, elapsed: Time) -> Energy {
        self.ddr.background_energy(elapsed)
    }

    /// Clears link and DRAM state (statistics are preserved).
    pub fn reset_state(&mut self) {
        self.req_free = Time::ZERO;
        self.rsp_free = Time::ZERO;
        self.ddr.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> ExtendedMemory {
        ExtendedMemory::new(CxlParams::paper_default(), 1 << 26)
    }

    #[test]
    fn read_pays_two_link_traversals_plus_dram() {
        let mut e = ext();
        let done = e.access(0, 64, false, Time::ZERO);
        let dram = e.ddr.config().timing.row_empty();
        let ser =
            e.params.serialization(REQUEST_BYTES) + e.params.serialization(REQUEST_BYTES + 64);
        assert_eq!(done, Time::from_ns(400) + dram + ser);
    }

    #[test]
    fn latency_scales_with_link_latency() {
        let mut fast = ExtendedMemory::new(
            CxlParams::paper_default().with_latency(Time::from_ns(50)),
            1 << 26,
        );
        let mut slow = ext();
        let f = fast.access(0, 64, false, Time::ZERO);
        let s = slow.access(0, 64, false, Time::ZERO);
        assert_eq!(s - f, Time::from_ns(300));
    }

    #[test]
    fn response_direction_contends() {
        let mut e = ext();
        let a = e.access(0, 4096, false, Time::ZERO);
        let b = e.access(1 << 20, 4096, false, Time::ZERO);
        // Different DDR banks, but the 4 kB responses share the link.
        assert!(b > a);
    }

    #[test]
    fn write_moves_data_on_request_direction() {
        let mut e = ext();
        e.access(0, 64, true, Time::ZERO);
        // 16+64 request + 16 ack.
        assert_eq!(e.stats().bytes.get(), 96);
    }

    #[test]
    fn energy_matches_bytes_moved() {
        let mut e = ext();
        e.access(0, 64, false, Time::ZERO);
        let moved = (REQUEST_BYTES + REQUEST_BYTES + 64) as f64;
        assert!((e.link_energy().as_pj() - 11.4 * moved * 8.0).abs() < 1e-6);
        assert!(e.dynamic_energy() > e.link_energy());
    }

    #[test]
    fn stats_record_latency() {
        let mut e = ext();
        e.access(0, 64, false, Time::ZERO);
        assert_eq!(e.stats().requests.get(), 1);
        assert!(e.stats().latency.mean() >= Time::from_ns(400));
    }
}
