//! # ndpx-cxl
//!
//! CXL.mem extended-memory model for the NDPExt reproduction.
//!
//! The paper attaches a multi-headed CXL Type-3 memory expander to the NDP
//! stacks through a central CXL controller (Fig. 1). [`ExtendedMemory`]
//! models that device: a full-duplex link with a fixed propagation latency
//! (Table II: 200 ns, 16 lanes, 11.4 pJ/bit) in front of a DDR5-4800 backend
//! from [`ndpx_mem`].
//!
//! # Examples
//!
//! ```
//! use ndpx_cxl::{CxlParams, ExtendedMemory};
//! use ndpx_sim::time::Time;
//!
//! let mut ext = ExtendedMemory::new(CxlParams::paper_default(), 1 << 30);
//! let done = ext.access(0x4000, 64, false, Time::ZERO);
//! // Two link traversals dominate: ≥ 400 ns end to end.
//! assert!(done >= Time::from_ns(400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ndpx_mem::device::{DramConfig, DramDevice};
use ndpx_sim::energy::Energy;
use ndpx_sim::fault::FaultPlan;
use ndpx_sim::stats::{Counter, LatencyStat};
use ndpx_sim::time::Time;

/// CXL link parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlParams {
    /// One-way link propagation latency (excluding DRAM access).
    pub link_latency: Time,
    /// Number of lanes.
    pub lanes: u32,
    /// Serialization bandwidth per lane, bytes per nanosecond.
    pub bytes_per_ns_per_lane: f64,
    /// Link energy per bit transferred.
    pub pj_per_bit: f64,
}

impl CxlParams {
    /// The paper's default: 16 lanes, 200 ns link latency, 11.4 pJ/bit,
    /// 4 B/ns/lane (≈ 64 GB/s per direction).
    pub fn paper_default() -> Self {
        CxlParams {
            link_latency: Time::from_ns(200),
            lanes: 16,
            bytes_per_ns_per_lane: 4.0,
            pj_per_bit: 11.4,
        }
    }

    /// Same link with a different propagation latency (Fig. 8b sweeps
    /// 50–400 ns).
    pub fn with_latency(self, link_latency: Time) -> Self {
        CxlParams { link_latency, ..self }
    }

    /// Aggregate serialization bandwidth, bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.bytes_per_ns_per_lane * f64::from(self.lanes)
    }

    /// Serialization delay for `bytes`.
    pub fn serialization(&self, bytes: u32) -> Time {
        Time::from_ns_f64(f64::from(bytes) / self.bytes_per_ns())
    }
}

/// Statistics for the extended memory path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CxlStats {
    /// Requests served.
    pub requests: Counter,
    /// Payload bytes moved over the link (both directions).
    pub bytes: Counter,
    /// End-to-end latency of served requests.
    pub latency: LatencyStat,
}

/// Counters for the link fault model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CxlFaultStats {
    /// CRC errors detected on the link (every detection triggers a replay
    /// attempt or, past the retry bound, a retrain).
    pub crc_errors: u64,
    /// Link-layer replay retries performed.
    pub crc_retries: u64,
    /// Link retraining events (retry bound exhausted).
    pub retrains: u64,
    /// Total time requests spent stalled behind an in-progress retrain.
    pub retrain_wait: Time,
}

/// Transient-fault model for the CXL link: CRC errors recovered by
/// link-layer replay with bounded exponential backoff; a burst that exhausts
/// the retry bound forces a link retrain, stalling the link for
/// [`retrain_stall`](CxlFault::new) and delaying every request issued while
/// the retrain is in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct CxlFault {
    plan: FaultPlan,
    /// Bit-error rate: probability of a CRC error per transferred bit.
    ber: f64,
    /// Replay attempts before the link gives up and retrains.
    max_retries: u32,
    /// Duration of a link retrain.
    retrain_stall: Time,
    /// The link is retraining (unusable) until this time.
    retrain_until: Time,
    stats: CxlFaultStats,
}

impl CxlFault {
    /// Default replay bound before a retrain.
    pub const DEFAULT_MAX_RETRIES: u32 = 4;
    /// Default retrain duration (order of the CXL spec's recovery budget).
    pub const DEFAULT_RETRAIN_STALL: Time = Time::from_us(2);

    /// Creates the model from a derived decision [`FaultPlan`] and a
    /// per-bit error rate.
    pub fn new(plan: FaultPlan, ber: f64) -> Self {
        CxlFault {
            plan,
            ber,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            retrain_stall: Self::DEFAULT_RETRAIN_STALL,
            retrain_until: Time::ZERO,
            stats: CxlFaultStats::default(),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> &CxlFaultStats {
        &self.stats
    }

    /// Decisions drawn so far (pins the exact schedule length in tests).
    pub fn rolls(&self) -> u64 {
        self.plan.rolls()
    }
}

/// Counters for scheduled hard link outages (chaos plans, not the seeded
/// transient-fault model — the two compose but are independently enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutageStats {
    /// Scheduled outage windows the link entered.
    pub outages: u64,
    /// Retry probes spent by accesses waiting out an outage.
    pub probes: u64,
    /// Total time accesses stalled behind outage windows.
    pub stall: Time,
}

/// A CXL-attached memory expander: link + DDR5 backend.
#[derive(Debug, Clone)]
pub struct ExtendedMemory {
    params: CxlParams,
    ddr: DramDevice,
    /// Next-free times of the request and response directions.
    req_free: Time,
    rsp_free: Time,
    stats: CxlStats,
    link_energy: Energy,
    fault: Option<CxlFault>,
    /// The link is hard-down (scheduled outage) until this time.
    outage_until: Time,
    /// Base backoff of the outage retry loop (doubles per probe).
    outage_retry: Time,
    outage: OutageStats,
}

/// Size of a CXL.mem request header flit, bytes.
const REQUEST_BYTES: u32 = 16;

impl ExtendedMemory {
    /// Creates an expander of `capacity` bytes behind the given link.
    pub fn new(params: CxlParams, capacity: u64) -> Self {
        ExtendedMemory {
            params,
            ddr: DramDevice::new(DramConfig::ddr5_extended(capacity)),
            req_free: Time::ZERO,
            rsp_free: Time::ZERO,
            stats: CxlStats::default(),
            link_energy: Energy::ZERO,
            fault: None,
            outage_until: Time::ZERO,
            outage_retry: Time::from_ns(500),
            outage: OutageStats::default(),
        }
    }

    /// Installs (or clears) the link fault model.
    pub fn set_fault(&mut self, fault: Option<CxlFault>) {
        self.fault = fault;
    }

    /// The installed fault model, if any.
    pub fn fault(&self) -> Option<&CxlFault> {
        self.fault.as_ref()
    }

    /// True when a fault model is installed.
    pub fn fault_enabled(&self) -> bool {
        self.fault.is_some()
    }

    /// Sets the base backoff of the outage retry loop.
    pub fn set_outage_retry(&mut self, base: Time) {
        self.outage_retry = base.max(Time::from_ps(1));
    }

    /// Takes the link hard-down until `until`: every access issued while
    /// the outage is active spins on bounded doubling retry/backoff and
    /// proceeds at its first probe past the restore. Overlapping outages
    /// extend the window.
    pub fn begin_outage(&mut self, until: Time) {
        self.outage.outages += 1;
        self.outage_until = self.outage_until.max(until);
    }

    /// True while a scheduled outage window is active at `now`.
    pub fn outage_active(&self, now: Time) -> bool {
        now < self.outage_until
    }

    /// Scheduled-outage counters.
    pub fn outage_stats(&self) -> &OutageStats {
        &self.outage
    }

    /// The link parameters.
    pub fn params(&self) -> &CxlParams {
        &self.params
    }

    /// The DDR backend (for statistics).
    pub fn ddr(&self) -> &DramDevice {
        &self.ddr
    }

    /// Performs one access of `bytes` at `addr`, issued from an NDP stack at
    /// `now`. Returns the time the response (data or write ack) arrives back.
    pub fn access(&mut self, addr: u64, bytes: u32, write: bool, now: Time) -> Time {
        let issued = now;
        // A request issued during a hard outage spins on bounded doubling
        // retry/backoff: probes fail until the restore, and the access
        // proceeds at its first probe past it. The doubling caps at 256x
        // the base (mirroring the CRC replay cap) so even a long outage's
        // first success lands close behind the restore.
        let now = if now < self.outage_until {
            let mut probe = now;
            let mut exp = 0u32;
            while probe < self.outage_until {
                probe += self.outage_retry * (1u64 << exp.min(8));
                exp += 1;
                self.outage.probes += 1;
            }
            self.outage.stall += probe - now;
            probe
        } else {
            now
        };
        // A request issued while the link is retraining waits it out.
        let now = match &mut self.fault {
            Some(f) if now < f.retrain_until => {
                f.stats.retrain_wait += f.retrain_until - now;
                f.retrain_until
            }
            _ => now,
        };
        // Request direction: header (+ data when writing).
        let req_payload = if write { REQUEST_BYTES + bytes } else { REQUEST_BYTES };
        let req_ser = self.params.serialization(req_payload);
        let req_start = now.max(self.req_free);
        self.req_free = req_start + req_ser;
        let at_device = req_start + req_ser + self.params.link_latency;

        let ddr_done = self.ddr.access(addr, bytes, write, at_device);

        // Response direction: data (+ header) for reads, ack for writes.
        let rsp_payload = if write { REQUEST_BYTES } else { REQUEST_BYTES + bytes };
        let rsp_ser = self.params.serialization(rsp_payload);
        let rsp_start = ddr_done.max(self.rsp_free);
        self.rsp_free = rsp_start + rsp_ser;
        let mut done = rsp_start + rsp_ser + self.params.link_latency;

        let moved = u64::from(req_payload + rsp_payload);
        if let Some(f) = &mut self.fault {
            let bits = moved * 8;
            // CRC covers the whole transfer: per-access error probability
            // scales with the bits moved.
            let p = (f.ber * bits as f64).min(1.0);
            // One replay = re-serializing the payload plus a round trip.
            let replay = self.params.serialization((moved).min(u64::from(u32::MAX)) as u32)
                + self.params.link_latency * 2;
            let mut attempt = 0u32;
            while f.plan.roll(p) {
                attempt += 1;
                f.stats.crc_errors += 1;
                if attempt > f.max_retries {
                    // Retry bound exhausted: the link retrains and every
                    // request issued meanwhile stalls behind it.
                    f.stats.retrains += 1;
                    f.retrain_until = done + f.retrain_stall;
                    done = f.retrain_until;
                    break;
                }
                f.stats.crc_retries += 1;
                // Replayed bits burn link energy again.
                self.link_energy += Energy::from_pj(self.params.pj_per_bit * bits as f64);
                // Bounded exponential backoff between replays.
                done += replay * (1u64 << (attempt - 1).min(8));
            }
        }
        self.stats.requests.inc();
        self.stats.bytes.add(moved);
        self.stats.latency.record(done - issued);
        self.link_energy += Energy::from_pj(self.params.pj_per_bit * moved as f64 * 8.0);
        done
    }

    /// A placement-feedback multiplier for the extended path: `1.0` on a
    /// healthy link, growing with the observed replay and retrain rates so
    /// the runtime's capacity model sees the degraded effective latency and
    /// shifts streams toward stack-local DRAM.
    pub fn degradation(&self) -> f64 {
        let req = self.stats.requests.get();
        if req == 0 {
            return 1.0;
        }
        let mut d = 1.0;
        if let Some(f) = &self.fault {
            let retry_rate = f.stats.crc_retries as f64 / req as f64;
            let retrain_rate = f.stats.retrains as f64 / req as f64;
            d += 2.0 * retry_rate + 50.0 * retrain_rate;
        }
        // Hard outages feed the same signal: accesses that had to probe a
        // dead link out-weigh transient replays.
        d += 10.0 * (self.outage.probes as f64 / req as f64);
        d
    }

    /// Publishes fault counters under `scope` (no-op without a fault model,
    /// so disabled runs keep their registry dumps byte-identical).
    pub fn register_fault_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        if let Some(f) = &self.fault {
            scope.count("crc_errors", f.stats.crc_errors);
            scope.count("crc_retries", f.stats.crc_retries);
            scope.count("retrains", f.stats.retrains);
            scope.count("retrain_wait_ps", f.stats.retrain_wait.as_ps());
            scope.count("rolls", f.plan.rolls());
        }
    }

    /// Publishes scheduled-outage counters under `scope`. Callers gate this
    /// on a configured chaos plan, so chaos-off registry dumps stay
    /// byte-identical.
    pub fn register_outage_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("outages", self.outage.outages);
        scope.count("probes", self.outage.probes);
        scope.count("stall_ps", self.outage.stall.as_ps());
    }

    /// Statistics for the link.
    pub fn stats(&self) -> &CxlStats {
        &self.stats
    }

    /// Publishes port counters under `scope`, with the DDR backend nested at
    /// `…​.ddr`.
    pub fn register_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("requests", self.stats.requests.get());
        scope.count("bytes", self.stats.bytes.get());
        scope.latency("latency", &self.stats.latency);
        scope.gauge("link_pj", self.link_energy.as_pj());
        self.ddr.register_stats(&mut scope.scope("ddr"));
    }

    /// Dynamic energy: link traversal plus DDR access energy.
    pub fn dynamic_energy(&self) -> Energy {
        self.link_energy + self.ddr.dynamic_energy()
    }

    /// Link-only dynamic energy.
    pub fn link_energy(&self) -> Energy {
        self.link_energy
    }

    /// Background energy of the DDR backend over `elapsed`.
    pub fn background_energy(&self, elapsed: Time) -> Energy {
        self.ddr.background_energy(elapsed)
    }

    /// Clears link and DRAM state (statistics are preserved).
    pub fn reset_state(&mut self) {
        self.req_free = Time::ZERO;
        self.rsp_free = Time::ZERO;
        self.outage_until = Time::ZERO;
        if let Some(f) = &mut self.fault {
            f.retrain_until = Time::ZERO;
        }
        self.ddr.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> ExtendedMemory {
        ExtendedMemory::new(CxlParams::paper_default(), 1 << 26)
    }

    #[test]
    fn read_pays_two_link_traversals_plus_dram() {
        let mut e = ext();
        let done = e.access(0, 64, false, Time::ZERO);
        let dram = e.ddr.config().timing.row_empty();
        let ser =
            e.params.serialization(REQUEST_BYTES) + e.params.serialization(REQUEST_BYTES + 64);
        assert_eq!(done, Time::from_ns(400) + dram + ser);
    }

    #[test]
    fn latency_scales_with_link_latency() {
        let mut fast = ExtendedMemory::new(
            CxlParams::paper_default().with_latency(Time::from_ns(50)),
            1 << 26,
        );
        let mut slow = ext();
        let f = fast.access(0, 64, false, Time::ZERO);
        let s = slow.access(0, 64, false, Time::ZERO);
        assert_eq!(s - f, Time::from_ns(300));
    }

    #[test]
    fn response_direction_contends() {
        let mut e = ext();
        let a = e.access(0, 4096, false, Time::ZERO);
        let b = e.access(1 << 20, 4096, false, Time::ZERO);
        // Different DDR banks, but the 4 kB responses share the link.
        assert!(b > a);
    }

    #[test]
    fn write_moves_data_on_request_direction() {
        let mut e = ext();
        e.access(0, 64, true, Time::ZERO);
        // 16+64 request + 16 ack.
        assert_eq!(e.stats().bytes.get(), 96);
    }

    #[test]
    fn outage_stalls_accesses_behind_bounded_backoff() {
        let mut e = ext();
        e.set_outage_retry(Time::from_ns(100));
        e.begin_outage(Time::from_us(10));
        assert!(e.outage_active(Time::ZERO));
        assert!(!e.outage_active(Time::from_us(10)));
        let done = e.access(0, 64, false, Time::ZERO);
        // Doubling probes from 100 ns land at 100, 300, 700, 1500, 3100,
        // 6300, 12700 ns: the seventh probe is the first past the restore.
        assert_eq!(e.outage_stats().probes, 7);
        assert_eq!(e.outage_stats().stall, Time::from_ns(12_700));
        assert!(done > Time::from_us(10), "the access may not complete inside the outage");
        assert!(e.degradation() > 1.0, "outage probes must feed the placement signal");
        // After the restore the link is healthy again: no new probes.
        e.access(0, 64, false, Time::from_us(20));
        assert_eq!(e.outage_stats().probes, 7);
        assert_eq!(e.outage_stats().outages, 1);
    }

    #[test]
    fn overlapping_outages_extend_the_window() {
        let mut e = ext();
        e.begin_outage(Time::from_us(10));
        e.begin_outage(Time::from_us(5));
        assert!(e.outage_active(Time::from_us(9)));
        assert!(!e.outage_active(Time::from_us(10)));
        assert_eq!(e.outage_stats().outages, 2);
    }

    #[test]
    fn energy_matches_bytes_moved() {
        let mut e = ext();
        e.access(0, 64, false, Time::ZERO);
        let moved = (REQUEST_BYTES + REQUEST_BYTES + 64) as f64;
        assert!((e.link_energy().as_pj() - 11.4 * moved * 8.0).abs() < 1e-6);
        assert!(e.dynamic_energy() > e.link_energy());
    }

    #[test]
    fn stats_record_latency() {
        let mut e = ext();
        e.access(0, 64, false, Time::ZERO);
        assert_eq!(e.stats().requests.get(), 1);
        assert!(e.stats().latency.mean() >= Time::from_ns(400));
    }

    fn faulty(ber: f64) -> ExtendedMemory {
        use ndpx_sim::fault::{domain, FaultPlan};
        let mut e = ext();
        e.set_fault(Some(CxlFault::new(FaultPlan::derive(7, domain::CXL, 0), ber)));
        e
    }

    #[test]
    fn no_fault_model_is_the_ideal_link() {
        let mut ideal = ext();
        let mut off = ext();
        off.set_fault(None);
        assert!(!off.fault_enabled());
        assert_eq!(off.degradation(), 1.0);
        for i in 0..64 {
            let t = Time::from_ns(i * 10);
            assert_eq!(
                ideal.access(i << 8, 64, i % 3 == 0, t),
                off.access(i << 8, 64, i % 3 == 0, t)
            );
        }
    }

    #[test]
    fn zero_ber_changes_no_timing() {
        let mut ideal = ext();
        let mut f = faulty(0.0);
        for i in 0..64 {
            let t = Time::from_ns(i * 10);
            assert_eq!(ideal.access(i << 8, 64, false, t), f.access(i << 8, 64, false, t));
        }
        // Decisions were drawn but none injected.
        let stats = *f.fault().expect("installed").stats();
        assert_eq!(stats, CxlFaultStats::default());
        assert_eq!(f.fault().expect("installed").rolls(), 64);
    }

    #[test]
    fn crc_errors_retry_and_delay() {
        let mut ideal = ext();
        let mut f = faulty(1e-4); // ~7% per 64 B read: retries, no retrain streak
        let mut slower = false;
        for i in 0..2000u64 {
            let t = Time::from_ns(i * 1000);
            let a = ideal.access(i << 8, 64, false, t);
            let b = f.access(i << 8, 64, false, t);
            assert!(b >= a);
            slower |= b > a;
        }
        let stats = *f.fault().expect("installed").stats();
        assert!(slower, "no injected CRC error slowed any access");
        assert!(stats.crc_errors > 0);
        assert!(stats.crc_retries > 0);
        assert!(f.degradation() > 1.0);
    }

    #[test]
    fn retry_exhaustion_retrains_and_stalls_followers() {
        let mut f = faulty(1.0); // every roll fails: immediate retry exhaustion
        let a = f.access(0, 64, false, Time::ZERO);
        let stats = *f.fault().expect("installed").stats();
        assert_eq!(stats.retrains, 1);
        assert_eq!(stats.crc_retries, CxlFault::DEFAULT_MAX_RETRIES as u64);
        assert!(a >= CxlFault::DEFAULT_RETRAIN_STALL);
        // A request issued mid-retrain waits for the link to come back.
        f.access(1 << 20, 64, false, Time::ZERO);
        let stats = *f.fault().expect("installed").stats();
        assert!(stats.retrain_wait > Time::ZERO);
        assert!(f.degradation() > 1.0);
        // reset_state clears the retrain window.
        f.reset_state();
        assert_eq!(f.fault().map(|x| x.retrain_until), Some(Time::ZERO));
    }

    #[test]
    fn fault_stats_register_only_when_enabled() {
        use ndpx_sim::telemetry::StatRegistry;
        let mut reg = StatRegistry::new();
        ext().register_fault_stats(&mut reg.scope("fault.cxl"));
        assert!(reg.is_empty());
        let mut f = faulty(1.0);
        f.access(0, 64, false, Time::ZERO);
        f.register_fault_stats(&mut reg.scope("fault.cxl"));
        assert!(reg.get("fault.cxl.crc_errors").is_some());
        assert!(reg.get("fault.cxl.rolls").is_some());
    }
}
