//! Two-level NDP interconnect topology.
//!
//! The paper's system (Fig. 1, Table II) is a mesh of 3D memory stacks
//! (inter-stack network, default 4×2) where each stack internally connects its
//! NDP units either through a 4×4 mesh (HMC-style vaults) or a crossbar
//! (HBM-style, one logic die behind a 2.5D interposer).

/// Identifies one NDP unit (one core + its local memory region).
///
/// Units are numbered stack-major: unit `u` lives in stack
/// `u / units_per_stack` at local index `u % units_per_stack`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub usize);

impl UnitId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// How units inside one stack are connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraKind {
    /// 2D mesh of units (HMC-style vault network), XY routing.
    Mesh,
    /// Single-hop crossbar on the logic die (HBM-style).
    Crossbar,
}

/// Geometric description of the two-level topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Stack-mesh width.
    pub stacks_x: usize,
    /// Stack-mesh height.
    pub stacks_y: usize,
    /// Unit-mesh width inside a stack.
    pub units_x: usize,
    /// Unit-mesh height inside a stack.
    pub units_y: usize,
    /// Intra-stack connectivity.
    pub intra: IntraKind,
}

impl Topology {
    /// The paper's default: 4×2 stacks of 4×4 units (128 units).
    pub const fn paper_default(intra: IntraKind) -> Self {
        Topology { stacks_x: 4, stacks_y: 2, units_x: 4, units_y: 4, intra }
    }

    /// Units per stack.
    pub const fn units_per_stack(&self) -> usize {
        self.units_x * self.units_y
    }

    /// Number of stacks.
    pub const fn stacks(&self) -> usize {
        self.stacks_x * self.stacks_y
    }

    /// Total unit count.
    pub const fn units(&self) -> usize {
        self.stacks() * self.units_per_stack()
    }

    /// The stack holding `unit`.
    #[inline]
    pub fn stack_of(&self, unit: UnitId) -> usize {
        unit.0 / self.units_per_stack()
    }

    /// `unit`'s local index within its stack.
    #[inline]
    pub fn local_of(&self, unit: UnitId) -> usize {
        unit.0 % self.units_per_stack()
    }

    /// Mesh coordinates of a stack.
    #[inline]
    pub fn stack_coords(&self, stack: usize) -> (usize, usize) {
        (stack % self.stacks_x, stack / self.stacks_x)
    }

    /// Mesh coordinates of a local unit index inside a stack.
    #[inline]
    pub fn local_coords(&self, local: usize) -> (usize, usize) {
        (local % self.units_x, local / self.units_x)
    }

    /// Manhattan distance between stacks.
    pub fn inter_hops(&self, a: UnitId, b: UnitId) -> usize {
        let (ax, ay) = self.stack_coords(self.stack_of(a));
        let (bx, by) = self.stack_coords(self.stack_of(b));
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Intra-stack hop count contributed by a message from `a` to `b`.
    ///
    /// For a crossbar, any on-stack movement is one hop. For a mesh it is the
    /// Manhattan distance to the stack port (local unit 0) when crossing
    /// stacks, or directly between the two units when staying on-stack.
    pub fn intra_hops(&self, a: UnitId, b: UnitId) -> usize {
        if a == b {
            return 0;
        }
        let same_stack = self.stack_of(a) == self.stack_of(b);
        match self.intra {
            IntraKind::Crossbar => {
                if same_stack {
                    1
                } else {
                    2 // source unit -> port, port -> destination unit
                }
            }
            IntraKind::Mesh => {
                let (ax, ay) = self.local_coords(self.local_of(a));
                let (bx, by) = self.local_coords(self.local_of(b));
                if same_stack {
                    ax.abs_diff(bx) + ay.abs_diff(by)
                } else {
                    // Route via each stack's port at local (0, 0).
                    (ax + ay) + (bx + by)
                }
            }
        }
    }

    /// Validates the topology.
    ///
    /// # Errors
    ///
    /// Returns a description if any dimension is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.stacks_x == 0 || self.stacks_y == 0 || self.units_x == 0 || self.units_y == 0 {
            return Err(format!("topology dimensions must be positive: {self:?}"));
        }
        Ok(())
    }
}

/// Precomputed hop-count tables for every unit pair.
///
/// [`Topology::intra_hops`]/[`Topology::inter_hops`] re-derive coordinates
/// and Manhattan distances on every call; on the simulation hot path that
/// arithmetic runs per message. A `DistanceTable` materializes both counts
/// once (`units² × u16`, 64 KB at the paper's 128 units) so lookups are one
/// indexed load.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    units: usize,
    intra: Vec<u16>,
    inter: Vec<u16>,
}

impl DistanceTable {
    /// Builds the tables from the topology's hop derivations.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.units();
        let mut intra = Vec::with_capacity(n * n);
        let mut inter = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                intra.push(topo.intra_hops(UnitId(a), UnitId(b)) as u16);
                inter.push(topo.inter_hops(UnitId(a), UnitId(b)) as u16);
            }
        }
        DistanceTable { units: n, intra, inter }
    }

    /// Precomputed [`Topology::intra_hops`].
    #[inline]
    pub fn intra_hops(&self, a: UnitId, b: UnitId) -> usize {
        usize::from(self.intra[a.0 * self.units + b.0])
    }

    /// Precomputed [`Topology::inter_hops`].
    #[inline]
    pub fn inter_hops(&self, a: UnitId, b: UnitId) -> usize {
        usize::from(self.inter[a.0 * self.units + b.0])
    }

    /// Unit count the table was built for.
    pub fn units(&self) -> usize {
        self.units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_128_units() {
        let t = Topology::paper_default(IntraKind::Mesh);
        assert_eq!(t.units(), 128);
        assert_eq!(t.stacks(), 8);
        assert_eq!(t.units_per_stack(), 16);
    }

    #[test]
    fn stack_and_local_decomposition() {
        let t = Topology::paper_default(IntraKind::Mesh);
        let u = UnitId(35); // stack 2, local 3
        assert_eq!(t.stack_of(u), 2);
        assert_eq!(t.local_of(u), 3);
        assert_eq!(t.stack_coords(2), (2, 0));
        assert_eq!(t.local_coords(3), (3, 0));
    }

    #[test]
    fn inter_hops_are_manhattan() {
        let t = Topology::paper_default(IntraKind::Mesh);
        // stack 0 at (0,0), stack 7 at (3,1): 4 hops.
        let a = UnitId(0);
        let b = UnitId(7 * 16);
        assert_eq!(t.inter_hops(a, b), 4);
        assert_eq!(t.inter_hops(a, a), 0);
    }

    #[test]
    fn intra_mesh_hops() {
        let t = Topology::paper_default(IntraKind::Mesh);
        // local 0 (0,0) to local 15 (3,3): 6 hops on-stack.
        assert_eq!(t.intra_hops(UnitId(0), UnitId(15)), 6);
        // Cross-stack: local 5 (1,1) to port (2) + port to local 10 (2,2) (4) = 6.
        assert_eq!(t.intra_hops(UnitId(5), UnitId(16 + 10)), 6);
        assert_eq!(t.intra_hops(UnitId(3), UnitId(3)), 0);
    }

    #[test]
    fn intra_crossbar_hops() {
        let t = Topology::paper_default(IntraKind::Crossbar);
        assert_eq!(t.intra_hops(UnitId(0), UnitId(15)), 1);
        assert_eq!(t.intra_hops(UnitId(0), UnitId(16)), 2);
    }

    #[test]
    fn distance_table_matches_derivation() {
        for intra in [IntraKind::Mesh, IntraKind::Crossbar] {
            let t = Topology::paper_default(intra);
            let d = DistanceTable::new(&t);
            assert_eq!(d.units(), t.units());
            for a in 0..t.units() {
                for b in 0..t.units() {
                    let (a, b) = (UnitId(a), UnitId(b));
                    assert_eq!(d.intra_hops(a, b), t.intra_hops(a, b));
                    assert_eq!(d.inter_hops(a, b), t.inter_hops(a, b));
                }
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut t = Topology::paper_default(IntraKind::Mesh);
        t.units_x = 0;
        assert!(t.validate().is_err());
        assert!(Topology::paper_default(IntraKind::Mesh).validate().is_ok());
    }
}
