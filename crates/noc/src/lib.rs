//! # ndpx-noc
//!
//! Interconnect models for the NDPExt reproduction: the intra-stack NoC and
//! the inter-stack memory network of a multi-stack 3D NDP system.
//!
//! * [`topology`] — the two-level geometry (stack mesh × unit mesh/crossbar)
//!   and hop-count math;
//! * [`network`] — a contention-aware latency/energy model using per-link
//!   next-free-time reservations.
//!
//! # Examples
//!
//! ```
//! use ndpx_noc::network::{LinkParams, Network};
//! use ndpx_noc::topology::{IntraKind, Topology, UnitId};
//! use ndpx_sim::time::Time;
//!
//! let mut net = Network::new(
//!     Topology::paper_default(IntraKind::Crossbar),
//!     LinkParams::intra_stack(),
//!     LinkParams::inter_stack(),
//! );
//! let arrival = net.send(UnitId(0), UnitId(120), 64, Time::ZERO);
//! assert!(arrival > Time::from_ns(10)); // crosses the stack mesh
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod topology;

pub use network::{LinkParams, LinkStats, Network, NocFault, NocStats};
pub use topology::{IntraKind, Topology, UnitId};
