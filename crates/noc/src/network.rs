//! Contention-aware network model.
//!
//! [`Network`] combines the topology with link
//! parameters (Table II) and models queueing with per-link *next-free-time*
//! reservations: a message reserves its source injection port, every
//! inter-stack link along its XY route, and the destination ejection port,
//! each for the message's serialization time. Latency is
//! `hops × hop-latency + serialization + queueing`.

use ndpx_sim::energy::Energy;
use ndpx_sim::fault::FaultPlan;
use ndpx_sim::stats::Counter;
use ndpx_sim::telemetry::StatScope;
use ndpx_sim::time::Time;

use crate::topology::{DistanceTable, Topology, UnitId};

/// Bandwidth/latency/energy parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Per-hop header latency.
    pub hop_latency: Time,
    /// Serialization bandwidth in bytes per nanosecond.
    pub bytes_per_ns: f64,
    /// Energy per bit per hop.
    pub pj_per_bit: f64,
}

impl LinkParams {
    /// Intra-stack NoC (Table II: 128-bit link, 1.5 ns/hop, 0.4 pJ/bit).
    ///
    /// The 128-bit link at the logic-die clock gives 32 B/ns effective
    /// serialization bandwidth.
    pub fn intra_stack() -> Self {
        LinkParams { hop_latency: Time::from_ns_f64(1.5), bytes_per_ns: 32.0, pj_per_bit: 0.4 }
    }

    /// Inter-stack SerDes links (Table II: 32 GB/s per direction, 10 ns/hop,
    /// 4 pJ/bit).
    pub fn inter_stack() -> Self {
        LinkParams { hop_latency: Time::from_ns(10), bytes_per_ns: 32.0, pj_per_bit: 4.0 }
    }

    /// Serialization delay of a message of `bytes` bytes.
    pub fn serialization(&self, bytes: u32) -> Time {
        Time::from_ns_f64(f64::from(bytes) / self.bytes_per_ns)
    }
}

/// Network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages sent.
    pub messages: Counter,
    /// Payload bytes moved.
    pub bytes: Counter,
    /// Total intra-stack hops traversed.
    pub intra_hops: Counter,
    /// Total inter-stack hops traversed.
    pub inter_hops: Counter,
}

/// Telemetry for one directed inter-stack link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages forwarded over this link.
    pub forwarded: Counter,
    /// Flits forwarded over this link (`FLIT_BYTES`-byte units).
    pub flits: Counter,
    /// Payload bytes forwarded over this link.
    pub bytes: Counter,
    /// Serialization time the link spent busy (utilization numerator:
    /// divide a window's `busy_ps` delta by the window width).
    pub busy: Time,
    /// Worst queueing delay a message saw waiting for this link.
    pub peak_wait: Time,
    /// Most reservations simultaneously held on this link's virtual
    /// channels at any injection instant.
    pub peak_inflight: u64,
    /// Link-level retransmissions after flit corruption (fault model).
    pub retransmits: Counter,
}

/// Size of one flit, bytes: the unit of the corruption model and of the
/// per-link flit counters.
const FLIT_BYTES: u32 = 16;

/// Flit-corruption fault model for the interconnect.
///
/// Each link traversal draws one decision from a deterministic
/// [`FaultPlan`]; the per-traversal corruption probability scales with the
/// message's flit count. A corrupted traversal is recovered by a link-level
/// retransmission: the message pays one extra hop latency plus
/// serialization, and the link's error counter increments.
#[derive(Debug, Clone, PartialEq)]
pub struct NocFault {
    plan: FaultPlan,
    /// Flit-error rate: corruption probability per flit per traversal.
    fer: f64,
    /// Total retransmissions across all links.
    retransmits: u64,
}

impl NocFault {
    /// Creates the model from a derived decision [`FaultPlan`] and a
    /// per-flit error rate.
    pub fn new(plan: FaultPlan, fer: f64) -> Self {
        NocFault { plan, fer, retransmits: 0 }
    }

    /// Corruption probability for one traversal of a `bytes`-byte message.
    #[inline]
    fn p_msg(&self, bytes: u32) -> f64 {
        (self.fer * f64::from(bytes.div_ceil(FLIT_BYTES))).min(1.0)
    }

    /// Total retransmissions injected so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Decisions drawn so far.
    pub fn rolls(&self) -> u64 {
        self.plan.rolls()
    }
}

/// Number of virtual channels per port and per inter-stack link.
///
/// Router buffering lets several in-flight packets overlap; modelling each
/// port/link as a single scalar `next_free` would falsely serialize a
/// message scheduled at a *future* time (e.g. a miss response leaving when
/// the extended memory answers) against earlier idle-time traffic. K
/// channels, each holding a reservation for K× the serialization time,
/// preserve aggregate bandwidth while allowing out-of-order overlap.
const VIRTUAL_CHANNELS: usize = 12;

/// The two-level NDP interconnect with reservation-based contention.
///
/// # Examples
///
/// ```
/// use ndpx_noc::network::{LinkParams, Network};
/// use ndpx_noc::topology::{IntraKind, Topology, UnitId};
/// use ndpx_sim::time::Time;
///
/// let mut net = Network::new(
///     Topology::paper_default(IntraKind::Mesh),
///     LinkParams::intra_stack(),
///     LinkParams::inter_stack(),
/// );
/// let arrival = net.send(UnitId(0), UnitId(17), 64, Time::ZERO);
/// assert!(arrival > Time::ZERO);
/// // A local "message" is free.
/// assert_eq!(net.send(UnitId(3), UnitId(3), 64, Time::ZERO), Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    intra: LinkParams,
    inter: LinkParams,
    /// Precomputed intra-/inter-stack hop counts for every unit pair.
    dist: DistanceTable,
    /// Per `(src stack, dst stack)` pair (row-major): the directed
    /// inter-stack link indices along the XY route, precomputed so `send`
    /// reserves links without re-deriving coordinates per hop.
    routes: Vec<Vec<u32>>,
    /// Injection (even) / ejection (odd) port channels per unit:
    /// `VIRTUAL_CHANNELS` next-free times each.
    unit_ports: Vec<Time>,
    /// Four directed inter-stack links per stack (E, W, N, S), with
    /// `VIRTUAL_CHANNELS` next-free times each.
    stack_links: Vec<Time>,
    /// Cross-stack messages, payload bytes, and flits per `(src stack, dst
    /// stack)` pair (row-major). Routes are static, so exact per-link
    /// forwarded counts are expanded from these at report time — the send
    /// hot loop only pays three adds per message instead of updates per hop.
    pair_msgs: Vec<u64>,
    pair_bytes: Vec<u64>,
    pair_flits: Vec<u64>,
    /// Worst queueing delay per directed inter-stack link (`stack × 4 +
    /// dir` indexing); updated per hop in `send`.
    link_peak_wait: Vec<Time>,
    /// Most simultaneously held virtual-channel reservations per directed
    /// inter-stack link (same indexing); piggybacks on the reservation scan,
    /// so it costs no extra pass.
    link_peak_inflight: Vec<u64>,
    /// Retransmissions per directed inter-stack link (same indexing as
    /// `link_peak_wait`); only touched by the fault model.
    link_retransmits: Vec<u64>,
    /// Dead directed inter-stack links (chaos link-down); routes avoid them.
    dead_links: Vec<bool>,
    /// Per-link forwarded/byte/flit counts flushed out of the per-pair
    /// counters at each reroute, so traffic carried over *old* routes is
    /// never re-attributed to the new ones.
    link_fwd_acc: Vec<u64>,
    link_bytes_acc: Vec<u64>,
    link_flits_acc: Vec<u64>,
    stats: NocStats,
    dynamic: Energy,
    fault: Option<NocFault>,
}

/// The directed link indices (`stack × 4 + dir`; 0=E, 1=W, 2=N, 3=S) an XY
/// route from `src_stack` to `dst_stack` traverses, in order.
fn route_links(topo: &Topology, src_stack: usize, dst_stack: usize) -> Vec<u32> {
    let (mut sx, mut sy) = topo.stack_coords(src_stack);
    let (dx, dy) = topo.stack_coords(dst_stack);
    let mut links = Vec::new();
    while sx != dx {
        let (dir, nx) = if sx < dx { (0usize, sx + 1) } else { (1, sx - 1) };
        links.push(((sy * topo.stacks_x + sx) * 4 + dir) as u32);
        sx = nx;
    }
    while sy != dy {
        let (dir, ny) = if sy < dy { (2usize, sy + 1) } else { (3, sy - 1) };
        links.push(((sy * topo.stacks_x + sx) * 4 + dir) as u32);
        sy = ny;
    }
    links
}

impl Network {
    /// Creates a network with all links idle.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails validation.
    pub fn new(topo: Topology, intra: LinkParams, inter: LinkParams) -> Self {
        topo.validate().expect("invalid topology");
        let stacks = topo.stacks();
        let routes =
            (0..stacks * stacks).map(|i| route_links(&topo, i / stacks, i % stacks)).collect();
        Network {
            unit_ports: vec![Time::ZERO; topo.units() * 2 * VIRTUAL_CHANNELS],
            stack_links: vec![Time::ZERO; stacks * 4 * VIRTUAL_CHANNELS],
            pair_msgs: vec![0; stacks * stacks],
            pair_bytes: vec![0; stacks * stacks],
            pair_flits: vec![0; stacks * stacks],
            link_peak_wait: vec![Time::ZERO; stacks * 4],
            link_peak_inflight: vec![0; stacks * 4],
            link_retransmits: vec![0; stacks * 4],
            dead_links: vec![false; stacks * 4],
            link_fwd_acc: vec![0; stacks * 4],
            link_bytes_acc: vec![0; stacks * 4],
            link_flits_acc: vec![0; stacks * 4],
            dist: DistanceTable::new(&topo),
            routes,
            topo,
            intra,
            inter,
            stats: NocStats::default(),
            dynamic: Energy::ZERO,
            fault: None,
        }
    }

    /// Installs (or clears) the flit-corruption fault model.
    pub fn set_fault(&mut self, fault: Option<NocFault>) {
        self.fault = fault;
    }

    /// The installed fault model, if any.
    pub fn fault(&self) -> Option<&NocFault> {
        self.fault.as_ref()
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Uncontended one-way latency between two units for a message of
    /// `bytes` — used by the runtime's attenuation factors and by tests.
    pub fn base_latency(&self, src: UnitId, dst: UnitId, bytes: u32) -> Time {
        if src == dst {
            return Time::ZERO;
        }
        let intra_h = self.dist.intra_hops(src, dst) as u64;
        let inter_h = self.inter_hops(src, dst);
        let mut t = self.intra.hop_latency * intra_h + self.inter.hop_latency * inter_h;
        t += if inter_h > 0 {
            self.inter.serialization(bytes)
        } else {
            self.intra.serialization(bytes)
        };
        t
    }

    /// Sends `bytes` from `src` to `dst` no earlier than `now`; returns the
    /// arrival time. Reserves ports and inter-stack links for the message's
    /// serialization time.
    pub fn send(&mut self, src: UnitId, dst: UnitId, bytes: u32, now: Time) -> Time {
        if src == dst {
            return now;
        }
        let intra_h = self.dist.intra_hops(src, dst) as u64;
        let inter_h = self.inter_hops(src, dst);
        self.stats.messages.inc();
        self.stats.bytes.add(u64::from(bytes));
        self.stats.intra_hops.add(intra_h);
        self.stats.inter_hops.add(inter_h);

        let bits = f64::from(bytes) * 8.0;
        self.dynamic += Energy::from_pj(self.intra.pj_per_bit * bits * intra_h as f64);
        self.dynamic += Energy::from_pj(self.inter.pj_per_bit * bits * inter_h as f64);

        let intra_ser = self.intra.serialization(bytes);
        let inter_ser = self.inter.serialization(bytes);

        // Source injection port.
        let mut t =
            Self::reserve(port_channels(&mut self.unit_ports, src.index() * 2), now, intra_ser).0;
        t += self.intra.hop_latency * intra_h;

        // Inter-stack XY route (links precomputed per stack pair).
        if inter_h > 0 {
            let pair = self.topo.stack_of(src) * self.topo.stacks() + self.topo.stack_of(dst);
            self.pair_msgs[pair] += 1;
            self.pair_bytes[pair] += u64::from(bytes);
            self.pair_flits[pair] += u64::from(bytes.div_ceil(FLIT_BYTES));
            for &link in &self.routes[pair] {
                let (start, busy) = Self::reserve(
                    port_channels(&mut self.stack_links, link as usize),
                    t,
                    inter_ser,
                );
                // This reservation plus every channel still pending at `t`.
                let inflight = u64::from(busy) + 1;
                if inflight > self.link_peak_inflight[link as usize] {
                    self.link_peak_inflight[link as usize] = inflight;
                }
                let wait = start.saturating_sub(t);
                if wait > self.link_peak_wait[link as usize] {
                    self.link_peak_wait[link as usize] = wait;
                }
                t = start + self.inter.hop_latency;
                if let Some(f) = &mut self.fault {
                    if f.plan.roll(f.p_msg(bytes)) {
                        // Corrupted flit: the link retransmits the message,
                        // paying one extra hop plus serialization.
                        f.retransmits += 1;
                        self.link_retransmits[link as usize] += 1;
                        self.dynamic += Energy::from_pj(self.inter.pj_per_bit * bits);
                        t += self.inter.hop_latency + inter_ser;
                    }
                }
            }
        } else if let Some(f) = &mut self.fault {
            // Intra-stack-only messages draw one decision for the whole
            // path; a corruption retransmits over the local mesh.
            if f.plan.roll(f.p_msg(bytes)) {
                f.retransmits += 1;
                self.dynamic += Energy::from_pj(self.intra.pj_per_bit * bits);
                t += self.intra.hop_latency + intra_ser;
            }
        }

        // Destination ejection port, then the payload streams out.
        t = Self::reserve(port_channels(&mut self.unit_ports, dst.index() * 2 + 1), t, intra_ser).0;
        t + if inter_h > 0 { inter_ser } else { intra_ser }
    }

    /// Reserves the least-loaded virtual channel: each channel holds the
    /// reservation for `VIRTUAL_CHANNELS ×` the serialization time, so the
    /// resource's aggregate bandwidth is unchanged. Also returns how many
    /// channels were still reserved past `at` (first-min slot selection is
    /// unchanged; the busy count rides on the same scan).
    #[inline]
    fn reserve(channels: &mut [Time], at: Time, hold: Time) -> (Time, u32) {
        let mut slot = 0usize;
        let mut best = Time::MAX;
        let mut busy = 0u32;
        for (i, &c) in channels.iter().enumerate() {
            if c > at {
                busy += 1;
            }
            if c < best {
                best = c;
                slot = i;
            }
        }
        let start = at.max(best);
        channels[slot] = start + hold * VIRTUAL_CHANNELS as u64;
        (start, busy)
    }

    /// Inter-stack hops between two units over the *current* routes. Equals
    /// the Manhattan stack distance while every link is alive (routes are
    /// XY); after a link death it reflects the detour.
    fn inter_hops(&self, src: UnitId, dst: UnitId) -> u64 {
        let s = self.topo.stack_of(src);
        let d = self.topo.stack_of(dst);
        if s == d {
            0
        } else {
            self.routes[s * self.topo.stacks() + d].len() as u64
        }
    }

    /// Marks the directed inter-stack link `src_stack → dst_stack` dead
    /// (or alive again) and recomputes every route around the dead set.
    /// Returns `false` (and changes nothing) when the stacks are not
    /// grid-adjacent. Already-carried traffic keeps its attribution: the
    /// per-pair counters are flushed over the old routes first.
    pub fn set_link_dead(&mut self, src_stack: usize, dst_stack: usize, dead: bool) -> bool {
        let stacks = self.topo.stacks();
        if src_stack >= stacks || dst_stack >= stacks {
            return false;
        }
        let (sx, sy) = self.topo.stack_coords(src_stack);
        let (dx, dy) = self.topo.stack_coords(dst_stack);
        let dir = match (dx as isize - sx as isize, dy as isize - sy as isize) {
            (1, 0) => 0usize,
            (-1, 0) => 1,
            (0, 1) => 2,
            (0, -1) => 3,
            _ => return false,
        };
        let idx = (sy * self.topo.stacks_x + sx) * 4 + dir;
        if self.dead_links[idx] == dead {
            return true;
        }
        self.flush_pair_counters();
        self.dead_links[idx] = dead;
        self.recompute_routes();
        true
    }

    /// Number of currently dead directed links.
    pub fn dead_link_count(&self) -> u64 {
        self.dead_links.iter().filter(|&&d| d).count() as u64
    }

    /// Expands the per-pair counters over the current routes into the
    /// per-link accumulators and zeroes them, so a route change cannot
    /// misattribute earlier traffic.
    fn flush_pair_counters(&mut self) {
        for (pair, msgs) in self.pair_msgs.iter_mut().enumerate() {
            if *msgs == 0 {
                continue;
            }
            for &link in &self.routes[pair] {
                self.link_fwd_acc[link as usize] += *msgs;
                self.link_bytes_acc[link as usize] += self.pair_bytes[pair];
                self.link_flits_acc[link as usize] += self.pair_flits[pair];
            }
            *msgs = 0;
            self.pair_bytes[pair] = 0;
            self.pair_flits[pair] = 0;
        }
    }

    /// Rebuilds every stack-pair route around the dead-link set: plain XY
    /// when everything is alive, otherwise a deterministic BFS (fixed
    /// E/W/N/S neighbor order) over the surviving grid. A pair the dead set
    /// disconnects keeps its XY route — the link is still modelled, so the
    /// traffic pays the escalated (contended) path rather than vanishing.
    fn recompute_routes(&mut self) {
        let stacks = self.topo.stacks();
        if self.dead_links.iter().all(|&d| !d) {
            self.routes = (0..stacks * stacks)
                .map(|i| route_links(&self.topo, i / stacks, i % stacks))
                .collect();
            return;
        }
        for src in 0..stacks {
            // BFS shortest paths from `src` over live links.
            let mut prev: Vec<Option<(usize, u32)>> = vec![None; stacks];
            let mut seen = vec![false; stacks];
            let mut queue = std::collections::VecDeque::new();
            seen[src] = true;
            queue.push_back(src);
            while let Some(s) = queue.pop_front() {
                let (sx, sy) = self.topo.stack_coords(s);
                let neighbors = [
                    (0usize, sx + 1, sy, sx + 1 < self.topo.stacks_x),
                    (1, sx.wrapping_sub(1), sy, sx > 0),
                    (2, sx, sy + 1, sy + 1 < self.topo.stacks_y),
                    (3, sx, sy.wrapping_sub(1), sy > 0),
                ];
                for (dir, nx, ny, on_grid) in neighbors {
                    if !on_grid {
                        continue;
                    }
                    let link = ((sy * self.topo.stacks_x + sx) * 4 + dir) as u32;
                    if self.dead_links[link as usize] {
                        continue;
                    }
                    let n = ny * self.topo.stacks_x + nx;
                    if !seen[n] {
                        seen[n] = true;
                        prev[n] = Some((s, link));
                        queue.push_back(n);
                    }
                }
            }
            for (dst, &reached) in seen.iter().enumerate() {
                if dst == src {
                    continue;
                }
                let pair = src * stacks + dst;
                if !reached {
                    self.routes[pair] = route_links(&self.topo, src, dst);
                    continue;
                }
                let mut links = Vec::new();
                let mut cur = dst;
                while let Some((p, link)) = prev[cur] {
                    links.push(link);
                    cur = p;
                }
                links.reverse();
                self.routes[pair] = links;
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Per-directed-link telemetry, indexed `stack × 4 + dir`
    /// (0=E, 1=W, 2=N, 3=S). Forwarded/byte/flit counts and busy time are
    /// expanded exactly from the per-stack-pair counters over the static
    /// routes.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        let mut out = vec![LinkStats::default(); self.topo.stacks() * 4];
        // Traffic carried before the last reroute, flushed over its
        // then-current routes.
        for (i, ls) in out.iter_mut().enumerate() {
            ls.forwarded.add(self.link_fwd_acc[i]);
            ls.bytes.add(self.link_bytes_acc[i]);
            ls.flits.add(self.link_flits_acc[i]);
        }
        for (pair, &msgs) in self.pair_msgs.iter().enumerate() {
            if msgs == 0 {
                continue;
            }
            let bytes = self.pair_bytes[pair];
            let flits = self.pair_flits[pair];
            for &link in &self.routes[pair] {
                out[link as usize].forwarded.add(msgs);
                out[link as usize].bytes.add(bytes);
                out[link as usize].flits.add(flits);
            }
        }
        for ls in out.iter_mut() {
            ls.busy = Time::from_ns_f64(ls.bytes.get() as f64 / self.inter.bytes_per_ns);
        }
        for (ls, &w) in out.iter_mut().zip(&self.link_peak_wait) {
            ls.peak_wait = w;
        }
        for (ls, &p) in out.iter_mut().zip(&self.link_peak_inflight) {
            ls.peak_inflight = p;
        }
        for (ls, &r) in out.iter_mut().zip(&self.link_retransmits) {
            ls.retransmits.add(r);
        }
        out
    }

    /// Destination stack of directed link `idx` (`stack × 4 + dir`). Only
    /// meaningful for links that carried traffic — XY routes never leave the
    /// grid, so a traffic-bearing link always has an on-grid neighbor.
    fn link_dst_stack(&self, idx: usize) -> usize {
        let (sx, sy) = self.topo.stack_coords(idx / 4);
        let (dx, dy) = match idx % 4 {
            0 => (sx + 1, sy),
            1 => (sx - 1, sy),
            2 => (sx, sy + 1),
            _ => (sx, sy - 1),
        };
        dy * self.topo.stacks_x + dx
    }

    /// Publishes aggregate and per-directed-link stats under `scope`
    /// (`…​.messages`, `…​.link.s00-s01.flits`, …). Links are named by their
    /// directed `source-destination` stack pair; idle links are omitted.
    /// Traffic is a deterministic function of the run, so the dump stays
    /// reproducible.
    pub fn register_stats(&self, scope: &mut StatScope<'_>) {
        scope.count("messages", self.stats.messages.get());
        scope.count("bytes", self.stats.bytes.get());
        scope.count("intra_hops", self.stats.intra_hops.get());
        scope.count("inter_hops", self.stats.inter_hops.get());
        scope.gauge("dynamic_pj", self.dynamic.as_pj());
        for (i, ls) in self.link_stats().iter().enumerate() {
            if ls.forwarded.get() == 0 {
                continue;
            }
            let mut link =
                scope.scope(&format!("link.s{:02}-s{:02}", i / 4, self.link_dst_stack(i)));
            link.count("forwarded", ls.forwarded.get());
            link.count("flits", ls.flits.get());
            link.count("bytes", ls.bytes.get());
            link.count("busy_ps", ls.busy.as_ps());
            link.count("peak_wait_ps", ls.peak_wait.as_ps());
            link.count("peak_inflight", ls.peak_inflight);
            if ls.retransmits.get() > 0 {
                link.count("retransmits", ls.retransmits.get());
            }
        }
    }

    /// Publishes aggregate fault counters under `scope` (no-op without a
    /// fault model, so disabled runs keep their registry dumps
    /// byte-identical).
    pub fn register_fault_stats(&self, scope: &mut StatScope<'_>) {
        if let Some(f) = &self.fault {
            scope.count("retransmits", f.retransmits);
            scope.count("rolls", f.plan.rolls());
        }
    }

    /// Dynamic link energy consumed so far.
    pub fn dynamic_energy(&self) -> Energy {
        self.dynamic
    }

    /// Clears link reservations (statistics are preserved).
    pub fn reset_state(&mut self) {
        self.unit_ports.fill(Time::ZERO);
        self.stack_links.fill(Time::ZERO);
    }
}

/// The `VIRTUAL_CHANNELS`-wide slice of resource `idx`.
#[inline]
fn port_channels(store: &mut [Time], idx: usize) -> &mut [Time] {
    &mut store[idx * VIRTUAL_CHANNELS..(idx + 1) * VIRTUAL_CHANNELS]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::IntraKind;

    fn mesh_net() -> Network {
        Network::new(
            Topology::paper_default(IntraKind::Mesh),
            LinkParams::intra_stack(),
            LinkParams::inter_stack(),
        )
    }

    #[test]
    fn local_send_is_free() {
        let mut n = mesh_net();
        assert_eq!(n.send(UnitId(5), UnitId(5), 64, Time::from_ns(7)), Time::from_ns(7));
        assert_eq!(n.stats().messages.get(), 0);
    }

    #[test]
    fn same_stack_latency_matches_base() {
        let mut n = mesh_net();
        // local 0 -> local 1: one intra hop.
        let arrival = n.send(UnitId(0), UnitId(1), 64, Time::ZERO);
        assert_eq!(arrival, n.base_latency(UnitId(0), UnitId(1), 64));
        // 1.5 ns hop + 2 ns serialization of 64 B at 32 B/ns.
        assert_eq!(arrival.as_ps(), 1_500 + 2_000);
    }

    #[test]
    fn cross_stack_includes_inter_hops() {
        let mut n = mesh_net();
        // Stack 0 -> stack 1, both at port units (local 0): 1 inter hop.
        let arrival = n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        // 10 ns hop + 2 ns inter serialization; no intra hops (both at ports).
        assert_eq!(arrival.as_ps(), 10_000 + 2_000);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut n = mesh_net();
        // Fill every virtual channel of the shared inter-stack link with
        // 4 kB messages, then one more must queue behind serialization.
        let first = n.send(UnitId(0), UnitId(16), 4096, Time::ZERO);
        let mut last = first;
        for _ in 0..40 {
            last = n.send(UnitId(0), UnitId(16), 4096, Time::ZERO);
        }
        assert!(last > first);
        // 41 × 4 kB at 32 B/ns aggregate needs ≥ 5 µs of link time; the last
        // arrival reflects that queueing.
        assert!(last - first >= Time::from_ns(2000), "got {}", last - first);
    }

    #[test]
    fn future_reservation_does_not_block_idle_window() {
        let mut n = mesh_net();
        // A message scheduled far in the future must not delay an
        // earlier-issued message on the same ports.
        let _late = n.send(UnitId(0), UnitId(16), 64, Time::from_us(10));
        let early = n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        assert!(early < Time::from_us(1), "early message queued behind future one: {early}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut n = mesh_net();
        let a = n.send(UnitId(0), UnitId(1), 64, Time::ZERO);
        let b = n.send(UnitId(2), UnitId(3), 64, Time::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn energy_scales_with_hops_and_bytes() {
        let mut n = mesh_net();
        n.send(UnitId(0), UnitId(1), 64, Time::ZERO);
        let one_hop = n.dynamic_energy();
        // 64 B over one intra hop at 0.4 pJ/bit.
        assert!((one_hop.as_pj() - 64.0 * 8.0 * 0.4).abs() < 1e-9);
        n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        let with_inter = n.dynamic_energy() - one_hop;
        // Inter hop at 4 pJ/bit dominates.
        assert!(with_inter.as_pj() > 64.0 * 8.0 * 4.0 - 1e-9);
    }

    #[test]
    fn base_latency_monotonic_in_distance() {
        let n = mesh_net();
        let near = n.base_latency(UnitId(0), UnitId(1), 64);
        let far = n.base_latency(UnitId(0), UnitId(127), 64);
        assert!(far > near);
    }

    #[test]
    fn stats_count_hops() {
        let mut n = mesh_net();
        n.send(UnitId(0), UnitId(17), 64, Time::ZERO);
        // src local 0 -> port 0 hops; inter 1 hop; dst local 1: 1 intra hop.
        assert_eq!(n.stats().inter_hops.get(), 1);
        assert_eq!(n.stats().intra_hops.get(), 1);
        assert_eq!(n.stats().messages.get(), 1);
        assert_eq!(n.stats().bytes.get(), 64);
    }

    #[test]
    fn per_link_stats_track_forwarding() {
        let mut n = mesh_net();
        // Stack 0 -> stack 1 crosses stack 0's east link (index 0).
        n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        let east = n.link_stats()[0];
        assert_eq!(east.forwarded.get(), 2);
        assert_eq!(east.bytes.get(), 128);
        // 64 B messages are 4 flits each at 16 B/flit.
        assert_eq!(east.flits.get(), 8);
        // 128 B at 32 B/ns keeps the link busy 4 ns.
        assert_eq!(east.busy, Time::from_ns(4));
        assert!(east.peak_inflight >= 1);
        assert!(n.link_stats().iter().skip(1).all(|l| l.forwarded.get() == 0));

        let mut reg = ndpx_sim::telemetry::StatRegistry::new();
        n.register_stats(&mut reg.scope("noc"));
        let json = reg.to_json();
        assert!(json.contains("\"noc.link.s00-s01.forwarded\": 2"));
        assert!(json.contains("\"noc.link.s00-s01.flits\": 8"));
        assert!(json.contains("\"noc.link.s00-s01.busy_ps\": 4000"));
        assert!(json.contains("\"noc.link.s00-s01.peak_inflight\": "));
        assert!(!json.contains("s01-s00"), "idle links are omitted");
    }

    #[test]
    fn peak_inflight_counts_overlapping_reservations() {
        let mut n = mesh_net();
        // Saturate one inter-stack link with big simultaneous messages: the
        // peak must exceed one reservation and never exceed the channel
        // count.
        for _ in 0..40 {
            n.send(UnitId(0), UnitId(16), 4096, Time::ZERO);
        }
        let east = n.link_stats()[0];
        assert!(east.peak_inflight > 1, "got {}", east.peak_inflight);
        assert!(east.peak_inflight <= VIRTUAL_CHANNELS as u64);
        // A quiet link that saw one message at an idle instant records 1.
        let mut q = mesh_net();
        q.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        assert_eq!(q.link_stats()[0].peak_inflight, 1);
    }

    fn faulty_net(fer: f64) -> Network {
        use ndpx_sim::fault::{domain, FaultPlan};
        let mut n = mesh_net();
        n.set_fault(Some(NocFault::new(FaultPlan::derive(3, domain::NOC, 0), fer)));
        n
    }

    #[test]
    fn zero_fer_changes_no_timing() {
        let mut ideal = mesh_net();
        let mut f = faulty_net(0.0);
        for i in 0..64u64 {
            let (s, d) = (UnitId((i % 16) as usize), UnitId((i % 128) as usize));
            let t = Time::from_ns(i * 5);
            assert_eq!(ideal.send(s, d, 64, t), f.send(s, d, 64, t));
        }
        let nf = f.fault().expect("installed");
        assert_eq!(nf.retransmits(), 0);
        assert!(nf.rolls() > 0, "decisions must still be drawn");
    }

    #[test]
    fn corruption_retransmits_and_counts_per_link() {
        let mut ideal = mesh_net();
        let mut f = faulty_net(1.0); // every traversal corrupts once
        let a = ideal.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        let b = f.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        // One inter link: exactly one extra hop + serialization.
        let inter = LinkParams::inter_stack();
        assert_eq!(b - a, inter.hop_latency + inter.serialization(64));
        assert_eq!(f.fault().expect("installed").retransmits(), 1);
        let east = f.link_stats()[0];
        assert_eq!(east.retransmits.get(), 1);

        let mut reg = ndpx_sim::telemetry::StatRegistry::new();
        f.register_stats(&mut reg.scope("noc"));
        f.register_fault_stats(&mut reg.scope("fault.noc"));
        let json = reg.to_json();
        assert!(json.contains("\"noc.link.s00-s01.retransmits\": 1"));
        assert!(json.contains("\"fault.noc.retransmits\": 1"));
    }

    #[test]
    fn intra_only_corruption_hits_aggregate_counter() {
        let mut ideal = mesh_net();
        let mut f = faulty_net(1.0);
        let a = ideal.send(UnitId(0), UnitId(1), 64, Time::ZERO);
        let b = f.send(UnitId(0), UnitId(1), 64, Time::ZERO);
        let intra = LinkParams::intra_stack();
        assert_eq!(b - a, intra.hop_latency + intra.serialization(64));
        assert_eq!(f.fault().expect("installed").retransmits(), 1);
        assert!(f.link_stats().iter().all(|l| l.retransmits.get() == 0));
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let mut f = faulty_net(0.05);
            for i in 0..500u64 {
                f.send(
                    UnitId((i % 16) as usize),
                    UnitId(((i * 7) % 128) as usize),
                    256,
                    Time::ZERO,
                );
            }
            let nf = f.fault().expect("installed");
            (nf.retransmits(), nf.rolls())
        };
        assert_eq!(run(), run());
        let (retransmits, rolls) = run();
        assert!(retransmits > 0);
        assert!(rolls >= 500);
    }

    #[test]
    fn dead_link_reroutes_and_restores() {
        let mut n = mesh_net(); // 4×2 stack grid
        let inter = LinkParams::inter_stack();
        // Healthy: stack 0 → 1 crosses the east link (index 0), one hop.
        assert_eq!(n.send(UnitId(0), UnitId(16), 64, Time::ZERO).as_ps(), 12_000);
        assert!(n.set_link_dead(0, 1, true));
        assert_eq!(n.dead_link_count(), 1);
        // The detour goes (0,0)→(0,1)→(1,1)→(1,0): three hops.
        let detour = n.base_latency(UnitId(0), UnitId(16), 64);
        assert_eq!(detour, inter.hop_latency * 3 + inter.serialization(64));
        assert_eq!(
            n.send(UnitId(0), UnitId(16), 64, Time::from_us(50)),
            Time::from_us(50) + detour
        );
        // Pre-reroute traffic keeps its attribution to the old east link;
        // the new message rides the detour's first link (stack 0 north).
        let stats = n.link_stats();
        assert_eq!(stats[0].forwarded.get(), 1, "old route's traffic stays put");
        assert_eq!(stats[2].forwarded.get(), 1, "detour traffic lands on the north link");
        // Restore: XY routing returns and the dead set empties.
        assert!(n.set_link_dead(0, 1, false));
        assert_eq!(n.dead_link_count(), 0);
        assert_eq!(n.base_latency(UnitId(0), UnitId(16), 64).as_ps(), 12_000);
        // Flushed attribution survives the second reroute too.
        let stats = n.link_stats();
        assert_eq!(stats[0].forwarded.get(), 1);
        assert_eq!(stats[2].forwarded.get(), 1);
    }

    #[test]
    fn set_link_dead_rejects_non_adjacent_stacks() {
        let mut n = mesh_net();
        assert!(!n.set_link_dead(0, 2, true), "two hops apart");
        assert!(!n.set_link_dead(0, 0, true), "self loop");
        assert!(!n.set_link_dead(0, 99, true), "out of range");
        assert_eq!(n.dead_link_count(), 0);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut n = mesh_net();
        n.send(UnitId(0), UnitId(16), 4096, Time::ZERO);
        n.reset_state();
        let again = n.send(UnitId(0), UnitId(16), 64, Time::ZERO);
        assert_eq!(again, n.base_latency(UnitId(0), UnitId(16), 64));
    }
}
