//! Property suite: the precomputed [`DistanceTable`] must agree with the
//! coordinate-walking hop derivations for **every** unit pair, at every
//! geometry the figure runs use (test, small, paper) and both intra-stack
//! fabrics. The table is what the simulation hot path reads; the derivation
//! is the specification.

use ndpx_noc::topology::{DistanceTable, IntraKind, Topology, UnitId};

/// The geometries exercised by the scale profiles: the test profile's
/// 2×2 stacks of 2×2 units, a mid-size asymmetric mesh (catches x/y
/// transposition bugs a square mesh would hide), and the paper's 4×2
/// stacks of 4×4 units.
fn geometries(intra: IntraKind) -> Vec<(&'static str, Topology)> {
    vec![
        ("test", Topology { stacks_x: 2, stacks_y: 2, units_x: 2, units_y: 2, intra }),
        ("small", Topology { stacks_x: 3, stacks_y: 2, units_x: 2, units_y: 3, intra }),
        ("paper", Topology::paper_default(intra)),
    ]
}

#[test]
fn distance_table_matches_derivation_at_all_geometries() {
    for intra in [IntraKind::Mesh, IntraKind::Crossbar] {
        for (name, topo) in geometries(intra) {
            topo.validate().expect("geometry is well-formed");
            let table = DistanceTable::new(&topo);
            assert_eq!(table.units(), topo.units(), "{name}/{intra:?}");
            for a in 0..topo.units() {
                for b in 0..topo.units() {
                    let (a, b) = (UnitId(a), UnitId(b));
                    assert_eq!(
                        table.intra_hops(a, b),
                        topo.intra_hops(a, b),
                        "{name}/{intra:?}: intra hops for {a:?} -> {b:?}"
                    );
                    assert_eq!(
                        table.inter_hops(a, b),
                        topo.inter_hops(a, b),
                        "{name}/{intra:?}: inter hops for {a:?} -> {b:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn distance_table_is_symmetric_like_the_derivation() {
    // Manhattan distances are symmetric; the table must preserve that.
    for intra in [IntraKind::Mesh, IntraKind::Crossbar] {
        for (name, topo) in geometries(intra) {
            let table = DistanceTable::new(&topo);
            for a in 0..topo.units() {
                for b in a..topo.units() {
                    let (ua, ub) = (UnitId(a), UnitId(b));
                    assert_eq!(
                        table.intra_hops(ua, ub),
                        table.intra_hops(ub, ua),
                        "{name}/{intra:?}: intra symmetry {a} <-> {b}"
                    );
                    assert_eq!(
                        table.inter_hops(ua, ub),
                        table.inter_hops(ub, ua),
                        "{name}/{intra:?}: inter symmetry {a} <-> {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn same_unit_has_zero_distance() {
    for intra in [IntraKind::Mesh, IntraKind::Crossbar] {
        for (_, topo) in geometries(intra) {
            let table = DistanceTable::new(&topo);
            for u in 0..topo.units() {
                assert_eq!(table.intra_hops(UnitId(u), UnitId(u)), 0);
                assert_eq!(table.inter_hops(UnitId(u), UnitId(u)), 0);
            }
        }
    }
}
