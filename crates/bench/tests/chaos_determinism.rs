//! Determinism and recovery gates for the chaos schedule layer (ISSUE 10).
//!
//! Two properties are pinned at the bench level, above the core unit tests:
//!
//! 1. **Chaos-off fidelity** — with an explicitly disabled
//!    [`ChaosConfig`], the committed `BENCH_PERF.json` digests reproduce
//!    exactly and the registry carries no `chaos.` scope: the layer is
//!    free when unused.
//! 2. **Recovery under escalation** — a mid-run stack loss across every
//!    policy completes without deadlock, leaves zero streams resident on
//!    the dead stack, publishes per-event recovery records, and replays
//!    byte-identically at one and at four worker threads.

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::{cell_key, gauge_ops};
use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_sim::chaos::ChaosConfig;
use ndpx_sim::telemetry::StatValue;

fn count(r: &RunReport, path: &str) -> u64 {
    r.registry.get(path).and_then(StatValue::as_count).unwrap_or(0)
}

#[test]
fn chaos_off_reproduces_committed_perf_digests() {
    let committed = committed_digests();
    assert!(!committed.is_empty(), "BENCH_PERF.json must hold cell digests");
    // One workload row covers every policy without re-running the full
    // 36-cell matrix in a debug build. The disabled config is forced
    // explicitly so a stray NDPX_CHAOS in the test environment cannot
    // reach the cells.
    let ops = gauge_ops(BenchScale::Test);
    let specs: Vec<RunSpec> = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            RunSpec {
                ops_per_core: ops,
                ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test)
            }
            .with_tweak(|cfg| cfg.chaos = ChaosConfig::disabled())
        })
        .collect();
    let reports = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    for (spec, report) in specs.iter().zip(&reports) {
        let key = cell_key(spec);
        let baseline = committed
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("BENCH_PERF.json has no cell {key}"))
            .1;
        assert_eq!(
            report_digest(report),
            baseline,
            "{key}: with {} unset the chaos-off path must be bit-identical to main",
            ndpx_sim::knobs::CHAOS.name
        );
        assert!(
            !report.registry.iter().any(|(path, _)| path.starts_with("chaos.")),
            "{key}: chaos-off registries must omit the chaos scope"
        );
        assert!(
            !report.registry.iter().any(|(path, _)| path.starts_with("fault.recovery.")),
            "{key}: chaos-off registries must omit recovery records"
        );
    }
}

#[test]
fn stack_loss_recovers_and_is_thread_invariant() {
    // Stack 1 dies permanently at 20us, mid-run for a 20k-op cell at test
    // scale. Every policy must drain its dead-stack streams and finish.
    let specs: Vec<RunSpec> = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            RunSpec {
                ops_per_core: 20_000,
                ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test)
            }
            .with_tweak(|cfg| {
                cfg.chaos =
                    ChaosConfig::parse(Some("stack-down@20us:1"), None).expect("valid chaos spec")
            })
        })
        .collect();
    let serial = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &specs);
    let pooled = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    for ((spec, a), b) in specs.iter().zip(&serial).zip(&pooled) {
        let key = cell_key(spec);
        assert!(a.sim_time.as_ps() > 0, "{key}: run must complete under stack loss");
        assert_eq!(count(a, "chaos.applied"), 1, "{key}: the scheduled loss must fire");
        assert!(
            count(a, "chaos.forced_reconfigs") >= 1,
            "{key}: the loss must force a re-placement"
        );
        assert_eq!(
            count(a, "chaos.dead_resident_streams"),
            0,
            "{key}: no stream may end the run resident on the dead stack"
        );
        assert!(
            a.registry.get("fault.recovery.e00.ttr_ps").is_some(),
            "{key}: the applied event must publish a recovery record"
        );
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "{key}: the chaos run must replay identically at 4 threads"
        );
        assert_eq!(
            report_digest(a),
            report_digest(b),
            "{key}: chaos digests must be thread-count invariant"
        );
    }
}

/// Reads the `("cell", digest)` pairs out of the committed perf report
/// (same line-oriented scan `perf_gauge --check` uses).
fn committed_digests() -> Vec<(String, u64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PERF.json");
    let json = std::fs::read_to_string(path).expect("committed BENCH_PERF.json");
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(cell) = extract_str(line, "\"cell\": \"") else { continue };
        let Some(digest) = extract_str(line, "\"digest\": \"") else { continue };
        if let Ok(d) = u64::from_str_radix(digest, 16) {
            out.push((cell.to_string(), d));
        }
    }
    out
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}
