//! Determinism and validity gates for the telemetry layer (ISSUE 3).
//!
//! * Registry dumps must be byte-identical at any `NDPX_THREADS` width —
//!   they are built from single-threaded simulation state, so the pool may
//!   only move wall clock, never a stat.
//! * Run-manifest simulated fields (sim time, ops, events, queue depth)
//!   must likewise be thread-count-invariant.
//! * A trace written by a real simulation run must parse against the
//!   Chrome trace-event schema.
//!
//! Pools and trace sinks are configured through their APIs, never the
//! process environment (parallel tests race on env vars).

use ndpx_bench::gauge::{cell_key, gauge_specs};
use ndpx_bench::manifest::{registry_dump_json, RunManifest};
use ndpx_bench::pool::{CellPool, CellTask};
use ndpx_bench::runner::{run_ndp_cached, BenchScale, RunSpec};
use ndpx_bench::{CellResult, TraceCache};
use ndpx_core::stats::RunReport;
use ndpx_core::system::NdpSystem;
use ndpx_sim::telemetry::{validate_chrome_trace, TraceConfig};
use ndpx_workloads::trace::ScaleParams;

/// A reduced matrix — every policy once, both memory families — keeps the
/// debug-build runtime in seconds while still exercising each registry
/// shape.
fn small_matrix() -> Vec<RunSpec> {
    gauge_specs(BenchScale::Test, 500).into_iter().step_by(3).collect()
}

fn run_matrix(pool: CellPool, specs: &[RunSpec]) -> Vec<CellResult<RunReport>> {
    let cache = TraceCache::new();
    let cache = &cache;
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| Box::new(move || run_ndp_cached(spec, cache)) as CellTask<'_, RunReport>)
        .collect();
    pool.run(tasks)
}

#[test]
fn registry_dump_is_byte_identical_across_thread_counts() {
    let specs = small_matrix();
    let names: Vec<String> = specs.iter().map(cell_key).collect();
    let serial = run_matrix(CellPool::with_threads(1), &specs);
    let pooled = run_matrix(CellPool::with_threads(4), &specs);

    let serial_reports: Vec<&RunReport> = serial.iter().map(|r| &r.value).collect();
    let pooled_reports: Vec<&RunReport> = pooled.iter().map(|r| &r.value).collect();
    let dump1 = registry_dump_json("telemetry_test", &names, &serial_reports);
    let dump4 = registry_dump_json("telemetry_test", &names, &pooled_reports);
    assert!(!dump1.is_empty() && dump1.contains("ndpx-registry-dump-v1"));
    assert_eq!(dump1, dump4, "registry dumps must not depend on pool width");

    // Per-cell registry JSON is also individually deterministic.
    for (name, (a, b)) in names.iter().zip(serial_reports.iter().zip(&pooled_reports)) {
        assert_eq!(a.registry.to_json(), b.registry.to_json(), "{name}");
        assert!(!a.registry.is_empty(), "{name}: registry must have stats");
    }
}

#[test]
fn manifest_simulated_fields_are_thread_count_invariant() {
    let specs = small_matrix();
    let names: Vec<String> = specs.iter().map(cell_key).collect();
    let serial = run_matrix(CellPool::with_threads(1), &specs);
    let pooled = run_matrix(CellPool::with_threads(4), &specs);
    let m1 = RunManifest::collect("t", 1, &names, &serial, None);
    let m4 = RunManifest::collect("t", 4, &names, &pooled, None);
    for (a, b) in m1.cells.iter().zip(&m4.cells) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.sim_us, b.sim_us, "{}: simulated time moved", a.name);
        assert_eq!(a.ops, b.ops, "{}", a.name);
        assert_eq!(a.engine_events, b.engine_events, "{}", a.name);
        assert_eq!(a.peak_queue_depth, b.peak_queue_depth, "{}", a.name);
        assert!(a.engine_events >= a.ops, "{}: every op is an engine event", a.name);
        assert!(a.peak_queue_depth > 0, "{}", a.name);
    }
    assert_eq!(m1.events_total(), m4.events_total());
    assert_eq!(m1.peak_queue_depth(), m4.peak_queue_depth());
}

#[test]
fn emitted_trace_is_valid_chrome_trace_json() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("ndpx_trace_test");
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let requested = dir.join("trace.json");

    let cfg = ndpx_core::SystemConfig::test(ndpx_core::config::PolicyKind::NdpExt);
    let params = ScaleParams { cores: cfg.units(), footprint: 4 << 20, seed: 7 };
    let wl = ndpx_workloads::build("pr", &params).unwrap().unwrap();
    let mut sys = NdpSystem::new(cfg, wl).unwrap();
    sys.set_trace(Some(TraceConfig::to_path(&requested)));
    let report = sys.run(2000);
    assert!(report.ops > 0);

    // The sink sequences its output path for parallel-cell uniqueness, so
    // scan the directory instead of assuming the requested name.
    let written: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read trace dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("trace")))
        .collect();
    assert!(!written.is_empty(), "simulation with tracing enabled must write a trace file");
    let json = std::fs::read_to_string(&written[0]).expect("read trace");
    let events = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("trace must satisfy the Chrome trace-event schema: {e}"));
    assert!(events > 1, "trace should contain real events, got {events}");
    for p in written {
        let _ = std::fs::remove_file(p);
    }
}
