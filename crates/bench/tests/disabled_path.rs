//! The telemetry-off contract (PR 8 satellite): with no timeline, profiler,
//! or trace configured, a run is indistinguishable from the seed — the
//! committed `BENCH_PERF.json` digests reproduce exactly and the registry
//! carries no `slo.*` / `profile.*` keys. Turning the full telemetry stack
//! ON must not move a single digest either: sampling reads simulated state,
//! it never schedules into it.

use std::path::Path;
use std::time::Instant;

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::{cell_key, gauge_ops};
use ndpx_bench::pool::{CellPool, CellTask};
use ndpx_bench::runner::{run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_core::system::NdpSystem;
use ndpx_sim::telemetry::TimelineConfig;
use ndpx_sim::Time;

/// One workload per memory family, every policy (12 cells) — the same
/// slice `fault_determinism` pins against the committed digests.
fn specs() -> Vec<RunSpec> {
    let ops = gauge_ops(BenchScale::Test);
    [(MemKind::Hbm, "pr"), (MemKind::Hmc, "mv")]
        .iter()
        .flat_map(|&(mem, workload)| {
            PolicyKind::ALL.iter().map(move |&policy| RunSpec {
                ops_per_core: ops,
                ..RunSpec::new(mem, policy, workload, BenchScale::Test)
            })
        })
        .collect()
}

/// Reads the `("cell", digest)` pairs out of the committed perf report
/// (same line-oriented scan `perf_gauge --check` uses, v1–v6).
fn committed_digests() -> Vec<(String, u64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PERF.json");
    let json = std::fs::read_to_string(path).expect("committed BENCH_PERF.json");
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(cell) = extract_str(line, "\"cell\": \"") else { continue };
        let Some(digest) = extract_str(line, "\"digest\": \"") else { continue };
        if let Ok(d) = u64::from_str_radix(digest, 16) {
            out.push((cell.to_string(), d));
        }
    }
    out
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

#[test]
fn telemetry_off_matches_committed_digests_and_omits_scopes() {
    let committed = committed_digests();
    assert!(!committed.is_empty(), "BENCH_PERF.json must hold cell digests");
    let specs = specs();
    let reports = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    for (spec, report) in specs.iter().zip(&reports) {
        let key = cell_key(spec);
        let baseline = committed
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("BENCH_PERF.json has no cell {key}"))
            .1;
        assert_eq!(
            report_digest(report),
            baseline,
            "{key}: the telemetry-off path must be bit-identical to the committed baseline"
        );
        for (path, _) in report.registry.iter() {
            assert!(
                !path.starts_with("slo.") && !path.starts_with("profile."),
                "{key}: telemetry-off registries must omit {path}"
            );
        }
    }
}

#[test]
fn full_telemetry_does_not_move_a_digest() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("disabled_path_tl");
    std::fs::create_dir_all(&dir).expect("create timeline dir");
    let specs = specs();
    let cache = TraceCache::new();
    let cache = &cache;

    let t_off = Instant::now();
    let off = run_many_with(CellPool::with_threads(1), cache, &specs);
    let wall_off = t_off.elapsed();

    let t_on = Instant::now();
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| {
            let dir = dir.clone();
            Box::new(move || {
                let cfg = spec.scale.system(spec.mem, spec.policy);
                let params = spec.scale.workload(&cfg);
                let wl = cache.workload(spec.workload, &params, spec.ops_per_core);
                let mut sys = NdpSystem::new(cfg, wl).expect("static bench config");
                let mut tl = TimelineConfig::to_path(dir.join("timeline.json"));
                tl.window = Time::from_ns(2_000);
                sys.set_timeline(Some(tl));
                sys.set_profile(true);
                sys.run(spec.ops_per_core)
            }) as CellTask<'_, RunReport>
        })
        .collect();
    let on: Vec<RunReport> =
        CellPool::with_threads(1).run(tasks).into_iter().map(|r| r.value).collect();
    let wall_on = t_on.elapsed();

    for ((spec, a), b) in specs.iter().zip(&off).zip(&on) {
        let key = cell_key(spec);
        assert_eq!(
            report_digest(a),
            report_digest(b),
            "{key}: timelines + profiler enabled must not move the digest"
        );
        assert_eq!(a.sim_time, b.sim_time, "{key}: simulated time moved");
        assert!(b.registry.get("profile.run").is_some(), "{key}: profiler scope recorded");
    }

    // Overhead stays modest. The 2% budget is a release-build target; a
    // debug build under a loaded CI runner needs a lenient ceiling — this
    // gate exists to catch algorithmic blowups (per-op sampling), not to
    // benchmark.
    let ratio = wall_on.as_secs_f64() / wall_off.as_secs_f64().max(1e-9);
    eprintln!("telemetry-on / telemetry-off wall ratio: {ratio:.3}");
    assert!(ratio < 3.0, "telemetry overhead blew up: {ratio:.2}x");

    let _ = std::fs::remove_dir_all(&dir);
}
