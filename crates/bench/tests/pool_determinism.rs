//! Determinism gate for the parallel orchestrator (ISSUE satellite 2).
//!
//! Runs the perf-gauge 36-cell matrix at one and at four worker threads —
//! and with the trace cache both off and shared — and asserts every
//! per-cell report digest is identical. Output order is canonical by
//! construction ([`CellPool::run`] returns submission order), so digest
//! equality here means `BENCH_PERF.json` and every figure table are
//! byte-identical at any `NDPX_THREADS` setting.

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::{cell_key, gauge_specs};
use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{run_many_with, BenchScale};
use ndpx_bench::TraceCache;

/// Debug builds are slow; a reduced op count still exercises every policy's
/// steady state (reconfigure epochs included at test scale).
const OPS_PER_CORE: u64 = 750;

fn digests(pool: CellPool, cache: &TraceCache) -> Vec<(String, u64)> {
    let specs = gauge_specs(BenchScale::Test, OPS_PER_CORE);
    let reports = run_many_with(pool, cache, &specs);
    specs.iter().zip(&reports).map(|(s, r)| (cell_key(s), report_digest(r))).collect()
}

#[test]
fn all_36_digests_identical_across_thread_counts_and_caching() {
    let serial_uncached = digests(CellPool::with_threads(1), &TraceCache::disabled());
    assert_eq!(serial_uncached.len(), 36);

    let serial_cached = digests(CellPool::with_threads(1), &TraceCache::new());
    let shared = TraceCache::new();
    let pooled = digests(CellPool::with_threads(4), &shared);

    for (((key, base), (_, cached)), (_, par)) in
        serial_uncached.iter().zip(&serial_cached).zip(&pooled)
    {
        assert_eq!(base, cached, "{key}: trace replay changed the result");
        assert_eq!(base, par, "{key}: 4-thread execution changed the result");
    }
    // The shared cache must have deduplicated generation: 6 unique
    // (workload × mem-geometry) keys serve all 36 cells.
    let stats = shared.stats();
    assert!(stats.misses <= 6, "expected ≤6 unique trace keys, got {}", stats.misses);
    assert_eq!(stats.hits + stats.misses, 36);
}
