//! Determinism gates for the fault-injection subsystem (ISSUE satellite 3).
//!
//! Two properties are pinned here:
//!
//! 1. **Thread invariance** — with a fixed `NDPX_FAULT_SEED`, the injection
//!    schedule is a pure function of (seed, domain, instance, decision
//!    index), so report digests *and* full registry dumps are byte-identical
//!    at one and at four worker threads.
//! 2. **Fault-off fidelity** — with the seed unset (the default
//!    [`ndpx_sim::fault::FaultConfig`]), every injector compiles down to the
//!    ideal path: the committed `BENCH_PERF.json` digests reproduce exactly.

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::{cell_key, gauge_ops};
use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_sim::fault::FaultConfig;
use ndpx_sim::telemetry::StatValue;

/// A 6-cell faulty matrix: every policy on HBM/pagerank with an aggressive
/// seeded fault configuration, small enough for debug-build CI.
fn faulty_specs(ops: u64) -> Vec<RunSpec> {
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            RunSpec {
                ops_per_core: ops,
                ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test)
            }
            .with_tweak(|cfg| {
                let mut f = FaultConfig::with_seed(42);
                f.cxl_ber = 1e-7;
                f.mem_ce = 1e-2;
                f.mem_ue = 1e-5;
                f.noc_fer = 1e-5;
                cfg.fault = f;
            })
        })
        .collect()
}

fn count(r: &RunReport, path: &str) -> u64 {
    r.registry.get(path).and_then(StatValue::as_count).unwrap_or(0)
}

#[test]
fn fixed_seed_injection_is_thread_invariant() {
    let specs = faulty_specs(750);
    let serial = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &specs);
    let pooled = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    assert_eq!(serial.len(), 6);
    for ((spec, a), b) in specs.iter().zip(&serial).zip(&pooled) {
        let key = cell_key(spec);
        assert_eq!(
            report_digest(a),
            report_digest(b),
            "{key}: seeded injection must replay identically at 4 threads"
        );
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "{key}: registry dumps (fault counters included) must be byte-identical"
        );
    }
    // The schedule actually drew decisions and injected faults — otherwise
    // the invariance above would be vacuous.
    let rolls: u64 = serial
        .iter()
        .map(|r| {
            count(r, "fault.mem.rolls") + count(r, "fault.cxl.rolls") + count(r, "fault.noc.rolls")
        })
        .sum();
    assert!(rolls > 0, "seeded runs must draw fault decisions");
    let injected: u64 = serial.iter().map(|r| count(r, "fault.mem.ce")).sum();
    assert!(injected > 0, "a 1e-2 CE rate over thousands of reads must inject");
}

#[test]
fn seed_unset_reproduces_committed_perf_digests() {
    let committed = committed_digests();
    assert!(!committed.is_empty(), "BENCH_PERF.json must hold cell digests");
    // One workload per memory family covers both DRAM configs without
    // re-running the full 36-cell matrix in a debug build.
    let ops = gauge_ops(BenchScale::Test);
    let specs: Vec<RunSpec> = [(MemKind::Hbm, "pr"), (MemKind::Hmc, "mv")]
        .iter()
        .flat_map(|&(mem, workload)| {
            PolicyKind::ALL.iter().map(move |&policy| RunSpec {
                ops_per_core: ops,
                ..RunSpec::new(mem, policy, workload, BenchScale::Test)
            })
        })
        .collect();
    let reports = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    for (spec, report) in specs.iter().zip(&reports) {
        let key = cell_key(spec);
        let baseline = committed
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("BENCH_PERF.json has no cell {key}"))
            .1;
        assert_eq!(
            report_digest(report),
            baseline,
            "{key}: with {} unset the fault-off path must be bit-identical to main",
            ndpx_sim::knobs::FAULT_SEED.name
        );
        assert!(
            report.registry.get("fault.mem.rolls").is_none(),
            "{key}: fault-off registries must omit the fault scope"
        );
    }
}

/// Reads the `("cell", digest)` pairs out of the committed perf report
/// (same line-oriented scan `perf_gauge --check` uses).
fn committed_digests() -> Vec<(String, u64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PERF.json");
    let json = std::fs::read_to_string(path).expect("committed BENCH_PERF.json");
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(cell) = extract_str(line, "\"cell\": \"") else { continue };
        let Some(digest) = extract_str(line, "\"digest\": \"") else { continue };
        if let Ok(d) = u64::from_str_radix(digest, 16) {
            out.push((cell.to_string(), d));
        }
    }
    out
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}
