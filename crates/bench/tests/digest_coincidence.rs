//! Pins the expected cross-policy digest coincidences in `BENCH_PERF.json`.
//!
//! At the gauge's "test" scale, runs are shorter than one placement epoch:
//! `core.reconfigs` is zero in every cell, so every policy remains on its
//! warmup placement for the whole run. That collapses the matrix into two
//! behavioral families — the line-grain baselines (Static, Jigsaw,
//! Whirlpool, Nexus) share one warmup interleave and the stream-grain
//! variants (NDPExt-static, NDPExt) share the other — so e.g.
//! `hbm/Static/pr` and `hbm/Jigsaw/pr` legitimately record the same digest.
//! This is a property of the scale, not broken cell wiring: the families
//! always differ from each other, and once the run is long enough for
//! epochs to fire the policies inside a family diverge too.

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::gauge_ops;
use ndpx_bench::runner::{run_ndp, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};

const LINE_GRAIN: [PolicyKind; 4] =
    [PolicyKind::StaticInterleave, PolicyKind::Jigsaw, PolicyKind::Whirlpool, PolicyKind::Nexus];

fn digest_at(policy: PolicyKind, ops: u64) -> (u64, u64) {
    let spec =
        RunSpec { ops_per_core: ops, ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test) };
    let r = run_ndp(&spec);
    (report_digest(&r), r.reconfigs)
}

#[test]
fn line_grain_policies_coincide_at_test_scale() {
    // The exact cells the gauge runs: same scale, same per-core op count.
    let ops = gauge_ops(BenchScale::Test);
    let runs: Vec<(u64, u64)> = LINE_GRAIN.iter().map(|&p| digest_at(p, ops)).collect();
    for (policy, &(_, reconfigs)) in LINE_GRAIN.iter().zip(&runs) {
        assert_eq!(reconfigs, 0, "{policy:?}: test scale must end before the first epoch");
    }
    let first = runs[0].0;
    assert!(
        runs.iter().all(|&(d, _)| d == first),
        "line-grain digests must coincide while no epoch fires: {runs:x?}"
    );
}

#[test]
fn placement_families_always_differ() {
    // Even with zero epochs, stream-grain warmup placement is a different
    // machine than the line-grain interleave — the coincidence never
    // crosses the family boundary.
    let ops = gauge_ops(BenchScale::Test);
    let (line, _) = digest_at(PolicyKind::StaticInterleave, ops);
    let (stream, _) = digest_at(PolicyKind::NdpExt, ops);
    assert_ne!(line, stream, "line-grain and stream-grain cells must never coincide");
}

#[test]
fn policies_diverge_once_epochs_fire() {
    // Long enough for epoch boundaries: the reconfiguring baselines leave
    // the warmup placement and split from Static, proving the gauge's cell
    // wiring applies a distinct policy per cell.
    let ops = 40_000;
    let (static_d, _) = digest_at(PolicyKind::StaticInterleave, ops);
    let (jigsaw_d, jigsaw_rec) = digest_at(PolicyKind::Jigsaw, ops);
    assert!(jigsaw_rec > 0, "expected epoch boundaries at {ops} ops/core");
    assert_ne!(static_d, jigsaw_d, "Jigsaw must diverge from Static once epochs fire");
}
