//! Edge-rate robustness for the fault injectors (ISSUE 10 satellite):
//! every `NDPX_FAULT_*` rate knob is exercised at exactly 0.0 and exactly
//! 1.0. Rate 0.0 must be decision-drawing but inert; rate 1.0 must drive
//! every bounded-escalation path (CRC replay → retrain, UE poison →
//! re-fetch, flit retransmit) without panicking, wedging, or producing
//! non-finite degradation feedback.

use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_sim::fault::FaultConfig;
use ndpx_sim::telemetry::StatValue;

/// Which injector a case drives, so assertions name the right counters.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Knob {
    CxlBer,
    MemCe,
    MemUe,
    NocFer,
}

fn spec_with_rate(knob: Knob, rate: f64) -> RunSpec {
    RunSpec {
        ops_per_core: 750,
        ..RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, "pr", BenchScale::Test)
    }
    .with_tweak(move |cfg| {
        let mut f = FaultConfig::with_seed(42);
        match knob {
            Knob::CxlBer => f.cxl_ber = rate,
            Knob::MemCe => f.mem_ce = rate,
            Knob::MemUe => f.mem_ue = rate,
            Knob::NocFer => f.noc_fer = rate,
        }
        cfg.fault = f;
    })
}

fn count(r: &RunReport, path: &str) -> u64 {
    r.registry.get(path).and_then(StatValue::as_count).unwrap_or(0)
}

const ALL_KNOBS: [Knob; 4] = [Knob::CxlBer, Knob::MemCe, Knob::MemUe, Knob::NocFer];

#[test]
fn zero_rates_draw_decisions_but_inject_nothing() {
    let specs: Vec<RunSpec> = ALL_KNOBS.iter().map(|&k| spec_with_rate(k, 0.0)).collect();
    let reports = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &specs);
    for (knob, r) in ALL_KNOBS.iter().zip(&reports) {
        assert!(r.sim_time.as_ps() > 0, "{knob:?}@0.0 must complete");
        // Seeded injectors are installed, so the fault scope is present and
        // the decision counters advanced — but no fault ever fired.
        let rolls =
            count(r, "fault.mem.rolls") + count(r, "fault.cxl.rolls") + count(r, "fault.noc.rolls");
        assert!(rolls > 0, "{knob:?}@0.0: installed injectors must draw decisions");
        assert_eq!(count(r, "fault.mem.ce"), 0, "{knob:?}@0.0");
        assert_eq!(count(r, "fault.mem.ue"), 0, "{knob:?}@0.0");
        assert_eq!(count(r, "fault.cxl.crc_errors"), 0, "{knob:?}@0.0");
        assert_eq!(count(r, "fault.noc.retransmits"), 0, "{knob:?}@0.0");
        assert_eq!(count(r, "fault.stream.aborts"), 0, "{knob:?}@0.0");
    }
}

#[test]
fn unit_rates_escalate_boundedly() {
    let specs: Vec<RunSpec> = ALL_KNOBS.iter().map(|&k| spec_with_rate(k, 1.0)).collect();
    // `run_many_with` returning at all proves no rate-1.0 escalation loop
    // (CRC replay, retrain, poison storm, retransmit) diverges.
    let reports = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &specs);
    for (knob, r) in ALL_KNOBS.iter().zip(&reports) {
        assert!(r.sim_time.as_ps() > 0, "{knob:?}@1.0 must still make progress");
        match knob {
            Knob::CxlBer => {
                // Every frame corrupts: the replay bound must force
                // retrains instead of spinning on retries forever.
                assert!(count(r, "fault.cxl.crc_errors") > 0, "all frames corrupt");
                assert!(count(r, "fault.cxl.retrains") > 0, "retry bound must trip");
            }
            Knob::MemCe => {
                let reads = count(r, "fault.mem.rolls");
                let ce = count(r, "fault.mem.ce");
                assert!(ce > 0, "every read must take a correctable hit");
                assert!(ce <= reads, "CE count monotone and bounded by decisions");
                assert_eq!(count(r, "fault.mem.ue"), 0, "CE-only runs never see UEs");
                assert_eq!(count(r, "fault.stream.aborts"), 0, "CEs never poison");
            }
            Knob::MemUe => {
                assert!(count(r, "fault.mem.ue") > 0, "every read must poison");
                assert!(count(r, "fault.stream.aborts") > 0, "UEs abort cached copies");
            }
            Knob::NocFer => {
                assert!(count(r, "fault.noc.retransmits") > 0, "every message retransmits");
            }
        }
        // Degradation feedback must stay finite and sane for Algorithm 1
        // even when every decision injects.
        let degradation =
            r.registry.get("cxl.degradation").and_then(StatValue::as_gauge).unwrap_or(1.0);
        assert!(degradation.is_finite() && degradation >= 1.0, "{knob:?}@1.0: {degradation}");
    }
}

#[test]
fn edge_rates_replay_deterministically() {
    // The 1.0 corner exercises escalation paths ordinary rates rarely hit;
    // pin that the worst case is as replayable as the common one.
    let specs: Vec<RunSpec> = ALL_KNOBS.iter().map(|&k| spec_with_rate(k, 1.0)).collect();
    let a = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &specs);
    let b = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &specs);
    for ((knob, x), y) in ALL_KNOBS.iter().zip(&a).zip(&b) {
        assert_eq!(
            x.registry.to_json(),
            y.registry.to_json(),
            "{knob:?}@1.0 must be thread-invariant"
        );
    }
}
