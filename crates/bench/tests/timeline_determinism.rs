//! Determinism gates for the windowed timeline sampler (PR 8 tentpole).
//!
//! Timelines snapshot simulated state at simulated-time boundaries, so
//! their bytes are a pure function of the run: identical at any pool width
//! and under seeded fault injection. (The wheel/heap queue-backend pairing
//! is process-global via `NDPX_QUEUE`, so *that* axis is covered by the CI
//! timeline-invariance job, not here — parallel tests race on env vars.)
//!
//! Timelines and the profiler are configured through their APIs
//! (`set_timeline` / `set_profile`), never the environment, for the same
//! reason.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ndpx_bench::gauge::gauge_specs;
use ndpx_bench::pool::{CellPool, CellTask};
use ndpx_bench::runner::{BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::stats::RunReport;
use ndpx_core::system::NdpSystem;
use ndpx_sim::fault::FaultConfig;
use ndpx_sim::telemetry::TimelineConfig;
use ndpx_sim::Time;

/// Every policy once, both memory families (12 of the 36 cells) — the same
/// reduced matrix the telemetry gates use.
fn small_matrix() -> Vec<RunSpec> {
    gauge_specs(BenchScale::Test, 500).into_iter().step_by(3).collect()
}

/// Runs the matrix on a pool of `threads`, each cell writing its timeline
/// under `dir` and attributing phases, and returns the reports.
fn run_with_timelines(
    threads: usize,
    dir: &Path,
    specs: &[RunSpec],
    fault: bool,
) -> Vec<RunReport> {
    std::fs::create_dir_all(dir).expect("create timeline dir");
    let cache = TraceCache::new();
    let cache = &cache;
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| {
            let dir = dir.to_path_buf();
            Box::new(move || {
                let mut cfg = spec.scale.system(spec.mem, spec.policy);
                if fault {
                    let mut f = FaultConfig::with_seed(42);
                    f.cxl_ber = 1e-7;
                    f.mem_ce = 1e-2;
                    f.mem_ue = 1e-5;
                    f.noc_fer = 1e-5;
                    cfg.fault = f;
                }
                let params = spec.scale.workload(&cfg);
                let wl = cache.workload(spec.workload, &params, spec.ops_per_core);
                let mut sys = NdpSystem::new(cfg, wl).expect("static bench config");
                let mut tl = TimelineConfig::to_path(dir.join("timeline.json"));
                tl.window = Time::from_ns(2_000);
                sys.set_timeline(Some(tl));
                sys.set_profile(true);
                sys.run(spec.ops_per_core)
            }) as CellTask<'_, RunReport>
        })
        .collect();
    CellPool::with_threads(threads).run(tasks).into_iter().map(|r| r.value).collect()
}

/// All timeline files under `dir`, keyed by file name.
fn timeline_files(dir: &Path) -> BTreeMap<String, String> {
    std::fs::read_dir(dir)
        .expect("read timeline dir")
        .filter_map(|e| {
            let path: PathBuf = e.ok()?.path();
            let name = path.file_name()?.to_string_lossy().to_string();
            let body = std::fs::read_to_string(&path).ok()?;
            Some((name, body))
        })
        .collect()
}

fn assert_dirs_identical(d1: &Path, d4: &Path, specs: usize, what: &str) {
    let (f1, f4) = (timeline_files(d1), timeline_files(d4));
    assert_eq!(f1.len(), specs, "{what}: one timeline file per cell");
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "{what}: cell labels must not depend on pool width"
    );
    for (name, body1) in &f1 {
        let body4 = &f4[name];
        assert_eq!(body1, body4, "{what}: {name} must be byte-identical at 1 and 4 threads");
        assert!(body1.contains("ndpx-timeline-v1"), "{name}: schema tag");
        assert!(body1.contains("engine.queue.depth"), "{name}: queue-depth series");
        assert!(body1.contains("slo.epochs"), "{name}: SLO series");
    }
}

#[test]
fn timelines_are_byte_identical_across_thread_counts() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("tl_threads");
    let (d1, d4) = (base.join("t1"), base.join("t4"));
    let specs = small_matrix();
    let r1 = run_with_timelines(1, &d1, &specs, false);
    let r4 = run_with_timelines(4, &d4, &specs, false);
    assert_dirs_identical(&d1, &d4, specs.len(), "fault-off");
    // The profiler's registry view (sim time only, by contract) is equally
    // thread-invariant; wall time stays out of the registry.
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(a.registry.to_json(), b.registry.to_json());
        assert!(a.registry.get("profile.run").is_some(), "profiler scope present");
        assert!(a.registry.get("slo.epochs").is_some(), "SLO scope present");
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn seeded_fault_timelines_are_thread_invariant() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("tl_fault");
    let (d1, d4) = (base.join("t1"), base.join("t4"));
    let specs = small_matrix();
    let _ = run_with_timelines(1, &d1, &specs, true);
    let _ = run_with_timelines(4, &d4, &specs, true);
    assert_dirs_identical(&d1, &d4, specs.len(), "fault-on");
    // Injection actually fired somewhere — otherwise invariance is vacuous.
    let any_faults = timeline_files(&d1).values().any(|body| body.contains("\"fault."));
    assert!(any_faults, "seeded runs must surface fault counters in some window");
    let _ = std::fs::remove_dir_all(&base);
}
