//! Micro-benchmarks of the NDPExt host-runtime algorithms: the max-flow
//! sampler assignment (Fig. 4b's subject), the configuration algorithm
//! (Algorithm 1), miss-curve sampling, and consistent-hash group
//! construction. These are the host-side costs the paper argues are small
//! enough to run every epoch.
//!
//! Hand-rolled timing (median-of-runs over a fixed wall-clock budget) keeps
//! the workspace free of external dependencies so it builds offline.

use ndpx_core::layout::Group;
use ndpx_core::runtime::configure::{allocate_ndpext, ConfigCtx, StreamDemand};
use ndpx_core::runtime::maxflow::assign_samplers;
use ndpx_core::runtime::sampler::{capacity_points, MissCurve, SetSampler};
use ndpx_sim::rng::Xoshiro256;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `f` repeatedly for ~200 ms and reports the median per-call time.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup.
    let warm_until = Instant::now() + Duration::from_millis(50);
    while Instant::now() < warm_until {
        f();
    }
    let mut samples = Vec::new();
    let until = Instant::now() + Duration::from_millis(200);
    while Instant::now() < until && samples.len() < 10_000 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("{name:<40} {median:>12.2?}  ({} samples)", samples.len());
}

fn bench_maxflow() {
    for &streams in &[64usize, 256, 512] {
        let mut rng = Xoshiro256::seed_from(7);
        let accessed: Vec<Vec<usize>> =
            (0..64).map(|_| (0..streams).filter(|_| rng.chance(0.25)).collect()).collect();
        bench(&format!("maxflow_assignment/{streams}"), || {
            black_box(assign_samplers(black_box(&accessed), streams, 4));
        });
    }
}

fn synthetic_demands(streams: usize, units: usize) -> (Vec<StreamDemand>, ConfigCtx) {
    let mut rng = Xoshiro256::seed_from(3);
    let demands = (0..streams)
        .map(|i| {
            let total = 10_000.0 + rng.below(100_000) as f64;
            let pts: Vec<(u64, f64)> =
                (1..=16).map(|k| ((k as u64) << 16, total / (1.0 + k as f64))).collect();
            let mut acc: Vec<(usize, u64)> = Vec::new();
            for u in 0..units {
                if rng.chance(0.3) {
                    acc.push((u, 100 + rng.below(1000)));
                }
            }
            let acc = if acc.is_empty() { vec![(i % units, 100)] } else { acc };
            StreamDemand {
                curve: MissCurve::from_samples(total, pts),
                acc_units: acc,
                read_only: i % 2 == 0,
                affine: i % 3 == 0,
                grain: 64,
                total_accesses: total as u64,
                footprint: 16 << 16,
            }
        })
        .collect();
    let attenuation = (0..units)
        .map(|u| (0..units).map(|v| 1.0 / (1.0 + u.abs_diff(v) as f64 * 0.1)).collect())
        .collect();
    let ctx = ConfigCtx {
        units,
        unit_capacity: 1 << 22,
        affine_cap: 1 << 20,
        attenuation,
        dram_lat_ps: 45_000.0,
        miss_extra_ps: 466_000.0,
        dead: vec![false; units],
    };
    (demands, ctx)
}

fn bench_configure() {
    for &streams in &[16usize, 64, 256] {
        let (demands, ctx) = synthetic_demands(streams, 64);
        bench(&format!("configuration_algorithm/{streams}"), || {
            black_box(allocate_ndpext(black_box(&demands), black_box(&ctx)));
        });
    }
}

fn bench_sampler() {
    let caps = capacity_points(32 << 10, 256 << 20, 64);
    let mut s = SetSampler::new(&caps, 64, 32);
    let mut key = 0u64;
    bench("sampler_observe_1k", || {
        for _ in 0..1000 {
            key = key.wrapping_add(0x9E37_79B9);
            s.observe(black_box(key % 100_000));
        }
    });
}

fn bench_consistent_groups() {
    let shares: Vec<u64> = (0..128).map(|u| 1000 + u as u64).collect();
    bench("consistent_group_build_128u", || {
        black_box(Group::new(black_box(shares.clone()), true));
    });
    let g = Group::new((0..128).map(|u| 1000 + u as u64).collect(), true);
    let mut key = 0u64;
    bench("consistent_group_locate", || {
        key += 1;
        black_box(g.locate(black_box(key)));
    });
}

fn main() {
    bench_maxflow();
    bench_configure();
    bench_sampler();
    bench_consistent_groups();
}
