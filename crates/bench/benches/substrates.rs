//! Micro-benchmarks of the simulation substrates — these bound how fast
//! whole-system runs can go: DRAM device access, NoC send, extended-memory
//! access, set-associative cache access, and end-to-end simulated
//! ops/second of a small system.
//!
//! Hand-rolled timing (median-of-batches over a fixed wall-clock budget)
//! keeps the workspace free of external dependencies so it builds offline.

use ndpx_cache::setassoc::SetAssocCache;
use ndpx_core::config::{PolicyKind, SystemConfig};
use ndpx_core::system::NdpSystem;
use ndpx_cxl::{CxlParams, ExtendedMemory};
use ndpx_mem::device::{DramConfig, DramDevice};
use ndpx_noc::network::{LinkParams, Network};
use ndpx_noc::topology::{IntraKind, Topology, UnitId};
use ndpx_sim::time::Time;
use ndpx_workloads::trace::ScaleParams;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `f` (a batch of `batch` operations) repeatedly for ~200 ms and
/// reports the median per-op time plus ops/sec.
fn bench(name: &str, batch: u64, mut f: impl FnMut()) {
    let warm_until = Instant::now() + Duration::from_millis(50);
    while Instant::now() < warm_until {
        f();
    }
    let mut samples = Vec::new();
    let until = Instant::now() + Duration::from_millis(200);
    while Instant::now() < until && samples.len() < 10_000 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let per_op = median.as_nanos() as f64 / batch as f64;
    let ops_per_sec = if per_op > 0.0 { 1e9 / per_op } else { f64::INFINITY };
    println!(
        "{name:<36} {per_op:>10.1} ns/op  {ops_per_sec:>12.0} ops/s  ({} samples)",
        samples.len()
    );
}

fn bench_dram() {
    let mut dram = DramDevice::new(DramConfig::hbm3_unit(256 << 20));
    let mut addr = 0u64;
    let mut now = Time::ZERO;
    bench("dram_device/access", 1000, || {
        for _ in 0..1000 {
            addr = addr.wrapping_add(0x4_0941) & ((256 << 20) - 1);
            now = dram.access(black_box(addr), 64, false, now).min(Time::from_us(u64::MAX >> 40));
        }
        black_box(now);
    });
}

fn bench_noc() {
    let mut net = Network::new(
        Topology::paper_default(IntraKind::Mesh),
        LinkParams::intra_stack(),
        LinkParams::inter_stack(),
    );
    let mut now = Time::ZERO;
    let mut i = 0usize;
    bench("noc/send_cross_stack", 1000, || {
        for _ in 0..1000 {
            i = (i + 1) % 128;
            now += Time::from_ns(10);
            black_box(net.send(UnitId(i), UnitId((i * 37 + 5) % 128), 64, black_box(now)));
        }
    });
}

fn bench_ext() {
    let mut ext = ExtendedMemory::new(CxlParams::paper_default(), 1 << 30);
    let mut addr = 0u64;
    let mut now = Time::ZERO;
    bench("cxl_ext_access", 1000, || {
        for _ in 0..1000 {
            addr = addr.wrapping_add(0x10_0941) & ((1 << 30) - 1);
            now += Time::from_ns(500);
            black_box(ext.access(black_box(addr), 64, false, now));
        }
    });
}

fn bench_setassoc() {
    let mut l1 = SetAssocCache::with_capacity(64 << 10, 64, 4);
    let mut key = 0u64;
    bench("setassoc_cache/l1_access", 1000, || {
        for _ in 0..1000 {
            key = key.wrapping_add(0x9E37) % 10_000;
            black_box(l1.access(black_box(key), false));
        }
    });
}

fn bench_system() {
    let ops = 2000u64;
    bench("whole_system/ndpext_pr", 16 * ops, || {
        let cfg = SystemConfig::test(PolicyKind::NdpExt);
        let p = ScaleParams { cores: cfg.units(), footprint: 4 << 20, seed: 1 };
        let wl = ndpx_workloads::build("pr", &p).expect("known").expect("builds");
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        black_box(sys.run(black_box(ops)));
    });
}

fn main() {
    bench_dram();
    bench_noc();
    bench_ext();
    bench_setassoc();
    bench_system();
}
