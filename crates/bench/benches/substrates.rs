//! Criterion micro-benchmarks of the simulation substrates — these bound
//! how fast whole-system runs can go: DRAM device access, NoC send,
//! extended-memory access, set-associative cache access, and end-to-end
//! simulated ops/second of a small system.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ndpx_cache::setassoc::SetAssocCache;
use ndpx_core::config::{PolicyKind, SystemConfig};
use ndpx_core::system::NdpSystem;
use ndpx_cxl::{CxlParams, ExtendedMemory};
use ndpx_mem::device::{DramConfig, DramDevice};
use ndpx_noc::network::{LinkParams, Network};
use ndpx_noc::topology::{IntraKind, Topology, UnitId};
use ndpx_sim::time::Time;
use ndpx_workloads::trace::ScaleParams;
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_device");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access", |b| {
        let mut dram = DramDevice::new(DramConfig::hbm3_unit(256 << 20));
        let mut addr = 0u64;
        let mut now = Time::ZERO;
        b.iter(|| {
            addr = addr.wrapping_add(0x4_0941) & ((256 << 20) - 1);
            now = dram.access(black_box(addr), 64, false, now).min(Time::from_us(u64::MAX >> 40));
            now
        });
    });
    group.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send_cross_stack", |b| {
        let mut net = Network::new(
            Topology::paper_default(IntraKind::Mesh),
            LinkParams::intra_stack(),
            LinkParams::inter_stack(),
        );
        let mut now = Time::ZERO;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 128;
            now += Time::from_ns(10);
            net.send(UnitId(i), UnitId((i * 37 + 5) % 128), 64, black_box(now))
        });
    });
    group.finish();
}

fn bench_ext(c: &mut Criterion) {
    c.bench_function("cxl_ext_access", |b| {
        let mut ext = ExtendedMemory::new(CxlParams::paper_default(), 1 << 30);
        let mut addr = 0u64;
        let mut now = Time::ZERO;
        b.iter(|| {
            addr = addr.wrapping_add(0x10_0941) & ((1 << 30) - 1);
            now += Time::from_ns(500);
            ext.access(black_box(addr), 64, false, now)
        });
    });
}

fn bench_setassoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("setassoc_cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_access", |b| {
        let mut l1 = SetAssocCache::with_capacity(64 << 10, 64, 4);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37) % 10_000;
            l1.access(black_box(key), false)
        });
    });
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_system");
    group.sample_size(10);
    group.throughput(Throughput::Elements(16 * 2000));
    group.bench_function("ndpext_pr_2k_ops_per_core", |b| {
        b.iter(|| {
            let cfg = SystemConfig::test(PolicyKind::NdpExt);
            let p = ScaleParams { cores: cfg.units(), footprint: 4 << 20, seed: 1 };
            let wl = ndpx_workloads::build("pr", &p).expect("known").expect("builds");
            let mut sys = NdpSystem::new(cfg, wl).expect("valid");
            sys.run(black_box(2000))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_dram, bench_noc, bench_ext, bench_setassoc, bench_system 
}
criterion_main!(benches);
