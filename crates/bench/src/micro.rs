//! Component micro-benchmarks for the perf gauge (`NDPX_GAUGE_MICRO=1`).
//!
//! Times the raw hot kernels the full-matrix gauge exercises indirectly:
//! event-queue scheduling under both implementations ([`QueueImpl::Wheel`]
//! and the reference [`QueueImpl::Heap`]), the miss-curve sampler's observe
//! path, consistent-hash bucket-table construction, and power-law graph
//! generation. Results land in `BENCH_PERF.json` under `"micro"` so a CI
//! artifact records where a wall-clock regression came from without
//! re-profiling the whole matrix.
//!
//! These are wall-clock measurements, not digest-gated simulation: they
//! exist to explain performance, never to define correctness.

use std::hint::black_box;
use std::time::Instant;

use ndpx_core::layout::Group;
use ndpx_core::runtime::sampler::{capacity_points, SetSampler};
use ndpx_sim::engine::{EventQueue, QueueImpl};
use ndpx_sim::rng::Xoshiro256;
use ndpx_sim::time::Time;
use ndpx_workloads::graph::CsrGraph;

/// One micro-benchmark measurement.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Kernel label (stable across report versions).
    pub name: &'static str,
    /// Operations timed.
    pub iters: u64,
    /// Nanoseconds per operation.
    pub ns_per_iter: f64,
}

impl MicroResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            0.0
        }
    }
}

/// True when the environment requests the micro-bench pass (unified
/// boolean grammar; off by default).
pub fn enabled_from_env() -> bool {
    ndpx_sim::knobs::GAUGE_MICRO.bool_or(false)
}

fn timed(name: &'static str, iters: u64, f: impl FnOnce()) -> MicroResult {
    let t0 = Instant::now();
    f();
    let ns = t0.elapsed().as_nanos() as f64;
    MicroResult { name, iters, ns_per_iter: ns / iters as f64 }
}

/// The simulator's scheduling pattern: one pending event per core, each pop
/// immediately re-pushed a short random delta ahead (`push_pop_ranked`).
fn queue_fused(impl_kind: QueueImpl, name: &'static str, iters: u64) -> MicroResult {
    let mut q: EventQueue<usize> = EventQueue::with_impl(impl_kind);
    let cores = 16u64;
    for c in 0..cores {
        q.push_ranked(Time::ZERO, c, c as usize);
    }
    let mut rng = Xoshiro256::seed_from(0x51ED);
    let (mut now, mut core) = q.pop().expect("non-empty");
    timed(name, iters, || {
        for _ in 0..iters {
            let dt = Time::from_ps(100 + rng.below(8000));
            (now, core) = q.push_pop_ranked(now + dt, core as u64, core);
        }
        black_box(now);
    })
}

/// The run-ahead batching pattern from the system run loops: the popped
/// core advances through consecutive op completions while each stays
/// strictly below the queue's pending minimum ([`EventQueue::peek_time`]),
/// touching the queue once per batch instead of once per op. Cores are
/// staggered so the window admits a few ops per batch, matching the
/// heterogeneous-latency phases where batching pays.
fn queue_run_ahead(impl_kind: QueueImpl, name: &'static str, iters: u64) -> MicroResult {
    let mut q: EventQueue<usize> = EventQueue::with_impl(impl_kind);
    let cores = 16u64;
    for c in 0..cores {
        q.push_ranked(Time::from_ps(c * 4000), c, c as usize);
    }
    let mut rng = Xoshiro256::seed_from(0xBA7C);
    let (mut now, mut core) = q.pop().expect("non-empty");
    timed(name, iters, || {
        let mut done = 0u64;
        while done < iters {
            let window = q.peek_time().unwrap_or(Time::MAX);
            let mut t = now + Time::from_ps(100 + rng.below(900));
            done += 1;
            while t < window && done < iters {
                t += Time::from_ps(100 + rng.below(900));
                done += 1;
            }
            (now, core) = q.push_pop_ranked(t, core as u64, core);
        }
        black_box((now, core));
    })
}

/// Bursty schedule: fill a batch of future events, then drain it — the
/// pattern that exercises bucket chains and the refill/cascade path.
fn queue_churn(impl_kind: QueueImpl, name: &'static str, iters: u64) -> MicroResult {
    let mut q: EventQueue<u64> = EventQueue::with_impl(impl_kind);
    let mut rng = Xoshiro256::seed_from(0xC0DE);
    let batch = 256u64;
    let rounds = iters / (2 * batch);
    let mut now = Time::ZERO;
    timed(name, rounds * 2 * batch, || {
        for _ in 0..rounds {
            for i in 0..batch {
                // Mostly near-horizon, occasionally far enough to overflow.
                let dt = if rng.below(64) == 0 {
                    Time::from_us(1 + rng.below(4))
                } else {
                    Time::from_ps(rng.below(200_000))
                };
                q.push(now + dt, i);
            }
            for _ in 0..batch {
                if let Some((t, v)) = q.pop() {
                    now = t;
                    black_box(v);
                }
            }
        }
        black_box(now);
    })
}

/// The sampler observe path: 64 capacity cases per access, as assigned
/// samplers see on every post-L1 reference.
fn sampler_observe(iters: u64) -> MicroResult {
    let caps = capacity_points(32 << 10, 256 << 20, 64);
    let mut s = SetSampler::new(&caps, 64, 32);
    let mut rng = Xoshiro256::seed_from(0x0B5E);
    timed("sampler_observe", iters, || {
        for _ in 0..iters {
            s.observe(rng.below(1 << 20));
        }
        black_box(s.observed());
    })
}

/// Consistent-hash group construction: one full 1024-bucket weighted
/// rendezvous rehash per iteration (the reconfiguration kernel).
fn bucket_table(iters: u64) -> MicroResult {
    let units = 16usize;
    let mut rng = Xoshiro256::seed_from(0xB0C1);
    timed("consistent_rehash", iters, || {
        for _ in 0..iters {
            let shares: Vec<u64> = (0..units).map(|_| rng.below(4096)).collect();
            black_box(Group::new(shares, true).total_slots());
        }
    })
}

/// Raw power-law graph generation (the inverse-CDF `powf` kernel the
/// process-wide graph cache exists to amortize); measured per edge.
fn graph_powerlaw() -> MicroResult {
    let (vertices, avg_degree) = (20_000u32, 12u32);
    let g = CsrGraph::powerlaw(vertices, avg_degree, 0x6EAF);
    let edges = g.edge_count().max(1);
    black_box(g.vertices());
    let t0 = Instant::now();
    let g2 = CsrGraph::powerlaw(vertices, avg_degree, 0x6EB0);
    let ns = t0.elapsed().as_nanos() as f64;
    let edges2 = g2.edge_count().max(edges);
    black_box(g2.vertices());
    MicroResult { name: "powerlaw_edge_gen", iters: edges2, ns_per_iter: ns / edges2 as f64 }
}

/// Runs the full micro-bench suite (a few hundred milliseconds).
pub fn run_all() -> Vec<MicroResult> {
    vec![
        queue_fused(QueueImpl::Wheel, "queue_wheel_push_pop_ranked", 2_000_000),
        queue_fused(QueueImpl::Heap, "queue_heap_push_pop_ranked", 2_000_000),
        queue_run_ahead(QueueImpl::Wheel, "run_ahead_wheel", 2_000_000),
        queue_run_ahead(QueueImpl::Heap, "run_ahead_heap", 2_000_000),
        queue_churn(QueueImpl::Wheel, "queue_wheel_batch_churn", 1_000_000),
        queue_churn(QueueImpl::Heap, "queue_heap_batch_churn", 1_000_000),
        sampler_observe(300_000),
        bucket_table(2_000),
        graph_powerlaw(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_produces_sane_rates() {
        // Tiny iteration counts: this guards plumbing, not performance.
        let rs = [
            queue_fused(QueueImpl::Wheel, "w", 4_000),
            queue_fused(QueueImpl::Heap, "h", 4_000),
            queue_run_ahead(QueueImpl::Wheel, "rw", 4_000),
            queue_run_ahead(QueueImpl::Heap, "rh", 4_000),
            queue_churn(QueueImpl::Wheel, "wc", 8_192),
            queue_churn(QueueImpl::Heap, "hc", 8_192),
            sampler_observe(2_000),
            bucket_table(8),
        ];
        for r in rs {
            assert!(r.iters > 0, "{}: no iterations", r.name);
            assert!(r.ns_per_iter.is_finite() && r.ns_per_iter >= 0.0, "{}: bad rate", r.name);
        }
    }

    #[test]
    fn env_gate_defaults_off() {
        // The gauge only runs micros when explicitly asked.
        if ndpx_sim::knobs::GAUGE_MICRO.raw().is_none() {
            assert!(!enabled_from_env());
        }
    }
}
