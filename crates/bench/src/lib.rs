//! # ndpx-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! NDPExt paper. Each `fig*` binary prints the rows/series of one figure;
//! [`runner`] provides the shared machinery (scale profiles, parallel run
//! execution, normalized-speedup tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod runner;

pub use runner::{geomean, run_host, run_many, run_ndp, BenchScale, RunSpec};
