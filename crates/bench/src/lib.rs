//! # ndpx-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! NDPExt paper. Each `fig*` binary prints the rows/series of one figure;
//! [`runner`] provides the shared machinery (scale profiles, parallel run
//! execution, normalized-speedup tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod gauge;
pub mod manifest;
pub mod micro;
pub mod pool;
pub mod report;
pub mod runner;

pub use manifest::{CellFailure, CellMetrics, RunManifest};
pub use ndpx_workloads::TraceCache;
pub use pool::{
    CellCompletion, CellOutcome, CellPool, CellResult, CellTask, MonitorConfig, RetryPolicy,
};
pub use runner::{
    geomean, run_host, run_host_cached, run_many, run_many_monitored, run_many_with, run_ndp,
    run_ndp_cached, BenchScale, RunSpec,
};
