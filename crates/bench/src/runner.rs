//! Shared bench-harness machinery: scale selection, run execution, and
//! result formatting.
//!
//! All figure binaries accept the `NDPX_SCALE` environment variable:
//! `test` (seconds, CI-sized), `small` (default, minutes), or `paper`
//! (the full Table II geometry; long). Runs at one scale are directly
//! comparable: every policy executes the identical op stream.

use ndpx_core::config::{MemKind, PolicyKind, SystemConfig};
use ndpx_core::host::{HostConfig, HostSystem};
use ndpx_core::stats::RunReport;
use ndpx_core::system::NdpSystem;
use ndpx_workloads::trace::ScaleParams;
use ndpx_workloads::TraceCache;

use crate::pool::{CellPool, CellTask};

/// Benchmark scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Tiny: 16 units, small footprints; for smoke runs and CI.
    Test,
    /// Default: the paper's 128-unit topology at reduced capacity.
    Small,
    /// Full Table II geometry and capacities (slow).
    Paper,
}

impl BenchScale {
    /// Reads `NDPX_SCALE` (defaults to [`BenchScale::Small`]).
    pub fn from_env() -> Self {
        Self::parse(ndpx_sim::knobs::SCALE.raw().as_deref())
    }

    /// Parses a scale name; `None` and unknown names map to the default
    /// ([`BenchScale::Small`]). Pure so tests need not touch the (process
    /// global, racy) environment.
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            Some("test") => BenchScale::Test,
            Some("paper") => BenchScale::Paper,
            _ => BenchScale::Small,
        }
    }

    /// The NDP system configuration at this scale.
    pub fn system(self, mem: MemKind, policy: PolicyKind) -> SystemConfig {
        match self {
            BenchScale::Test => {
                let mut cfg = SystemConfig::test(policy);
                cfg.mem_kind = mem;
                cfg
            }
            BenchScale::Small => SystemConfig::bench(mem, policy),
            BenchScale::Paper => SystemConfig::paper(mem, policy),
        }
    }

    /// Workload scale parameters for a system with `cores` cores. The
    /// footprint is sized at 1.2× the NDP cache: the paper runs workload
    /// processes "until the total footprint exceeds the NDP memory", i.e.
    /// the cache holds most but not all of the data.
    pub fn workload(self, cfg: &SystemConfig) -> ScaleParams {
        let cache = cfg.units() as u64 * cfg.unit_capacity;
        ScaleParams { cores: cfg.units(), footprint: cache * 6 / 5, seed: 0xBEEF }
    }

    /// Trace operations per core for headline runs.
    pub fn ops_per_core(self) -> u64 {
        match self {
            BenchScale::Test => 20_000,
            BenchScale::Small => 30_000,
            BenchScale::Paper => 400_000,
        }
    }
}

/// A configuration mutation applied before a run (shared across threads).
pub type ConfigTweak = std::sync::Arc<dyn Fn(&mut SystemConfig) + Send + Sync>;

/// One simulation request.
#[derive(Clone)]
pub struct RunSpec {
    /// Memory family.
    pub mem: MemKind,
    /// Policy.
    pub policy: PolicyKind,
    /// Workload name.
    pub workload: &'static str,
    /// Scale profile.
    pub scale: BenchScale,
    /// Ops per core (defaults to the scale's headline count).
    pub ops_per_core: u64,
    /// Optional config tweak applied before the run.
    pub tweak: Option<ConfigTweak>,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("mem", &self.mem)
            .field("policy", &self.policy)
            .field("workload", &self.workload)
            .field("ops_per_core", &self.ops_per_core)
            .field("tweaked", &self.tweak.is_some())
            .finish()
    }
}

impl RunSpec {
    /// Applies a configuration tweak (builder style).
    pub fn with_tweak(mut self, f: impl Fn(&mut SystemConfig) + Send + Sync + 'static) -> Self {
        self.tweak = Some(std::sync::Arc::new(f));
        self
    }

    /// A spec with the scale's default op count and no tweak.
    pub fn new(
        mem: MemKind,
        policy: PolicyKind,
        workload: &'static str,
        scale: BenchScale,
    ) -> Self {
        RunSpec { mem, policy, workload, scale, ops_per_core: scale.ops_per_core(), tweak: None }
    }
}

/// Executes one NDP run with the workload trace served from `cache`
/// (generated live when the cache is disabled or over budget).
///
/// # Panics
///
/// Panics on unknown workloads or invalid configurations — bench inputs are
/// static.
pub fn run_ndp_cached(spec: &RunSpec, cache: &TraceCache) -> RunReport {
    let mut cfg = spec.scale.system(spec.mem, spec.policy);
    if let Some(tweak) = &spec.tweak {
        tweak(&mut cfg);
    }
    let params = spec.scale.workload(&cfg);
    let trace_gen_start = std::time::Instant::now();
    let wl = cache.workload(spec.workload, &params, spec.ops_per_core);
    let trace_gen = trace_gen_start.elapsed();
    let mut sys = NdpSystem::new(cfg, wl).expect("config and workload are consistent");
    // Attributed post-hoc: the profiler (if `NDPX_PROFILE` enabled one)
    // only exists once the system does.
    sys.record_phase(ndpx_core::Phase::TraceGen, trace_gen);
    sys.run(spec.ops_per_core)
}

/// Executes one NDP run with a live (uncached) workload trace.
///
/// # Panics
///
/// Panics on unknown workloads or invalid configurations — bench inputs are
/// static.
pub fn run_ndp(spec: &RunSpec) -> RunReport {
    run_ndp_cached(spec, &TraceCache::disabled())
}

/// Executes the non-NDP host baseline on the same workload and op count,
/// with the trace served from `cache`.
///
/// The host always uses 64 cores at `Small`/`Paper` scale and the NDP unit
/// count at `Test` scale (so the tiny profile stays comparable).
///
/// # Panics
///
/// Panics on unknown workloads — bench inputs are static.
pub fn run_host_cached(
    workload: &'static str,
    scale: BenchScale,
    ops_per_core: u64,
    cache: &TraceCache,
) -> RunReport {
    let ndp_cfg = scale.system(MemKind::Hbm, PolicyKind::NdpExt);
    let cores = match scale {
        BenchScale::Test => ndp_cfg.units(),
        _ => 64,
    };
    let mut host_cfg = match scale {
        BenchScale::Test => HostConfig::test(cores),
        _ => HostConfig::paper(),
    };
    host_cfg.cores = cores;
    // Scale the host LLC with the NDP cache, preserving the paper's
    // 32 MB : 16 GB (1:512) capacity ratio.
    let ndp_cache = ndp_cfg.units() as u64 * ndp_cfg.unit_capacity;
    host_cfg.llc_bytes = (ndp_cache / 512).max(256 << 10);
    let cache_bytes = ndp_cfg.units() as u64 * ndp_cfg.unit_capacity;
    let params = ScaleParams { cores, footprint: cache_bytes * 4, seed: 0xBEEF };
    // Equalize total work: the host runs the same total op count.
    let total_ops = ops_per_core * ndp_cfg.units() as u64;
    let host_ops = total_ops / cores as u64;
    let wl = cache.workload(workload, &params, host_ops);
    HostSystem::new(host_cfg, wl).expect("consistent").run(host_ops)
}

/// Executes the non-NDP host baseline with a live (uncached) trace.
///
/// # Panics
///
/// Panics on unknown workloads — bench inputs are static.
pub fn run_host(workload: &'static str, scale: BenchScale, ops_per_core: u64) -> RunReport {
    run_host_cached(workload, scale, ops_per_core, &TraceCache::disabled())
}

/// Runs many independent specs on `pool`, sharing `cache` across cells, and
/// returns reports in spec order regardless of thread count.
pub fn run_many_with(pool: CellPool, cache: &TraceCache, specs: &[RunSpec]) -> Vec<RunReport> {
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| Box::new(move || run_ndp_cached(spec, cache)) as CellTask<'_, RunReport>)
        .collect();
    pool.run_values(tasks)
}

/// [`run_many_with`] plus the full telemetry envelope: heartbeat lines and
/// the slow-cell watchdog via [`CellPool::run_cells_monitored`], and the
/// `metrics.json` + registry-dump sidecars under `NDPX_METRICS` (see
/// [`crate::manifest`]). `run_name` labels log lines and sidecar files.
///
/// Cells are panic-isolated and retried per `NDPX_CELL_RETRIES`: a cell
/// that fails permanently never aborts its siblings, and the sidecars plus
/// a `<run>.failures.json` manifest are written *before* the failure is
/// escalated, so a partial sweep is never lost.
///
/// # Panics
///
/// After the whole matrix has run and every manifest is on disk, if any
/// cell exhausted its retries.
pub fn run_many_monitored(
    run_name: &str,
    pool: CellPool,
    cache: &TraceCache,
    specs: &[RunSpec],
) -> Vec<RunReport> {
    let names: Vec<String> = specs.iter().map(crate::gauge::cell_key).collect();
    let monitor = crate::pool::MonitorConfig::from_env(run_name, names);
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| Box::new(move || run_ndp_cached(spec, cache)) as CellTask<'_, RunReport>)
        .collect();
    let completions =
        pool.run_cells_monitored(&monitor, crate::pool::RetryPolicy::from_env(), tasks);
    crate::manifest::emit_outcomes(
        run_name,
        pool.threads(),
        &monitor.names,
        &completions,
        Some(cache.stats()),
    );
    let failed: Vec<String> = monitor
        .names
        .iter()
        .zip(&completions)
        .filter(|(_, c)| c.outcome.is_failed())
        .map(|(name, _)| name.clone())
        .collect();
    assert!(
        failed.is_empty(),
        "{run_name}: {} of {} cells failed permanently after retries: {}",
        failed.len(),
        completions.len(),
        failed.join(", ")
    );
    completions.into_iter().filter_map(|c| c.outcome.into_value()).collect()
}

/// The current binary's name, for run labels (`"bench"` as a fallback).
pub fn run_label() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|p| std::path::Path::new(p).file_stem()?.to_str().map(str::to_string))
        .unwrap_or_else(|| "bench".to_string())
}

/// Runs many specs with the environment's thread count (`NDPX_THREADS`), a
/// trace cache shared across the whole matrix (`NDPX_TRACE_CACHE`), and the
/// monitored-run telemetry envelope labeled with the binary's name.
pub fn run_many(specs: Vec<RunSpec>) -> Vec<RunReport> {
    run_many_monitored(&run_label(), CellPool::from_env(), &TraceCache::from_env(), &specs)
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Prints a Markdown-ish table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> =
        cells.iter().zip(widths.iter()).map(|(c, w)| format!("{c:>w$}")).collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn scale_parse_names() {
        // The pure parser is tested instead of `from_env`: mutating the
        // process environment races against parallel tests.
        assert_eq!(BenchScale::parse(None), BenchScale::Small);
        assert_eq!(BenchScale::parse(Some("test")), BenchScale::Test);
        assert_eq!(BenchScale::parse(Some("small")), BenchScale::Small);
        assert_eq!(BenchScale::parse(Some("paper")), BenchScale::Paper);
        assert_eq!(BenchScale::parse(Some("bogus")), BenchScale::Small);
    }

    #[test]
    fn test_scale_runs_quickly() {
        let spec = RunSpec {
            ops_per_core: 1000,
            ..RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, "pr", BenchScale::Test)
        };
        let r = run_ndp(&spec);
        assert!(r.ops > 0);
    }
}
