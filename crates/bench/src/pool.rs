//! Deterministic parallel execution of independent benchmark cells.
//!
//! The paper's evaluation is a large matrix of independent simulations
//! (memory families × policies × workloads); [`CellPool`] executes such a
//! matrix on a work-stealing pool of scoped threads and hands results back
//! in canonical submission order, so tables, digests, and reports are
//! byte-identical at any thread count. `NDPX_THREADS` controls the width
//! (default: all available cores); `1` runs every cell inline on the
//! calling thread in submission order — exactly the historical serial
//! behaviour.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ndpx_sim::{ndpx_info, ndpx_warn};

/// One unit of pool work. Boxed so heterogeneous cells (NDP runs, host
/// baselines, tweaked sweeps) can share a matrix; the lifetime lets tasks
/// borrow shared immutable state such as a trace cache.
pub type CellTask<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// The outcome of one cell, tagged with where and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult<T> {
    /// The task's return value.
    pub value: T,
    /// Index of the worker thread that executed the cell (0 when serial).
    pub worker: usize,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_s: f64,
}

/// A scoped work-stealing thread pool over independent cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPool {
    threads: usize,
}

impl CellPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        CellPool { threads: threads.max(1) }
    }

    /// Reads `NDPX_THREADS` (default: available parallelism).
    pub fn from_env() -> Self {
        Self::with_threads(Self::parse(std::env::var("NDPX_THREADS").ok().as_deref()))
    }

    /// Parses a thread-count override; `None`, zero, and unparsable values
    /// map to the machine's available parallelism. Pure so tests need not
    /// touch the (process-global, racy) environment.
    pub fn parse(value: Option<&str>) -> usize {
        match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// The configured worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Executes every task and returns their results in submission order.
    ///
    /// With one thread the tasks run inline, in order, with no thread
    /// machinery. Otherwise workers claim cells from a shared counter
    /// (cheap work stealing: long cells never block the queue behind them)
    /// and deposit results into per-cell slots, so the output order never
    /// depends on scheduling.
    ///
    /// # Panics
    ///
    /// Propagates task panics (the scope unwinds once all workers stop).
    pub fn run<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<CellResult<T>> {
        let n = tasks.len();
        if self.threads == 1 || n <= 1 {
            return tasks
                .into_iter()
                .map(|task| {
                    let t0 = Instant::now();
                    let value = task();
                    CellResult { value, worker: 0, wall_s: t0.elapsed().as_secs_f64() }
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<CellTask<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<CellResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..self.threads.min(n) {
                let slots = &slots;
                let results = &results;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = slots[i]
                        .lock()
                        .expect("no task panicked while being claimed")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let t0 = Instant::now();
                    let value = task();
                    *results[i].lock().expect("no worker panicked depositing") =
                        Some(CellResult { value, worker, wall_s: t0.elapsed().as_secs_f64() });
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("all workers joined")
                    .expect("every cell was executed before the scope closed")
            })
            .collect()
    }

    /// [`CellPool::run`] without the per-cell metadata.
    pub fn run_values<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<T> {
        self.run(tasks).into_iter().map(|r| r.value).collect()
    }

    /// [`CellPool::run`] with progress heartbeats and a slow-cell watchdog.
    ///
    /// Each finished cell may emit one throttled heartbeat line (info level,
    /// so silent unless `NDPX_LOG=info`); after the matrix completes, cells
    /// whose wall clock exceeded `monitor.slow_mult` × the median are named
    /// at warn level. Monitoring never changes what runs or the order results
    /// come back in — it only observes.
    pub fn run_monitored<'env, T: Send>(
        self,
        monitor: &MonitorConfig,
        tasks: Vec<CellTask<'env, T>>,
    ) -> Vec<CellResult<T>> {
        let n = tasks.len();
        let t0 = Instant::now();
        let done = AtomicUsize::new(0);
        let last_beat_ms = AtomicU64::new(0);
        let beat_ms = monitor.heartbeat_secs.saturating_mul(1000);
        let wrapped: Vec<CellTask<'_, T>> = tasks
            .into_iter()
            .map(|task| {
                let (done, last_beat_ms) = (&done, &last_beat_ms);
                let label = monitor.label.as_str();
                Box::new(move || {
                    let value = task();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if beat_ms > 0 {
                        let now_ms = t0.elapsed().as_millis() as u64;
                        let prev = last_beat_ms.load(Ordering::Relaxed);
                        let due = finished == n || now_ms >= prev.saturating_add(beat_ms);
                        if due
                            && last_beat_ms
                                .compare_exchange(
                                    prev,
                                    now_ms,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            ndpx_info!(
                                "{label}: {finished}/{n} cells done in {:.1}s",
                                now_ms as f64 / 1e3
                            );
                        }
                    }
                    value
                }) as CellTask<'_, T>
            })
            .collect();
        let results = self.run(wrapped);
        let walls: Vec<f64> = results.iter().map(|r| r.wall_s).collect();
        for i in slow_cells(&walls, monitor.slow_mult) {
            let name = monitor.names.get(i).map_or("?", |s| s.as_str());
            ndpx_warn!(
                "{}: slow cell {name} took {:.2}s ({:.1}x the {:.2}s median) on worker {}",
                monitor.label,
                walls[i],
                walls[i] / median(&walls).max(1e-9),
                median(&walls),
                results[i].worker
            );
        }
        results
    }
}

/// Configuration for [`CellPool::run_monitored`]: a run label, per-cell
/// names (for the watchdog), the heartbeat throttle, and the slow-cell
/// threshold multiple.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Run label prefixed to every heartbeat/watchdog line.
    pub label: String,
    /// Cell names in submission order (watchdog lines name cells by these).
    pub names: Vec<String>,
    /// Minimum seconds between heartbeat lines; `0` disables heartbeats.
    pub heartbeat_secs: u64,
    /// Watchdog threshold as a multiple of the median cell wall clock;
    /// `0.0` disables the watchdog.
    pub slow_mult: f64,
}

impl MonitorConfig {
    /// A monitor with the default heartbeat (5 s) and watchdog (4× median).
    pub fn new(label: impl Into<String>, names: Vec<String>) -> Self {
        MonitorConfig { label: label.into(), names, heartbeat_secs: 5, slow_mult: 4.0 }
    }

    /// Reads `NDPX_HEARTBEAT_SECS` and `NDPX_SLOW_MULT` overrides.
    pub fn from_env(label: impl Into<String>, names: Vec<String>) -> Self {
        let mut m = Self::new(label, names);
        if let Some(secs) = parse_env("NDPX_HEARTBEAT_SECS") {
            m.heartbeat_secs = secs as u64;
        }
        if let Some(mult) = parse_env("NDPX_SLOW_MULT") {
            m.slow_mult = mult;
        }
        m
    }
}

fn parse_env(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.trim().parse::<f64>().ok().filter(|v| v.is_finite() && *v >= 0.0)
}

/// Wall clocks below this never trigger the watchdog: at test scale a cell
/// runs for milliseconds, where scheduler noise routinely exceeds any
/// multiple of the median.
const SLOW_FLOOR_S: f64 = 0.1;

/// Median of `walls` (0 when empty). Ties toward the lower middle element.
fn median(walls: &[f64]) -> f64 {
    if walls.is_empty() {
        return 0.0;
    }
    let mut sorted = walls.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() - 1) / 2]
}

/// Indices of cells whose wall clock exceeds `mult` × the median (and the
/// [`SLOW_FLOOR_S`] noise floor), in submission order. Pure so the watchdog
/// policy is testable without timing a real pool.
pub fn slow_cells(walls: &[f64], mult: f64) -> Vec<usize> {
    if mult <= 0.0 || walls.len() < 2 {
        return Vec::new();
    }
    let threshold = (median(walls) * mult).max(SLOW_FLOOR_S);
    walls.iter().enumerate().filter(|(_, &w)| w > threshold).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_tasks(n: usize) -> Vec<CellTask<'static, usize>> {
        (0..n).map(|i| Box::new(move || i * i) as CellTask<'static, usize>).collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 9] {
            let out = CellPool::with_threads(threads).run_values(square_tasks(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn serial_pool_runs_on_calling_thread() {
        let id = std::thread::current().id();
        let tasks: Vec<CellTask<'_, bool>> =
            (0..4).map(|_| Box::new(move || std::thread::current().id() == id) as _).collect();
        assert!(CellPool::with_threads(1).run_values(tasks).into_iter().all(|same| same));
    }

    #[test]
    fn parse_thread_counts() {
        assert_eq!(CellPool::parse(Some("4")), 4);
        assert_eq!(CellPool::parse(Some("1")), 1);
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(CellPool::parse(None), auto);
        assert_eq!(CellPool::parse(Some("0")), auto);
        assert_eq!(CellPool::parse(Some("bogus")), auto);
    }

    #[test]
    fn tasks_may_borrow_shared_state() {
        let shared = vec![10usize, 20, 30];
        let shared = &shared;
        let tasks: Vec<CellTask<'_, usize>> =
            (0..3).map(|i| Box::new(move || shared[i] + 1) as CellTask<'_, usize>).collect();
        assert_eq!(CellPool::with_threads(2).run_values(tasks), vec![11, 21, 31]);
    }

    #[test]
    fn worker_ids_are_within_pool_width() {
        let results = CellPool::with_threads(3).run(square_tasks(16));
        assert!(results.iter().all(|r| r.worker < 3));
        assert!(results.iter().all(|r| r.wall_s >= 0.0));
    }

    #[test]
    fn monitored_run_preserves_order_and_results() {
        let names = (0..23).map(|i| format!("cell{i}")).collect();
        let monitor = MonitorConfig::new("test", names);
        for threads in [1, 4] {
            let out = CellPool::with_threads(threads).run_monitored(&monitor, square_tasks(23));
            let values: Vec<usize> = out.into_iter().map(|r| r.value).collect();
            assert_eq!(values, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn watchdog_names_only_outliers() {
        // 1.0s median: the 8.0s cell is past 4x, the 3.0s cell is not.
        let walls = [1.0, 8.0, 1.0, 3.0, 1.0];
        assert_eq!(slow_cells(&walls, 4.0), vec![1]);
        // Millisecond noise stays under the floor even at huge multiples.
        assert_eq!(slow_cells(&[0.001, 0.09, 0.001], 4.0), Vec::<usize>::new());
        // Disabled watchdog and single cells never fire.
        assert_eq!(slow_cells(&walls, 0.0), Vec::<usize>::new());
        assert_eq!(slow_cells(&[99.0], 4.0), Vec::<usize>::new());
    }

    #[test]
    fn median_is_lower_middle() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }
}
