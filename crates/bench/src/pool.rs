//! Deterministic parallel execution of independent benchmark cells.
//!
//! The paper's evaluation is a large matrix of independent simulations
//! (memory families × policies × workloads); [`CellPool`] executes such a
//! matrix on a work-stealing pool of scoped threads and hands results back
//! in canonical submission order, so tables, digests, and reports are
//! byte-identical at any thread count. `NDPX_THREADS` controls the width
//! (default: all available cores); `1` runs every cell inline on the
//! calling thread in submission order — exactly the historical serial
//! behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One unit of pool work. Boxed so heterogeneous cells (NDP runs, host
/// baselines, tweaked sweeps) can share a matrix; the lifetime lets tasks
/// borrow shared immutable state such as a trace cache.
pub type CellTask<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// The outcome of one cell, tagged with where and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult<T> {
    /// The task's return value.
    pub value: T,
    /// Index of the worker thread that executed the cell (0 when serial).
    pub worker: usize,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_s: f64,
}

/// A scoped work-stealing thread pool over independent cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPool {
    threads: usize,
}

impl CellPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        CellPool { threads: threads.max(1) }
    }

    /// Reads `NDPX_THREADS` (default: available parallelism).
    pub fn from_env() -> Self {
        Self::with_threads(Self::parse(std::env::var("NDPX_THREADS").ok().as_deref()))
    }

    /// Parses a thread-count override; `None`, zero, and unparsable values
    /// map to the machine's available parallelism. Pure so tests need not
    /// touch the (process-global, racy) environment.
    pub fn parse(value: Option<&str>) -> usize {
        match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// The configured worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Executes every task and returns their results in submission order.
    ///
    /// With one thread the tasks run inline, in order, with no thread
    /// machinery. Otherwise workers claim cells from a shared counter
    /// (cheap work stealing: long cells never block the queue behind them)
    /// and deposit results into per-cell slots, so the output order never
    /// depends on scheduling.
    ///
    /// # Panics
    ///
    /// Propagates task panics (the scope unwinds once all workers stop).
    pub fn run<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<CellResult<T>> {
        let n = tasks.len();
        if self.threads == 1 || n <= 1 {
            return tasks
                .into_iter()
                .map(|task| {
                    let t0 = Instant::now();
                    let value = task();
                    CellResult { value, worker: 0, wall_s: t0.elapsed().as_secs_f64() }
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<CellTask<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<CellResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..self.threads.min(n) {
                let slots = &slots;
                let results = &results;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = slots[i]
                        .lock()
                        .expect("no task panicked while being claimed")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let t0 = Instant::now();
                    let value = task();
                    *results[i].lock().expect("no worker panicked depositing") =
                        Some(CellResult { value, worker, wall_s: t0.elapsed().as_secs_f64() });
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("all workers joined")
                    .expect("every cell was executed before the scope closed")
            })
            .collect()
    }

    /// [`CellPool::run`] without the per-cell metadata.
    pub fn run_values<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<T> {
        self.run(tasks).into_iter().map(|r| r.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_tasks(n: usize) -> Vec<CellTask<'static, usize>> {
        (0..n).map(|i| Box::new(move || i * i) as CellTask<'static, usize>).collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 9] {
            let out = CellPool::with_threads(threads).run_values(square_tasks(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn serial_pool_runs_on_calling_thread() {
        let id = std::thread::current().id();
        let tasks: Vec<CellTask<'_, bool>> =
            (0..4).map(|_| Box::new(move || std::thread::current().id() == id) as _).collect();
        assert!(CellPool::with_threads(1).run_values(tasks).into_iter().all(|same| same));
    }

    #[test]
    fn parse_thread_counts() {
        assert_eq!(CellPool::parse(Some("4")), 4);
        assert_eq!(CellPool::parse(Some("1")), 1);
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(CellPool::parse(None), auto);
        assert_eq!(CellPool::parse(Some("0")), auto);
        assert_eq!(CellPool::parse(Some("bogus")), auto);
    }

    #[test]
    fn tasks_may_borrow_shared_state() {
        let shared = vec![10usize, 20, 30];
        let shared = &shared;
        let tasks: Vec<CellTask<'_, usize>> =
            (0..3).map(|i| Box::new(move || shared[i] + 1) as CellTask<'_, usize>).collect();
        assert_eq!(CellPool::with_threads(2).run_values(tasks), vec![11, 21, 31]);
    }

    #[test]
    fn worker_ids_are_within_pool_width() {
        let results = CellPool::with_threads(3).run(square_tasks(16));
        assert!(results.iter().all(|r| r.worker < 3));
        assert!(results.iter().all(|r| r.wall_s >= 0.0));
    }
}
