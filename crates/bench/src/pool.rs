//! Deterministic parallel execution of independent benchmark cells.
//!
//! The paper's evaluation is a large matrix of independent simulations
//! (memory families × policies × workloads); [`CellPool`] executes such a
//! matrix on a work-stealing pool of scoped threads and hands results back
//! in canonical submission order, so tables, digests, and reports are
//! byte-identical at any thread count. `NDPX_THREADS` controls the width
//! (default: all available cores); `1` runs every cell inline on the
//! calling thread in submission order — exactly the historical serial
//! behaviour.
//!
//! Cells are panic-isolated: a panicking cell is caught on its worker,
//! optionally re-executed per [`RetryPolicy`] (`NDPX_CELL_RETRIES`), and
//! reported as a [`CellOutcome`] — one exploding cell can never abort its
//! siblings or lose the rest of a long sweep.

#![deny(clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use ndpx_sim::{ndpx_info, ndpx_warn};

/// One unit of pool work. Boxed so heterogeneous cells (NDP runs, host
/// baselines, tweaked sweeps) can share a matrix; the lifetime lets tasks
/// borrow shared immutable state such as a trace cache. `Fn` (not `FnOnce`)
/// so a panicked attempt can be re-executed under a [`RetryPolicy`].
pub type CellTask<'a, T> = Box<dyn Fn() -> T + Send + 'a>;

/// The outcome of one cell, tagged with where and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult<T> {
    /// The task's return value.
    pub value: T,
    /// Index of the worker thread that executed the cell (0 when serial).
    pub worker: usize,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_s: f64,
}

/// How one cell's execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The first attempt returned a value.
    Ok(T),
    /// A retry returned a value after `attempts - 1` panicked attempts.
    Retried {
        /// The successful attempt's return value.
        value: T,
        /// Total attempts, including the successful one.
        attempts: u32,
    },
    /// Every attempt panicked; the cell has no value.
    Panicked {
        /// Total attempts, all panicked.
        attempts: u32,
        /// The last panic payload (best-effort string rendering).
        message: String,
    },
}

impl<T> CellOutcome<T> {
    /// The cell's value, if any attempt succeeded.
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::Retried { value: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Consumes the outcome into its value, if any attempt succeeded.
    pub fn into_value(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::Retried { value: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// True when every attempt panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Panicked { .. })
    }

    /// Number of execution attempts the cell consumed.
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Ok(_) => 1,
            CellOutcome::Retried { attempts, .. } | CellOutcome::Panicked { attempts, .. } => {
                *attempts
            }
        }
    }
}

/// One completed cell: its [`CellOutcome`] plus scheduling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCompletion<T> {
    /// How the cell ended.
    pub outcome: CellOutcome<T>,
    /// Index of the worker thread that executed the cell (0 when serial).
    pub worker: usize,
    /// Wall-clock seconds across every attempt of the cell.
    pub wall_s: f64,
}

/// How panicked cells are re-executed before being reported as failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-executions allowed after the first panicked attempt.
    pub retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// subsequent retry. `0` retries immediately.
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// Default backoff before the first retry.
    pub const DEFAULT_BACKOFF_MS: u64 = 100;

    /// No retries: a panicked cell fails on its first attempt.
    pub const fn none() -> Self {
        RetryPolicy { retries: 0, backoff_ms: 0 }
    }

    /// `retries` re-executions with the default doubling backoff.
    pub const fn with_retries(retries: u32) -> Self {
        RetryPolicy { retries, backoff_ms: Self::DEFAULT_BACKOFF_MS }
    }

    /// Reads `NDPX_CELL_RETRIES` (default: no retries).
    pub fn from_env() -> Self {
        Self::with_retries(Self::parse(ndpx_sim::knobs::CELL_RETRIES.raw().as_deref()))
    }

    /// Parses a retry-count override; `None` and unparsable values map to
    /// zero. Pure so tests need not touch the (process-global, racy)
    /// environment.
    pub fn parse(value: Option<&str>) -> u32 {
        value.and_then(|v| v.trim().parse::<u32>().ok()).unwrap_or(0)
    }

    /// Backoff before retry number `retry` (1-based), capped at 32× base.
    fn backoff_before(self, retry: u32) -> std::time::Duration {
        let factor = 1u64 << (retry - 1).min(5);
        std::time::Duration::from_millis(self.backoff_ms.saturating_mul(factor))
    }
}

/// Best-effort string rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked. Pool
/// state stays consistent under poisoning: slots hold plain data, and every
/// cell body already runs under `catch_unwind`.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One attempt of a cell body under `catch_unwind`.
fn attempt_cell<T>(task: &(dyn Fn() -> T + Send + '_)) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(task)).map_err(|p| panic_message(p.as_ref()))
}

/// A panicked cell parked until its backoff deadline. The task rides along
/// so any worker can re-execute it once due; parking (instead of sleeping
/// in place) keeps the worker free to run sibling cells through the
/// backoff window.
struct PendingRetry<'env, T> {
    /// Submission index of the cell.
    idx: usize,
    task: CellTask<'env, T>,
    /// Panicked attempts so far.
    attempts: u32,
    /// Earliest instant the next attempt may start.
    due: Instant,
    /// First-attempt start: `wall_s` spans every attempt, backoff included.
    t0: Instant,
}

/// Decides what a failed attempt becomes: a final [`CellOutcome::Panicked`]
/// once the budget is spent, or a parked retry stamped with its backoff
/// deadline.
fn park_or_fail<'env, T>(
    retry: RetryPolicy,
    idx: usize,
    task: CellTask<'env, T>,
    failed_attempts: u32,
    t0: Instant,
    message: String,
) -> Result<PendingRetry<'env, T>, CellOutcome<T>> {
    if failed_attempts > retry.retries {
        return Err(CellOutcome::Panicked { attempts: failed_attempts, message });
    }
    let backoff = retry.backoff_before(failed_attempts);
    ndpx_warn!(
        "cell {idx} attempt {failed_attempts}/{} panicked ({message}); retry due in {backoff:?}",
        retry.retries + 1
    );
    Ok(PendingRetry { idx, task, attempts: failed_attempts, due: Instant::now() + backoff, t0 })
}

/// Index of the next parked entry to serve: earliest deadline, submission
/// index as the tiebreak. `due_only` restricts to entries already due.
fn next_parked<T>(parked: &[PendingRetry<'_, T>], due_only: Option<Instant>) -> Option<usize> {
    parked
        .iter()
        .enumerate()
        .filter(|(_, e)| due_only.is_none_or(|now| e.due <= now))
        .min_by_key(|(_, e)| (e.due, e.idx))
        .map(|(p, _)| p)
}

/// The host's available parallelism (1 when it cannot be queried).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The resolved thread plan for a pooled run: what was requested, what the
/// host offers, and whether honoring the request oversubscribes the
/// machine.
///
/// The default (no `NDPX_THREADS`, zero, or unparsable) clamps to
/// [`host_cpus`], so an unconfigured run never oversubscribes. An explicit
/// request is honored even past the host width — digest checks deliberately
/// run `threads=4` on narrow CI boxes — but the report marks such runs
/// `oversubscribed` so their wall clocks are not read as scaling data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Worker count the pool will actually use.
    pub requested: usize,
    /// Host parallelism at resolution time.
    pub host_cpus: usize,
}

impl ThreadPlan {
    /// Resolves the plan from `NDPX_THREADS`.
    pub fn from_env() -> Self {
        Self::parse(ndpx_sim::knobs::THREADS.raw().as_deref())
    }

    /// Pure resolution for tests: explicit `n >= 1` is honored, anything
    /// else clamps to the host width.
    pub fn parse(value: Option<&str>) -> Self {
        let host = host_cpus();
        match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => ThreadPlan { requested: n, host_cpus: host },
            _ => ThreadPlan { requested: host, host_cpus: host },
        }
    }

    /// True when the request exceeds the host's parallelism.
    pub fn oversubscribed(&self) -> bool {
        self.requested > self.host_cpus
    }

    /// A pool honoring the request.
    pub fn pool(&self) -> CellPool {
        CellPool::with_threads(self.requested)
    }
}

/// A scoped work-stealing thread pool over independent cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPool {
    threads: usize,
}

impl CellPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        CellPool { threads: threads.max(1) }
    }

    /// Reads `NDPX_THREADS` (default: available parallelism, via
    /// [`ThreadPlan`]).
    pub fn from_env() -> Self {
        ThreadPlan::from_env().pool()
    }

    /// Parses a thread-count override; `None`, zero, and unparsable values
    /// map to the machine's available parallelism. Pure so tests need not
    /// touch the (process-global, racy) environment.
    pub fn parse(value: Option<&str>) -> usize {
        ThreadPlan::parse(value).requested
    }

    /// The configured worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Executes every task and returns completions in submission order,
    /// never propagating a cell panic.
    ///
    /// With one thread the tasks run inline, in order, with no thread
    /// machinery. Otherwise workers claim cells from a shared counter
    /// (cheap work stealing: long cells never block the queue behind them)
    /// and deposit completions into per-cell slots, so the output order
    /// never depends on scheduling. Each cell runs under `catch_unwind` and
    /// is re-executed per `retry`, so a panicking cell is reported as
    /// [`CellOutcome::Panicked`] while every sibling still completes.
    ///
    /// Retry backoff never blocks execution: a panicked cell is *parked*
    /// with a deadline instead of sleeping on its worker, fresh cells keep
    /// flowing through the backoff window, and due retries are served in
    /// deadline order (submission index as the tiebreak). A thread only
    /// sleeps when it has literally nothing else runnable.
    pub fn run_cells<'env, T: Send>(
        self,
        retry: RetryPolicy,
        tasks: Vec<CellTask<'env, T>>,
    ) -> Vec<CellCompletion<T>> {
        let n = tasks.len();
        if self.threads == 1 || n <= 1 {
            return Self::run_cells_serial(retry, tasks);
        }
        let slots: Vec<Mutex<Option<CellTask<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<CellCompletion<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let outstanding = AtomicUsize::new(n);
        let parked: Mutex<Vec<PendingRetry<'env, T>>> = Mutex::new(Vec::new());
        let wakeup = std::sync::Condvar::new();
        std::thread::scope(|scope| {
            for worker in 0..self.threads.min(n) {
                let (slots, results) = (&slots, &results);
                let (next, outstanding) = (&next, &outstanding);
                let (parked, wakeup) = (&parked, &wakeup);
                let complete = move |idx: usize, outcome: CellOutcome<T>, t0: Instant| {
                    *lock_or_recover(&results[idx]) = Some(CellCompletion {
                        outcome,
                        worker,
                        wall_s: t0.elapsed().as_secs_f64(),
                    });
                    if outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                        wakeup.notify_all();
                    }
                };
                scope.spawn(move || loop {
                    // 1. A due retry beats everything (it has waited).
                    let due = {
                        let mut queue = lock_or_recover(parked);
                        next_parked(&queue, Some(Instant::now())).map(|p| queue.remove(p))
                    };
                    if let Some(entry) = due {
                        let attempts = entry.attempts + 1;
                        match attempt_cell(entry.task.as_ref()) {
                            Ok(value) => complete(
                                entry.idx,
                                CellOutcome::Retried { value, attempts },
                                entry.t0,
                            ),
                            Err(msg) => match park_or_fail(
                                retry, entry.idx, entry.task, attempts, entry.t0, msg,
                            ) {
                                Ok(again) => {
                                    lock_or_recover(parked).push(again);
                                    wakeup.notify_all();
                                }
                                Err(outcome) => complete(entry.idx, outcome, entry.t0),
                            },
                        }
                        continue;
                    }
                    // 2. Claim a fresh cell.
                    if next.load(Ordering::Relaxed) < n {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i < n {
                            let Some(task) = lock_or_recover(&slots[i]).take() else {
                                // Each index is handed out exactly once by
                                // the counter; an empty slot is unreachable.
                                continue;
                            };
                            let t0 = Instant::now();
                            match attempt_cell(task.as_ref()) {
                                Ok(value) => complete(i, CellOutcome::Ok(value), t0),
                                Err(msg) => match park_or_fail(retry, i, task, 1, t0, msg) {
                                    Ok(entry) => {
                                        lock_or_recover(parked).push(entry);
                                        wakeup.notify_all();
                                    }
                                    Err(outcome) => complete(i, outcome, t0),
                                },
                            }
                            continue;
                        }
                    }
                    // 3. Nothing runnable. Exit when the matrix is done;
                    // otherwise park until the earliest retry deadline or a
                    // notification (bounded, so a missed notify can only
                    // delay a poll, never deadlock).
                    if outstanding.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let queue = lock_or_recover(parked);
                    let wait = next_parked(&queue, None)
                        .map(|p| queue[p].due.saturating_duration_since(Instant::now()))
                        .unwrap_or(std::time::Duration::from_millis(5));
                    if !wait.is_zero() {
                        let _unused = wakeup.wait_timeout(queue, wait);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                let inner = match slot.into_inner() {
                    Ok(v) => v,
                    Err(poisoned) => poisoned.into_inner(),
                };
                inner.unwrap_or(CellCompletion {
                    outcome: CellOutcome::Panicked {
                        attempts: 0,
                        message: "cell was never executed".to_string(),
                    },
                    worker: 0,
                    wall_s: 0.0,
                })
            })
            .collect()
    }

    /// Serial `run_cells`: fresh cells run inline in submission order, then
    /// parked retries in deadline order. The thread sleeps only once every
    /// fresh cell has finished and the earliest retry is not yet due, so a
    /// backoff can never starve a sibling cell.
    fn run_cells_serial<'env, T: Send>(
        retry: RetryPolicy,
        tasks: Vec<CellTask<'env, T>>,
    ) -> Vec<CellCompletion<T>> {
        let n = tasks.len();
        let mut out: Vec<Option<CellCompletion<T>>> = (0..n).map(|_| None).collect();
        let mut parked: Vec<PendingRetry<'env, T>> = Vec::new();
        let complete = |out: &mut Vec<Option<CellCompletion<T>>>,
                        idx: usize,
                        outcome: CellOutcome<T>,
                        t0: Instant| {
            out[idx] =
                Some(CellCompletion { outcome, worker: 0, wall_s: t0.elapsed().as_secs_f64() });
        };
        for (idx, task) in tasks.into_iter().enumerate() {
            let t0 = Instant::now();
            match attempt_cell(task.as_ref()) {
                Ok(value) => complete(&mut out, idx, CellOutcome::Ok(value), t0),
                Err(msg) => match park_or_fail(retry, idx, task, 1, t0, msg) {
                    Ok(entry) => parked.push(entry),
                    Err(outcome) => complete(&mut out, idx, outcome, t0),
                },
            }
        }
        while let Some(pos) = next_parked(&parked, None) {
            let entry = parked.remove(pos);
            let now = Instant::now();
            if entry.due > now {
                std::thread::sleep(entry.due - now);
            }
            let attempts = entry.attempts + 1;
            match attempt_cell(entry.task.as_ref()) {
                Ok(value) => {
                    complete(
                        &mut out,
                        entry.idx,
                        CellOutcome::Retried { value, attempts },
                        entry.t0,
                    );
                }
                Err(msg) => {
                    match park_or_fail(retry, entry.idx, entry.task, attempts, entry.t0, msg) {
                        Ok(again) => parked.push(again),
                        Err(outcome) => complete(&mut out, entry.idx, outcome, entry.t0),
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or(CellCompletion {
                    outcome: CellOutcome::Panicked {
                        attempts: 0,
                        message: "cell was never executed".to_string(),
                    },
                    worker: 0,
                    wall_s: 0.0,
                })
            })
            .collect()
    }

    /// Executes every task and returns their results in submission order.
    ///
    /// Panic-isolated compatibility wrapper over [`CellPool::run_cells`]
    /// with the environment's [`RetryPolicy`]: every cell completes even if
    /// some panic, and the pool panics only *after* the whole matrix has
    /// run, naming each permanently failed cell.
    ///
    /// # Panics
    ///
    /// At the end of the run, if any cell exhausted its retries.
    pub fn run<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<CellResult<T>> {
        unwrap_completions(self.run_cells(RetryPolicy::from_env(), tasks))
    }

    /// [`CellPool::run`] without the per-cell metadata.
    ///
    /// # Panics
    ///
    /// At the end of the run, if any cell exhausted its retries.
    pub fn run_values<'env, T: Send>(self, tasks: Vec<CellTask<'env, T>>) -> Vec<T> {
        self.run(tasks).into_iter().map(|r| r.value).collect()
    }

    /// [`CellPool::run_cells`] with progress heartbeats and a slow-cell
    /// watchdog.
    ///
    /// Each finished cell may emit one throttled heartbeat line (info level,
    /// so silent unless `NDPX_LOG=info`); after the matrix completes, cells
    /// whose wall clock exceeded `monitor.slow_mult` × the median are named
    /// at warn level. Monitoring never changes what runs or the order results
    /// come back in — it only observes.
    pub fn run_cells_monitored<'env, T: Send>(
        self,
        monitor: &MonitorConfig,
        retry: RetryPolicy,
        tasks: Vec<CellTask<'env, T>>,
    ) -> Vec<CellCompletion<T>> {
        let n = tasks.len();
        let t0 = Instant::now();
        let done = AtomicUsize::new(0);
        let last_beat_ms = AtomicU64::new(0);
        let beat_ms = monitor.heartbeat_secs.saturating_mul(1000);
        let wrapped: Vec<CellTask<'_, T>> = tasks
            .into_iter()
            .map(|task| {
                let (done, last_beat_ms) = (&done, &last_beat_ms);
                let label = monitor.label.as_str();
                Box::new(move || {
                    let value = task();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if beat_ms > 0 {
                        let now_ms = t0.elapsed().as_millis() as u64;
                        let prev = last_beat_ms.load(Ordering::Relaxed);
                        let due = finished == n || now_ms >= prev.saturating_add(beat_ms);
                        if due
                            && last_beat_ms
                                .compare_exchange(
                                    prev,
                                    now_ms,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            ndpx_info!(
                                "{label}: {finished}/{n} cells done in {:.1}s",
                                now_ms as f64 / 1e3
                            );
                        }
                    }
                    value
                }) as CellTask<'_, T>
            })
            .collect();
        let completions = self.run_cells(retry, wrapped);
        let walls: Vec<f64> = completions.iter().map(|r| r.wall_s).collect();
        for i in slow_cells(&walls, monitor.slow_mult) {
            let name = monitor.names.get(i).map_or("?", |s| s.as_str());
            ndpx_warn!(
                "{}: slow cell {name} took {:.2}s ({:.1}x the {:.2}s median) on worker {}",
                monitor.label,
                walls[i],
                walls[i] / median(&walls).max(1e-9),
                median(&walls),
                completions[i].worker
            );
        }
        completions
    }

    /// [`CellPool::run`] with the monitoring envelope of
    /// [`CellPool::run_cells_monitored`].
    ///
    /// # Panics
    ///
    /// At the end of the run, if any cell exhausted its retries.
    pub fn run_monitored<'env, T: Send>(
        self,
        monitor: &MonitorConfig,
        tasks: Vec<CellTask<'env, T>>,
    ) -> Vec<CellResult<T>> {
        unwrap_completions(self.run_cells_monitored(monitor, RetryPolicy::from_env(), tasks))
    }
}

/// Converts completions into plain results, panicking at the *end* if any
/// cell failed permanently — sibling results are all computed first, so a
/// lost cell never discards the rest of the matrix's work.
fn unwrap_completions<T>(completions: Vec<CellCompletion<T>>) -> Vec<CellResult<T>> {
    let failed: Vec<String> = completions
        .iter()
        .enumerate()
        .filter_map(|(i, c)| match &c.outcome {
            CellOutcome::Panicked { message, .. } => Some(format!("cell {i}: {message}")),
            _ => None,
        })
        .collect();
    assert!(
        failed.is_empty(),
        "{} of {} cells failed permanently after retries: {}",
        failed.len(),
        completions.len(),
        failed.join("; ")
    );
    completions
        .into_iter()
        .map(|c| {
            let (worker, wall_s) = (c.worker, c.wall_s);
            match c.outcome.into_value() {
                Some(value) => CellResult { value, worker, wall_s },
                None => unreachable!("failed cells were rejected above"),
            }
        })
        .collect()
}

/// Configuration for [`CellPool::run_monitored`]: a run label, per-cell
/// names (for the watchdog), the heartbeat throttle, and the slow-cell
/// threshold multiple.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Run label prefixed to every heartbeat/watchdog line.
    pub label: String,
    /// Cell names in submission order (watchdog lines name cells by these).
    pub names: Vec<String>,
    /// Minimum seconds between heartbeat lines; `0` disables heartbeats.
    pub heartbeat_secs: u64,
    /// Watchdog threshold as a multiple of the median cell wall clock;
    /// `0.0` disables the watchdog.
    pub slow_mult: f64,
}

impl MonitorConfig {
    /// A monitor with the default heartbeat (5 s) and watchdog (4× median).
    pub fn new(label: impl Into<String>, names: Vec<String>) -> Self {
        MonitorConfig { label: label.into(), names, heartbeat_secs: 5, slow_mult: 4.0 }
    }

    /// Reads `NDPX_HEARTBEAT_SECS` and `NDPX_SLOW_MULT` overrides.
    pub fn from_env(label: impl Into<String>, names: Vec<String>) -> Self {
        let mut m = Self::new(label, names);
        if let Some(secs) = monitor_knob(&ndpx_sim::knobs::HEARTBEAT_SECS) {
            m.heartbeat_secs = secs as u64;
        }
        if let Some(mult) = monitor_knob(&ndpx_sim::knobs::SLOW_MULT) {
            m.slow_mult = mult;
        }
        m
    }
}

/// Monitor overrides must be finite and non-negative; anything else keeps
/// the default.
fn monitor_knob(knob: &ndpx_sim::knobs::Knob) -> Option<f64> {
    knob.f64_opt().filter(|v| v.is_finite() && *v >= 0.0)
}

/// Wall clocks below this never trigger the watchdog: at test scale a cell
/// runs for milliseconds, where scheduler noise routinely exceeds any
/// multiple of the median.
const SLOW_FLOOR_S: f64 = 0.1;

/// Median of `walls` (0 when empty). Ties toward the lower middle element.
fn median(walls: &[f64]) -> f64 {
    if walls.is_empty() {
        return 0.0;
    }
    let mut sorted = walls.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() - 1) / 2]
}

/// Indices of cells whose wall clock exceeds `mult` × the median (and the
/// [`SLOW_FLOOR_S`] noise floor), in submission order. Pure so the watchdog
/// policy is testable without timing a real pool.
pub fn slow_cells(walls: &[f64], mult: f64) -> Vec<usize> {
    if mult <= 0.0 || walls.len() < 2 {
        return Vec::new();
    }
    let threshold = (median(walls) * mult).max(SLOW_FLOOR_S);
    walls.iter().enumerate().filter(|(_, &w)| w > threshold).map(|(i, _)| i).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn square_tasks(n: usize) -> Vec<CellTask<'static, usize>> {
        (0..n).map(|i| Box::new(move || i * i) as CellTask<'static, usize>).collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 9] {
            let out = CellPool::with_threads(threads).run_values(square_tasks(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn serial_pool_runs_on_calling_thread() {
        let id = std::thread::current().id();
        let tasks: Vec<CellTask<'_, bool>> =
            (0..4).map(|_| Box::new(move || std::thread::current().id() == id) as _).collect();
        assert!(CellPool::with_threads(1).run_values(tasks).into_iter().all(|same| same));
    }

    #[test]
    fn parse_thread_counts() {
        assert_eq!(CellPool::parse(Some("4")), 4);
        assert_eq!(CellPool::parse(Some("1")), 1);
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(CellPool::parse(None), auto);
        assert_eq!(CellPool::parse(Some("0")), auto);
        assert_eq!(CellPool::parse(Some("bogus")), auto);
    }

    #[test]
    fn thread_plan_clamps_default_and_marks_oversubscription() {
        let host = host_cpus();
        // Unset / zero / garbage requests clamp to the host width and can
        // never oversubscribe.
        for v in [None, Some("0"), Some("bogus")] {
            let plan = ThreadPlan::parse(v);
            assert_eq!(plan.requested, host);
            assert_eq!(plan.host_cpus, host);
            assert!(!plan.oversubscribed());
        }
        // Explicit requests are honored verbatim; past the host width they
        // are flagged, not clamped (digest checks need threads=4 anywhere).
        let wide = ThreadPlan::parse(Some(&(host + 1).to_string()));
        assert_eq!(wide.requested, host + 1);
        assert!(wide.oversubscribed());
        assert_eq!(wide.pool().threads(), host + 1);
        let one = ThreadPlan::parse(Some("1"));
        assert_eq!(one.requested, 1);
        assert!(!one.oversubscribed());
    }

    #[test]
    fn tasks_may_borrow_shared_state() {
        let shared = vec![10usize, 20, 30];
        let shared = &shared;
        let tasks: Vec<CellTask<'_, usize>> =
            (0..3).map(|i| Box::new(move || shared[i] + 1) as CellTask<'_, usize>).collect();
        assert_eq!(CellPool::with_threads(2).run_values(tasks), vec![11, 21, 31]);
    }

    #[test]
    fn worker_ids_are_within_pool_width() {
        let results = CellPool::with_threads(3).run(square_tasks(16));
        assert!(results.iter().all(|r| r.worker < 3));
        assert!(results.iter().all(|r| r.wall_s >= 0.0));
    }

    #[test]
    fn monitored_run_preserves_order_and_results() {
        let names = (0..23).map(|i| format!("cell{i}")).collect();
        let monitor = MonitorConfig::new("test", names);
        for threads in [1, 4] {
            let out = CellPool::with_threads(threads).run_monitored(&monitor, square_tasks(23));
            let values: Vec<usize> = out.into_iter().map(|r| r.value).collect();
            assert_eq!(values, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn panicking_cell_never_aborts_siblings() {
        for threads in [1, 4] {
            let tasks: Vec<CellTask<'static, usize>> = (0..8usize)
                .map(|i| {
                    Box::new(move || {
                        assert!(i != 3, "cell 3 exploded");
                        i * 2
                    }) as CellTask<'static, usize>
                })
                .collect();
            let out = CellPool::with_threads(threads).run_cells(RetryPolicy::none(), tasks);
            assert_eq!(out.len(), 8, "threads={threads}");
            for (i, c) in out.iter().enumerate() {
                if i == 3 {
                    assert!(
                        matches!(&c.outcome,
                            CellOutcome::Panicked { attempts: 1, message } if message.contains("exploded")),
                        "threads={threads}: {:?}",
                        c.outcome
                    );
                } else {
                    assert_eq!(c.outcome.value(), Some(&(i * 2)), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn retries_recover_flaky_cells() {
        let calls = AtomicUsize::new(0);
        let calls = &calls;
        let tasks: Vec<CellTask<'_, u32>> = vec![Box::new(move || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            assert!(n >= 2, "flaky failure {n}");
            7
        })];
        let retry = RetryPolicy { retries: 2, backoff_ms: 0 };
        let out = CellPool::with_threads(1).run_cells(retry, tasks);
        assert_eq!(out[0].outcome, CellOutcome::Retried { value: 7, attempts: 3 });
        assert_eq!(out[0].outcome.attempts(), 3);
    }

    #[test]
    fn retry_exhaustion_reports_last_message() {
        let tasks: Vec<CellTask<'static, u32>> =
            vec![Box::new(|| -> u32 { panic!("always broken") }) as CellTask<'static, u32>];
        let out =
            CellPool::with_threads(1).run_cells(RetryPolicy { retries: 1, backoff_ms: 0 }, tasks);
        assert!(matches!(&out[0].outcome,
            CellOutcome::Panicked { attempts: 2, message } if message.contains("always broken")));
        assert!(out[0].outcome.is_failed());
        assert!(out[0].outcome.value().is_none());
    }

    #[test]
    fn run_panics_at_end_naming_failed_cells() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<CellTask<'static, usize>> = (0..4usize)
                .map(|i| {
                    Box::new(move || {
                        assert!(i != 1, "boom in cell one");
                        i
                    }) as CellTask<'static, usize>
                })
                .collect();
            CellPool::with_threads(2).run(tasks);
        }));
        let payload = caught.expect_err("a failed cell must surface as a final panic");
        let message = panic_message(payload.as_ref());
        assert!(message.contains("1 of 4 cells failed"), "{message}");
        assert!(message.contains("cell 1"), "{message}");
        assert!(message.contains("boom in cell one"), "{message}");
    }

    #[test]
    fn backoff_never_starves_sibling_cells() {
        // A flaky cell with a real backoff must not block the rest of the
        // matrix: by the time its retry runs, every sibling has finished.
        // Holds for the serial inline path and the pooled path alike.
        for threads in [1, 2] {
            let n = 6usize;
            let done = AtomicUsize::new(0);
            let done = &done;
            let tasks: Vec<CellTask<'_, usize>> = (0..n)
                .map(|i| {
                    Box::new(move || {
                        if i == 0 {
                            let seen = done.load(Ordering::SeqCst);
                            assert!(seen >= n - 1, "retried before siblings finished");
                            done.fetch_add(1, Ordering::SeqCst);
                            return 100 + seen;
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                        i
                    }) as CellTask<'_, usize>
                })
                .collect();
            let retry = RetryPolicy { retries: 10, backoff_ms: 20 };
            let out = CellPool::with_threads(threads).run_cells(retry, tasks);
            assert_eq!(out.len(), n, "threads={threads}");
            match &out[0].outcome {
                CellOutcome::Retried { value, attempts } => {
                    assert_eq!(*value, 100 + (n - 1), "threads={threads}");
                    assert!(*attempts >= 2, "threads={threads}");
                }
                other => panic!("threads={threads}: cell 0 must recover via retry: {other:?}"),
            }
            // wall_s spans every attempt, so it covers at least one backoff.
            assert!(out[0].wall_s >= 0.02, "threads={threads}: wall {}", out[0].wall_s);
            for (i, c) in out.iter().enumerate().skip(1) {
                assert_eq!(c.outcome.value(), Some(&i), "threads={threads}");
            }
        }
    }

    #[test]
    fn parked_retries_run_in_deadline_order() {
        // Two flaky cells park with different deadlines; the one with the
        // shorter backoff must be retried first even though it was
        // submitted later.
        let order = Mutex::new(Vec::new());
        let order = &order;
        let fails = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let fails = &fails;
        let tasks: Vec<CellTask<'_, usize>> = (0..2)
            .map(|i| {
                Box::new(move || {
                    if fails[i].fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("first attempt fails");
                    }
                    lock_or_recover(order).push(i);
                    i
                }) as CellTask<'_, usize>
            })
            .collect();
        // Same backoff, so deadlines follow first-attempt order; the
        // submission-index tiebreak keeps equal deadlines deterministic.
        let retry = RetryPolicy { retries: 1, backoff_ms: 10 };
        let out = CellPool::with_threads(1).run_cells(retry, tasks);
        assert!(out.iter().all(|c| matches!(c.outcome, CellOutcome::Retried { .. })));
        assert_eq!(*lock_or_recover(order), vec![0, 1]);
    }

    #[test]
    fn retry_parse_and_backoff() {
        assert_eq!(RetryPolicy::parse(None), 0);
        assert_eq!(RetryPolicy::parse(Some("3")), 3);
        assert_eq!(RetryPolicy::parse(Some(" 2 ")), 2);
        assert_eq!(RetryPolicy::parse(Some("bogus")), 0);
        let p = RetryPolicy::with_retries(8);
        assert_eq!(p.backoff_before(1).as_millis(), 100);
        assert_eq!(p.backoff_before(2).as_millis(), 200);
        // The doubling caps so huge retry budgets cannot sleep for hours.
        assert_eq!(p.backoff_before(40).as_millis(), 3200);
        assert!(RetryPolicy::none().backoff_before(1).is_zero());
    }

    #[test]
    fn watchdog_names_only_outliers() {
        // 1.0s median: the 8.0s cell is past 4x, the 3.0s cell is not.
        let walls = [1.0, 8.0, 1.0, 3.0, 1.0];
        assert_eq!(slow_cells(&walls, 4.0), vec![1]);
        // Millisecond noise stays under the floor even at huge multiples.
        assert_eq!(slow_cells(&[0.001, 0.09, 0.001], 4.0), Vec::<usize>::new());
        // Disabled watchdog never fires.
        assert_eq!(slow_cells(&walls, 0.0), Vec::<usize>::new());
    }

    #[test]
    fn watchdog_single_cell_run_is_quiet() {
        // A single cell has no population to compare against: it is the
        // median, so it can never be an outlier — even when huge.
        assert_eq!(slow_cells(&[99.0], 4.0), Vec::<usize>::new());
        assert_eq!(slow_cells(&[99.0], 0.5), Vec::<usize>::new());
        assert_eq!(slow_cells(&[], 4.0), Vec::<usize>::new());
    }

    #[test]
    fn watchdog_all_equal_walls_are_quiet() {
        // Identical wall clocks mean no outliers at any multiple >= 1; even
        // mult == 1.0 stays quiet because the threshold comparison is
        // strictly greater-than.
        assert_eq!(slow_cells(&[2.5; 8], 4.0), Vec::<usize>::new());
        assert_eq!(slow_cells(&[2.5, 2.5], 1.0), Vec::<usize>::new());
        assert_eq!(slow_cells(&[0.0; 4], 4.0), Vec::<usize>::new());
    }

    #[test]
    fn median_is_lower_middle() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }
}
