//! Deterministic digest of a [`RunReport`].
//!
//! The digest covers every numeric field of the report — makespan,
//! hit/miss counters, the latency breakdown, and the energy breakdown
//! (floats via their bit patterns) — so two runs digest equal iff their
//! simulated results are byte-identical. `perf_gauge` uses it to prove
//! that wall-clock optimisations did not perturb the simulation.

use ndpx_core::stats::{LatComponent, RunReport};

/// splitmix64 finalizer: mixes one word into the running state.
#[inline]
fn mix(state: u64, word: u64) -> u64 {
    let mut z = state.wrapping_add(word).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Digests every numeric field of `r` into one `u64`.
pub fn report_digest(r: &RunReport) -> u64 {
    let mut d = 0x00D1_5EEDu64;
    d = mix(d, r.sim_time.as_ps());
    d = mix(d, r.ops);
    d = mix(d, r.mem_ops);
    d = mix(d, r.l1_hits);
    d = mix(d, r.cache_hits);
    d = mix(d, r.cache_misses);
    d = mix(d, r.local_hits);
    d = mix(d, r.bypass);
    d = mix(d, r.slb_misses);
    d = mix(d, r.metadata_dram);
    for c in LatComponent::ALL {
        d = mix(d, r.breakdown.get(c).as_ps());
    }
    d = mix(d, r.energy.static_.as_pj().to_bits());
    d = mix(d, r.energy.dram.as_pj().to_bits());
    d = mix(d, r.energy.noc.as_pj().to_bits());
    d = mix(d, r.energy.cxl.as_pj().to_bits());
    d = mix(d, r.reconfigs);
    d = mix(d, r.invalidations);
    d = mix(d, r.migrations);
    d = mix(d, r.replicated_fraction.to_bits());
    d
}
