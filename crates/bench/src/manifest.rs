//! Per-run telemetry sidecars: a `metrics.json` manifest and a hierarchical
//! registry dump.
//!
//! When `NDPX_METRICS=<dir>` is set, every monitored bench run writes two
//! deterministic-by-construction documents into `<dir>`:
//!
//! * `<run>.metrics.json` — one record per cell in canonical submission
//!   order: wall clock, worker id, simulated time, ops, events processed,
//!   events per wall-second, and the event-queue high-water mark, plus the
//!   shared trace-cache hit/miss totals.
//! * `<run>.registry.json` — the full hierarchical stat registry of every
//!   cell, nested under its cell key.
//!
//! Simulated fields (sim time, ops, events, queue depth, registries) are
//! byte-identical at any `NDPX_THREADS`; only wall-clock, worker, and the
//! derived events-per-second rates vary run to run.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ndpx_core::stats::RunReport;
use ndpx_workloads::TraceCacheStats;

use crate::pool::{CellCompletion, CellOutcome, CellResult};

/// The telemetry of one finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Cell key (`mem/policy/workload` or `host/workload`).
    pub name: String,
    /// Worker thread that executed the cell.
    pub worker: usize,
    /// Wall-clock seconds on that worker.
    pub wall_s: f64,
    /// Simulated makespan, microseconds.
    pub sim_us: f64,
    /// Operations executed.
    pub ops: u64,
    /// Events processed by the cell's event queue.
    pub engine_events: u64,
    /// Event-queue high-water mark.
    pub peak_queue_depth: u64,
}

impl CellMetrics {
    /// Extracts the metrics of one pooled cell result.
    pub fn from_result(name: impl Into<String>, r: &CellResult<RunReport>) -> Self {
        CellMetrics {
            name: name.into(),
            worker: r.worker,
            wall_s: r.wall_s,
            sim_us: r.value.sim_time.as_us_f64(),
            ops: r.value.ops,
            engine_events: r.value.engine_events,
            peak_queue_depth: r.value.peak_queue_depth,
        }
    }

    /// Events processed per wall-clock second (0 when the clock is zero).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.engine_events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// The manifest of one bench run: every cell's metrics plus pool and
/// trace-cache totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run label (usually the binary name).
    pub run: String,
    /// Pool width the run used.
    pub threads: usize,
    /// Per-cell metrics in canonical submission order.
    pub cells: Vec<CellMetrics>,
    /// Shared trace-cache totals, when a cache was in play.
    pub trace_cache: Option<TraceCacheStats>,
}

impl RunManifest {
    /// Builds a manifest from pooled results. `names` must parallel
    /// `results` (both in submission order).
    ///
    /// # Panics
    ///
    /// Panics if `names` and `results` disagree in length.
    pub fn collect(
        run: impl Into<String>,
        threads: usize,
        names: &[String],
        results: &[CellResult<RunReport>],
        trace_cache: Option<TraceCacheStats>,
    ) -> Self {
        assert_eq!(names.len(), results.len(), "one name per cell");
        let cells = names
            .iter()
            .zip(results)
            .map(|(name, r)| CellMetrics::from_result(name.clone(), r))
            .collect();
        RunManifest { run: run.into(), threads, cells, trace_cache }
    }

    /// Total wall-clock seconds summed over cells.
    pub fn wall_total_s(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_s).sum()
    }

    /// Total events processed over all cells.
    pub fn events_total(&self) -> u64 {
        self.cells.iter().map(|c| c.engine_events).sum()
    }

    /// Largest event-queue high-water mark over all cells.
    pub fn peak_queue_depth(&self) -> u64 {
        self.cells.iter().map(|c| c.peak_queue_depth).max().unwrap_or(0)
    }

    /// Aggregate events per wall-second over the whole run.
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.wall_total_s();
        if wall > 0.0 {
            self.events_total() as f64 / wall
        } else {
            0.0
        }
    }

    /// Renders the manifest (`ndpx-run-manifest-v1`). Hand-rolled like every
    /// other report in the workspace: no JSON dependency.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"ndpx-run-manifest-v1\",");
        let _ = writeln!(s, "  \"run\": \"{}\",", self.run);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"wall_seconds_total\": {:.3},", self.wall_total_s());
        let _ = writeln!(s, "  \"events_total\": {},", self.events_total());
        let _ = writeln!(s, "  \"events_per_sec\": {:.1},", self.events_per_sec());
        let _ = writeln!(s, "  \"peak_queue_depth\": {},", self.peak_queue_depth());
        if let Some(tc) = &self.trace_cache {
            let _ = writeln!(
                s,
                "  \"trace_cache\": {{\"hits\": {}, \"misses\": {}, \"saved_seconds\": {:.3}}},",
                tc.hits,
                tc.misses,
                tc.saved().as_secs_f64()
            );
        }
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"cell\": \"{}\", \"worker\": {}, \"wall_ms\": {:.1}, \"sim_us\": {:.3}, \
                 \"ops\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \"peak_queue_depth\": {}}}{comma}",
                c.name,
                c.worker,
                c.wall_s * 1e3,
                c.sim_us,
                c.ops,
                c.engine_events,
                c.events_per_sec(),
                c.peak_queue_depth
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Renders the registry dump (`ndpx-registry-dump-v1`): every cell's
/// hierarchical stat registry nested under its key, in submission order.
/// A pure function of simulated state, so byte-identical at any thread
/// count.
///
/// # Panics
///
/// Panics if `names` and `reports` disagree in length.
pub fn registry_dump_json(run: &str, names: &[String], reports: &[&RunReport]) -> String {
    assert_eq!(names.len(), reports.len(), "one name per cell");
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"ndpx-registry-dump-v1\",");
    let _ = writeln!(s, "  \"run\": \"{run}\",");
    s.push_str("  \"cells\": {");
    for (i, (name, report)) in names.iter().zip(reports).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    \"{name}\": ");
        report.registry.write_stats_object(&mut s, 4);
    }
    if !names.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("}\n}\n");
    s
}

/// One permanently failed cell, for the failure manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Cell key (`mem/policy/workload` or `host/workload`).
    pub name: String,
    /// Worker thread the last attempt ran on.
    pub worker: usize,
    /// Attempts consumed (all panicked).
    pub attempts: u32,
    /// The last panic payload.
    pub message: String,
}

/// Extracts the permanently failed cells from a completed matrix. `names`
/// must parallel `completions` (both in submission order).
pub fn collect_failures<T>(
    names: &[String],
    completions: &[CellCompletion<T>],
) -> Vec<CellFailure> {
    names
        .iter()
        .zip(completions)
        .filter_map(|(name, c)| match &c.outcome {
            CellOutcome::Panicked { attempts, message } => Some(CellFailure {
                name: name.clone(),
                worker: c.worker,
                attempts: *attempts,
                message: message.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// Renders the failure manifest (`ndpx-failure-manifest-v1`): every cell
/// that exhausted its retries, in submission order, with the total cell
/// count for context.
pub fn failure_manifest_json(run: &str, total_cells: usize, failures: &[CellFailure]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"ndpx-failure-manifest-v1\",");
    let _ = writeln!(s, "  \"run\": \"{run}\",");
    let _ = writeln!(s, "  \"cells_total\": {total_cells},");
    let _ = writeln!(s, "  \"cells_failed\": {},", failures.len());
    s.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"cell\": \"{}\", \"worker\": {}, \"attempts\": {}, \"message\": \"{}\"}}{comma}",
            f.name,
            f.worker,
            f.attempts,
            escape(&f.message)
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Escapes a message for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The sidecar output directory: `NDPX_METRICS` when set and non-empty.
pub fn metrics_dir() -> Option<PathBuf> {
    ndpx_sim::knobs::METRICS.path().map(PathBuf::from)
}

/// A run label safe to embed in a file name: every byte outside
/// `[A-Za-z0-9._-]` becomes `-`.
pub fn sanitize(run: &str) -> String {
    run.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect()
}

/// Writes `<run>.metrics.json` and `<run>.registry.json` into `dir`,
/// creating it if needed. Returns the manifest path.
///
/// # Errors
///
/// Propagates filesystem errors (callers downgrade them to warnings: the
/// sidecars are observability, never part of the result).
pub fn write_sidecars(
    dir: &Path,
    manifest: &RunManifest,
    names: &[String],
    reports: &[&RunReport],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let base = sanitize(&manifest.run);
    let metrics_path = dir.join(format!("{base}.metrics.json"));
    std::fs::write(&metrics_path, manifest.to_json())?;
    let dump = registry_dump_json(&manifest.run, names, reports);
    std::fs::write(dir.join(format!("{base}.registry.json")), dump)?;
    Ok(metrics_path)
}

/// The one-call sidecar hook every monitored binary uses: when
/// `NDPX_METRICS` is set, builds the manifest and writes both sidecars,
/// logging the destination at info level and any filesystem failure at warn
/// level. A no-op (no allocation, no I/O) when the variable is unset.
pub fn emit(
    run: &str,
    threads: usize,
    names: &[String],
    results: &[CellResult<RunReport>],
    trace_cache: Option<TraceCacheStats>,
) {
    let Some(dir) = metrics_dir() else { return };
    let manifest = RunManifest::collect(run, threads, names, results, trace_cache);
    let reports: Vec<&RunReport> = results.iter().map(|r| &r.value).collect();
    match write_sidecars(&dir, &manifest, names, &reports) {
        Ok(path) => ndpx_sim::ndpx_info!("{run}: wrote {}", path.display()),
        Err(e) => ndpx_sim::ndpx_warn!("{run}: cannot write metrics under {}: {e}", dir.display()),
    }
}

/// [`emit`] for a panic-isolated matrix: writes the metrics and registry
/// sidecars over the cells that *succeeded* (so partial results survive a
/// lost cell) and, when any cell failed permanently, a
/// `<run>.failures.json` failure manifest alongside them. Like [`emit`],
/// a no-op when `NDPX_METRICS` is unset.
pub fn emit_outcomes(
    run: &str,
    threads: usize,
    names: &[String],
    completions: &[CellCompletion<RunReport>],
    trace_cache: Option<TraceCacheStats>,
) {
    assert_eq!(names.len(), completions.len(), "one name per cell");
    let Some(dir) = metrics_dir() else { return };
    let mut ok_names = Vec::with_capacity(names.len());
    let mut ok_results = Vec::with_capacity(names.len());
    for (name, c) in names.iter().zip(completions) {
        if let Some(report) = c.outcome.value() {
            ok_names.push(name.clone());
            ok_results.push(CellResult {
                value: report.clone(),
                worker: c.worker,
                wall_s: c.wall_s,
            });
        }
    }
    let manifest = RunManifest::collect(run, threads, &ok_names, &ok_results, trace_cache);
    let reports: Vec<&RunReport> = ok_results.iter().map(|r| &r.value).collect();
    match write_sidecars(&dir, &manifest, &ok_names, &reports) {
        Ok(path) => ndpx_sim::ndpx_info!("{run}: wrote {}", path.display()),
        Err(e) => ndpx_sim::ndpx_warn!("{run}: cannot write metrics under {}: {e}", dir.display()),
    }
    let failures = collect_failures(names, completions);
    if !failures.is_empty() {
        let path = dir.join(format!("{}.failures.json", sanitize(run)));
        let doc = failure_manifest_json(run, completions.len(), &failures);
        match std::fs::write(&path, doc) {
            Ok(()) => ndpx_sim::ndpx_warn!(
                "{run}: {} of {} cells failed; manifest at {}",
                failures.len(),
                completions.len(),
                path.display()
            ),
            Err(e) => {
                ndpx_sim::ndpx_warn!(
                    "{run}: cannot write failure manifest at {}: {e}",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpx_core::config::PolicyKind;
    use ndpx_sim::time::Time;

    fn result(sim_us: u64, events: u64, peak: u64, wall_s: f64) -> CellResult<RunReport> {
        let mut report = RunReport {
            policy: PolicyKind::NdpExt,
            workload: "test".into(),
            sim_time: Time::from_ns(sim_us * 1000),
            ops: 100,
            mem_ops: 0,
            l1_hits: 0,
            cache_hits: 0,
            cache_misses: 0,
            local_hits: 0,
            bypass: 0,
            slb_misses: 0,
            metadata_dram: 0,
            breakdown: Default::default(),
            energy: Default::default(),
            reconfigs: 0,
            invalidations: 0,
            migrations: 0,
            replicated_fraction: 0.0,
            access_latency: Default::default(),
            engine_events: events,
            peak_queue_depth: peak,
            registry: Default::default(),
        };
        report.registry.scope("engine").count("events", events);
        CellResult { value: report, worker: 1, wall_s }
    }

    #[test]
    fn manifest_aggregates_and_renders() {
        let results = vec![result(10, 200, 16, 0.5), result(20, 600, 32, 0.5)];
        let names = vec!["a/b/c".to_string(), "a/b/d".to_string()];
        let m = RunManifest::collect("fig", 4, &names, &results, None);
        assert_eq!(m.events_total(), 800);
        assert_eq!(m.peak_queue_depth(), 32);
        assert!((m.events_per_sec() - 800.0).abs() < 1e-9);
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"ndpx-run-manifest-v1\""));
        assert!(json.contains("\"cell\": \"a/b/d\""));
        assert!(json.contains("\"peak_queue_depth\": 32"));
    }

    #[test]
    fn registry_dump_nests_cells_in_order() {
        let results = [result(10, 200, 16, 0.5), result(20, 600, 32, 0.5)];
        let names = vec!["x".to_string(), "y".to_string()];
        let reports: Vec<&RunReport> = results.iter().map(|r| &r.value).collect();
        let dump = registry_dump_json("fig", &names, &reports);
        assert!(dump.contains("\"schema\": \"ndpx-registry-dump-v1\""));
        let x = dump.find("\"x\": {").expect("first cell");
        let y = dump.find("\"y\": {").expect("second cell");
        assert!(x < y, "cells render in submission order");
        assert!(dump.contains("\"engine.events\": 200"));
        assert!(dump.contains("\"engine.events\": 600"));
    }

    #[test]
    fn failure_manifest_lists_failed_cells_only() {
        use crate::pool::{CellCompletion, CellOutcome};
        let ok = result(10, 200, 16, 0.5);
        let completions = vec![
            CellCompletion { outcome: CellOutcome::Ok(ok.value), worker: 0, wall_s: 0.5 },
            CellCompletion {
                outcome: CellOutcome::Panicked { attempts: 3, message: "tag \"x\" died".into() },
                worker: 1,
                wall_s: 0.1,
            },
        ];
        let names = vec!["hbm/NdpExt/pr".to_string(), "hbm/NdpExt/mv".to_string()];
        let failures = collect_failures(&names, &completions);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "hbm/NdpExt/mv");
        assert_eq!(failures[0].attempts, 3);
        let doc = failure_manifest_json("fig", completions.len(), &failures);
        assert!(doc.contains("\"schema\": \"ndpx-failure-manifest-v1\""));
        assert!(doc.contains("\"cells_total\": 2"));
        assert!(doc.contains("\"cells_failed\": 1"));
        assert!(doc.contains("\"cell\": \"hbm/NdpExt/mv\""));
        assert!(doc.contains("tag \\\"x\\\" died"), "messages are JSON-escaped");
        assert!(!doc.contains("hbm/NdpExt/pr\", \"worker"), "successful cells stay out");
    }

    #[test]
    fn sanitize_keeps_safe_chars_only() {
        assert_eq!(sanitize("fig05_overall"), "fig05_overall");
        assert_eq!(sanitize("ablation/no-replication"), "ablation-no-replication");
        assert_eq!(sanitize("a b\"c"), "a-b-c");
    }
}
