//! Figure 8(b): NDPExt speedup over Nexus at different CXL link latencies.
//!
//! Expected shape (paper): higher link latency makes misses to the extended
//! memory dearer, so NDPExt's better placement pays off more — speedups grow
//! from ≈1.33× at 50 ns to ≈1.50× at 400 ns.

use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{geomean, run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_sim::time::Time;
use ndpx_workloads::REPRESENTATIVE_WORKLOADS;

fn main() {
    let scale = BenchScale::from_env();
    // Link latency changes the configuration, not the trace: one cache
    // serves every point of the sweep.
    let cache = TraceCache::from_env();
    println!("# Fig 8b: NDPExt speedup over Nexus vs CXL link latency");
    println!("{:>10} {:>10}", "latency_ns", "speedup");
    for &ns in &[50u64, 100, 200, 400] {
        let specs: Vec<RunSpec> = REPRESENTATIVE_WORKLOADS
            .iter()
            .flat_map(|&w| {
                [PolicyKind::Nexus, PolicyKind::NdpExt].into_iter().map(move |p| {
                    RunSpec::new(MemKind::Hbm, p, w, scale)
                        .with_tweak(move |cfg| cfg.cxl = cfg.cxl.with_latency(Time::from_ns(ns)))
                })
            })
            .collect();
        let reports = run_many_with(CellPool::from_env(), &cache, &specs);
        let ratios: Vec<f64> = reports
            .chunks(2)
            .map(|pair| pair[0].sim_time.as_ps() as f64 / pair[1].sim_time.as_ps() as f64)
            .collect();
        println!("{ns:>10} {:>10.2}", geomean(ratios));
    }
}
