//! CI chaos-smoke: end-to-end proof that scheduled hard failures degrade
//! gracefully instead of wedging or diverging.
//!
//! Requires `NDPX_CHAOS` in the environment (the CI job sets a schedule
//! that includes a mid-run stack loss) and then:
//!
//! 1. runs a 6-cell matrix (every policy on HBM/pagerank) twice — serial
//!    and on a 4-wide [`CellPool`] — asserting byte-identical digests and
//!    registry dumps, i.e. the sim-time chaos schedule is thread-count
//!    invariant;
//! 2. asserts the schedule actually fired (`chaos.applied > 0`), forced
//!    reconfigurations re-placed work onto survivors
//!    (`chaos.forced_reconfigs > 0`, `chaos.dead_resident_streams == 0`),
//!    and every applied event carries a recovery record
//!    (`fault.recovery.e##.ttr_ps`), so a silently-ignored schedule cannot
//!    pass.
//!
//! The pooled leg runs through [`run_many_monitored`], so the
//! `metrics.json` + registry-dump sidecars land under `NDPX_METRICS` for
//! artifact upload.
//!
//! Exit codes: 0 on success, 2 on missing/empty `NDPX_CHAOS`, 1 on any
//! assertion failure (via panic).

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::cell_key;
use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{run_many_monitored, run_many_with, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_sim::chaos::ChaosConfig;
use ndpx_sim::telemetry::StatValue;
use ndpx_workloads::TraceCache;

const SMOKE_OPS: u64 = 20_000;

fn specs() -> Vec<RunSpec> {
    PolicyKind::ALL
        .iter()
        .map(|&policy| RunSpec {
            ops_per_core: SMOKE_OPS,
            ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test)
        })
        .collect()
}

fn count(r: &RunReport, path: &str) -> u64 {
    r.registry.get(path).and_then(StatValue::as_count).unwrap_or(0)
}

fn main() {
    let ccfg = ChaosConfig::from_env();
    if !ccfg.enabled() {
        eprintln!(
            "chaos_smoke: {} is unset or empty; nothing to smoke-test",
            ndpx_sim::knobs::CHAOS.name
        );
        std::process::exit(2);
    }
    println!("chaos_smoke: schedule has {} event(s)", ccfg.events.len());

    // Phase 1: thread-count invariance. The schedule reaches every cell
    // through the environment (SystemConfig inherits ChaosConfig::from_env())
    // and is keyed on sim time, so worker count must not matter. The pooled
    // leg is monitored, which writes the NDPX_METRICS sidecars.
    let matrix = specs();
    let serial = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &matrix);
    let pooled =
        run_many_monitored("chaos_smoke", CellPool::with_threads(4), &TraceCache::new(), &matrix);
    for ((spec, a), b) in matrix.iter().zip(&serial).zip(&pooled) {
        let key = cell_key(spec);
        assert_eq!(
            report_digest(a),
            report_digest(b),
            "{key}: digest differs between 1 and 4 threads under a fixed chaos schedule"
        );
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "{key}: registry dump differs between 1 and 4 threads under a fixed chaos schedule"
        );
    }
    println!("chaos_smoke: {} cells thread-invariant under the chaos schedule", matrix.len());

    // Phase 2: the schedule must actually escalate and recover. Every
    // applied event leaves a recovery record; no stream may stay resident
    // on a dead stack; the engine must have drained to completion (the
    // runs returning at all rules out a deadlock).
    for (spec, r) in matrix.iter().zip(&serial) {
        let key = cell_key(spec);
        assert!(r.sim_time.as_ps() > 0, "{key}: run must complete under chaos");
        let applied = count(r, "chaos.applied");
        assert!(applied > 0, "{key}: the chaos schedule never fired; check event times");
        assert!(
            count(r, "chaos.forced_reconfigs") > 0,
            "{key}: failures must force re-placement onto survivors"
        );
        assert_eq!(
            count(r, "chaos.dead_resident_streams"),
            0,
            "{key}: no stream may end the run resident on a dead unit"
        );
        for e in 0..applied {
            // Windowed failures report their outage as TTR; permanent ones
            // report the re-placement drain, which a policy with nothing to
            // move may legitimately finish in zero time — so assert the
            // record exists, not a particular magnitude.
            let ttr = format!("fault.recovery.e{e:02}.ttr_ps");
            assert!(
                r.registry.get(&ttr).is_some(),
                "{key}: applied event {e} must carry a recovery record"
            );
        }
    }
    let total_applied: u64 = serial.iter().map(|r| count(r, "chaos.applied")).sum();
    let total_aborted: u64 = serial.iter().map(|r| count(r, "chaos.ops_aborted")).sum();
    println!("chaos_smoke: {total_applied} events applied, {total_aborted} ops aborted in flight");
    println!("chaos_smoke: OK");
}
