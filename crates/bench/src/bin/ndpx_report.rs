//! Run-diff reporter: compare two perf-gauge reports, render a markdown
//! trend report, and (optionally, under strict mode) gate on regressions.
//!
//! Usage:
//!   ndpx_report BASELINE.json CURRENT.json
//!       [--out report.md]          # where to write the markdown
//!                                  # (default ndpx_report.md; also stdout)
//!       [--threshold 10]           # regression threshold in percent
//!       [--strict]                 # exit 3 on throughput regressions
//!       [--timeline A.json B.json] # append a windowed-timeline diff
//!       [--registry A.json B.json] # append profile.*/slo.* deltas from
//!                                  # two registry dumps
//!
//! Environment: `NDPX_REPORT_STRICT=1` is equivalent to `--strict`,
//! `NDPX_REPORT_THRESHOLD=<pct>` to `--threshold`.
//!
//! Exit status encodes signal quality, matching how CI consumes it:
//!
//! * `0` — clean, or throughput-only movement without strict mode;
//! * `1` — digest mismatch / missing cells (simulated results changed:
//!   always fatal, determinism is never advisory);
//! * `2` — usage or I/O error;
//! * `3` — throughput regression beyond threshold under strict mode.
//!
//! Regressions additionally print GitHub `::warning::` annotations so the
//! advisory CI step surfaces them on the workflow summary without failing
//! the build.

use ndpx_bench::report::{
    compare, diff_registry_phases, diff_timelines, parse_perf, render_markdown,
};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("ndpx_report: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut out_path = "ndpx_report.md".to_string();
    let mut threshold_pct: f64 = ndpx_sim::knobs::REPORT_THRESHOLD.f64_opt().unwrap_or(10.0);
    let mut strict = ndpx_sim::knobs::REPORT_STRICT.bool_or(false);
    let mut timeline_pair: Option<(String, String)> = None;
    let mut registry_pair: Option<(String, String)> = None;

    let mut i = 0;
    let take = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("ndpx_report: {flag} needs an argument");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out_path = take(&mut i, "--out"),
            "--threshold" => {
                threshold_pct = take(&mut i, "--threshold").parse().unwrap_or_else(|_| {
                    eprintln!("ndpx_report: --threshold needs a number (percent)");
                    std::process::exit(2);
                })
            }
            "--strict" => strict = true,
            "--timeline" => {
                let a = take(&mut i, "--timeline");
                let b = take(&mut i, "--timeline");
                timeline_pair = Some((a, b));
            }
            "--registry" => {
                let a = take(&mut i, "--registry");
                let b = take(&mut i, "--registry");
                registry_pair = Some((a, b));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [base_path, cur_path] = positional.as_slice() else {
        eprintln!("usage: ndpx_report BASELINE.json CURRENT.json [--out F] [--threshold PCT] [--strict] [--timeline A B] [--registry A B]");
        std::process::exit(2);
    };

    let base = parse_perf(&read(base_path)).unwrap_or_else(|e| {
        eprintln!("ndpx_report: {base_path}: {e}");
        std::process::exit(2);
    });
    let cur = parse_perf(&read(cur_path)).unwrap_or_else(|e| {
        eprintln!("ndpx_report: {cur_path}: {e}");
        std::process::exit(2);
    });
    let cmp = compare(&base, &cur, threshold_pct / 100.0);

    let mut sections = Vec::new();
    if let Some((a, b)) = &timeline_pair {
        match diff_timelines(&read(a), &read(b), 12) {
            Ok(md) => sections.push(md),
            Err(e) => {
                eprintln!("ndpx_report: timeline diff failed: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some((a, b)) = &registry_pair {
        match diff_registry_phases(&read(a), &read(b)) {
            Ok(md) if !md.is_empty() => sections.push(md),
            Ok(_) => eprintln!("note: no profile.*/slo.* scopes in the registry dumps"),
            Err(e) => {
                eprintln!("ndpx_report: registry diff failed: {e}");
                std::process::exit(2);
            }
        }
    }

    let md = render_markdown(&base, &cur, &cmp, &sections);
    if let Err(e) = std::fs::write(&out_path, &md) {
        eprintln!("ndpx_report: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    print!("{md}");

    for key in &cmp.digest_mismatches {
        println!("::warning::digest mismatch in cell {key} — simulated results changed");
    }
    for d in &cmp.regressions {
        println!(
            "::warning::{} regressed {:+.1}% ({:.1} -> {:.1}), threshold {:.0}%",
            d.name,
            d.pct(),
            d.baseline,
            d.current,
            threshold_pct
        );
    }

    if !cmp.is_clean() {
        eprintln!(
            "ndpx_report: {} digest mismatch(es), {} missing cell(s)",
            cmp.digest_mismatches.len(),
            cmp.missing_cells.len()
        );
        std::process::exit(1);
    }
    if strict && !cmp.regressions.is_empty() {
        eprintln!(
            "ndpx_report: {} regression(s) beyond {threshold_pct:.0}% (strict mode)",
            cmp.regressions.len()
        );
        std::process::exit(3);
    }
    eprintln!(
        "ndpx_report: clean ({} aggregates compared, {} regression(s) advisory) -> {out_path}",
        cmp.aggregates.len(),
        cmp.regressions.len()
    );
}
