//! Figure 2(a): access-latency breakdown, NDP vs conventional NUCA, both
//! under static cacheline interleaving, running PageRank.
//!
//! Expected shape (paper): the NDP system spends a much larger share of
//! access latency on the interconnect than the NUCA host (32% vs 13%) and a
//! visible share on metadata, while achieving a much higher cache hit rate
//! (70% vs 47%) and thus a smaller next-level-memory share.

use ndpx_bench::pool::{CellPool, CellTask};
use ndpx_bench::runner::{run_host_cached, run_ndp_cached, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::{LatComponent, RunReport};

fn print_breakdown(label: &str, r: &ndpx_core::stats::RunReport) {
    let parts: Vec<String> = LatComponent::ALL
        .iter()
        .map(|&c| format!("{}={:.1}%", c.label(), r.breakdown.fraction(c) * 100.0))
        .collect();
    println!("{label:<10} hit-rate={:.2}  {}", 1.0 - r.miss_rate(), parts.join("  "));
}

fn main() {
    let scale = BenchScale::from_env();
    println!("# Fig 2a: latency breakdown under static interleaving, PageRank");

    let spec = RunSpec::new(MemKind::Hbm, PolicyKind::StaticInterleave, "pr", scale);
    let cache = TraceCache::from_env();
    let (spec, cache) = (&spec, &cache);
    let tasks: Vec<CellTask<'_, RunReport>> = vec![
        Box::new(move || run_ndp_cached(spec, cache)),
        Box::new(move || run_host_cached("pr", scale, scale.ops_per_core(), cache)),
    ];
    let mut reports = CellPool::from_env().run_values(tasks);
    let host = reports.pop().expect("two tasks");
    let ndp = reports.pop().expect("two tasks");

    print_breakdown("NUCA", &host);
    print_breakdown("NDP", &ndp);

    let noc = |r: &ndpx_core::stats::RunReport| {
        r.breakdown.fraction(LatComponent::NocIntra) + r.breakdown.fraction(LatComponent::NocInter)
    };
    println!(
        "\ninterconnect share: NDP {:.1}% vs NUCA {:.1}% (paper: 32% vs 13%)",
        noc(&ndp) * 100.0,
        noc(&host) * 100.0
    );
    println!(
        "cache hit rate:     NDP {:.2} vs NUCA {:.2} (paper: 0.70 vs 0.47)",
        1.0 - ndp.miss_rate(),
        1.0 - host.miss_rate()
    );
}
