//! Figure 5: overall performance comparison.
//!
//! Prints, for every workload and policy, the speedup over the non-NDP host
//! (the paper normalizes all NDP configurations to host execution). Run with
//! `--mem hbm` (Fig. 5a, default) or `--mem hmc` (Fig. 5b).
//!
//! Expected shape (paper): NDP ≫ host (4.3–7.3×); NDPExt best overall,
//! ≈1.41× (HBM) / 1.48× (HMC) over Nexus on average, up to ≈2.43× on recsys;
//! NDPExt-static between the baselines and NDPExt.

use ndpx_bench::gauge::cell_key;
use ndpx_bench::pool::{CellPool, CellTask, MonitorConfig};
use ndpx_bench::runner::{geomean, run_host_cached, run_ndp_cached, BenchScale, RunSpec};
use ndpx_bench::{manifest, TraceCache};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_workloads::ALL_WORKLOADS;

fn main() {
    let mem = match std::env::args().skip_while(|a| a != "--mem").nth(1).as_deref() {
        Some("hmc") => MemKind::Hmc,
        _ => MemKind::Hbm,
    };
    let scale = BenchScale::from_env();
    println!(
        "# Fig 5{}: speedup over non-NDP host ({} scale)",
        if mem == MemKind::Hmc { "b (HMC)" } else { "a (HBM)" },
        format!("{scale:?}").to_lowercase()
    );

    let specs: Vec<RunSpec> = ALL_WORKLOADS
        .iter()
        .flat_map(|&w| PolicyKind::ALL.iter().map(move |&p| RunSpec::new(mem, p, w, scale)))
        .collect();
    // One pooled submission covers the NDP matrix and the per-workload host
    // baselines, so host runs overlap with NDP cells instead of serializing
    // after them.
    let cache = TraceCache::from_env();
    let cache = &cache;
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| Box::new(move || run_ndp_cached(spec, cache)) as CellTask<'_, RunReport>)
        .chain(ALL_WORKLOADS.iter().map(|&w| {
            Box::new(move || run_host_cached(w, scale, scale.ops_per_core(), cache))
                as CellTask<'_, RunReport>
        }))
        .collect();
    let names: Vec<String> = specs
        .iter()
        .map(cell_key)
        .chain(ALL_WORKLOADS.iter().map(|&w| format!("host/{w}")))
        .collect();
    let run_name = format!("fig05_overall_{}", if mem == MemKind::Hmc { "hmc" } else { "hbm" });
    let monitor = MonitorConfig::from_env(run_name.clone(), names);
    let pool = CellPool::from_env();
    let results = pool.run_monitored(&monitor, tasks);
    manifest::emit(&run_name, pool.threads(), &monitor.names, &results, Some(cache.stats()));
    let mut reports: Vec<RunReport> = results.into_iter().map(|r| r.value).collect();
    let hosts = reports.split_off(specs.len());

    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(PolicyKind::ALL.iter().map(|p| p.label().to_string()))
        .collect();
    let widths = [12usize, 8, 8, 10, 8, 14, 8];
    ndpx_bench::runner::print_row(&header, &widths);

    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); PolicyKind::ALL.len()];
    for (wi, &w) in ALL_WORKLOADS.iter().enumerate() {
        let host = &hosts[wi];
        // Same total op count on both systems: speedup is the makespan
        // ratio scaled by the op-count ratio.
        let mut cells = vec![w.to_string()];
        for (pi, _) in PolicyKind::ALL.iter().enumerate() {
            let r = &reports[wi * PolicyKind::ALL.len() + pi];
            let speedup = (host.sim_time.as_ps() as f64 / r.sim_time.as_ps() as f64)
                * (r.ops as f64 / host.ops as f64);
            per_policy[pi].push(speedup);
            cells.push(format!("{speedup:.2}"));
        }
        ndpx_bench::runner::print_row(&cells, &widths);
    }
    let mut cells = vec!["geomean".to_string()];
    for vals in &per_policy {
        cells.push(format!("{:.2}", geomean(vals.iter().copied())));
    }
    ndpx_bench::runner::print_row(&cells, &widths);

    // The paper's headline: NDPExt over the second-best baseline (Nexus).
    let nexus_i = PolicyKind::ALL.iter().position(|&p| p == PolicyKind::Nexus).expect("listed");
    let ndpx_i = PolicyKind::ALL.iter().position(|&p| p == PolicyKind::NdpExt).expect("listed");
    let ratios: Vec<f64> =
        per_policy[ndpx_i].iter().zip(&per_policy[nexus_i]).map(|(a, b)| a / b).collect();
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nNDPExt over Nexus: geomean {:.2}x, max {:.2}x (paper: 1.41x avg, 2.43x max)",
        geomean(ratios.iter().copied()),
        max
    );
}
