//! Figure 9: design-choice studies. One subcommand per panel:
//!
//! * `assoc`      — (a) indirect stream-cache associativity 1–64 way;
//! * `block`      — (b) affine block size 256 B – 4 kB;
//! * `affine-cap` — (c) affine space restriction (plus the ideal no-cap);
//! * `sampler`    — (d) sampled sets k ∈ {8, 16, 32, 64};
//! * `method`     — (e) reconfiguration method Static / Partial / Full;
//! * `interval`   — (f) reconfiguration interval sweep;
//! * `all`        — every panel in sequence.
//!
//! All results are NDPExt runtimes normalized to the paper's default value
//! of the swept parameter (so 1.00 = default; higher = faster).

use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{geomean, run_many_with, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_workloads::REPRESENTATIVE_WORKLOADS;

/// Runs NDPExt on the representative set with `tweak`, returning the
/// geomean runtime in picoseconds. The cache is shared across the whole
/// sweep: tweaks change the system configuration, never the trace, so every
/// sweep value replays the same materialized workloads.
fn run_with(
    scale: BenchScale,
    cache: &TraceCache,
    tweak: impl Fn(&mut ndpx_core::SystemConfig) + Send + Sync + Clone + 'static,
) -> f64 {
    let specs: Vec<RunSpec> = REPRESENTATIVE_WORKLOADS
        .iter()
        .map(|&w| {
            RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, w, scale).with_tweak(tweak.clone())
        })
        .collect();
    let reports = run_many_with(CellPool::from_env(), cache, &specs);
    geomean(reports.iter().map(|r| r.sim_time.as_ps() as f64))
}

fn normalized_sweep<T: Copy + std::fmt::Display + Send + Sync + 'static>(
    scale: BenchScale,
    cache: &TraceCache,
    name: &str,
    values: &[T],
    default_idx: usize,
    apply: impl Fn(&mut ndpx_core::SystemConfig, T) + Send + Sync + Clone + 'static,
) {
    println!("# Fig 9 ({name}); speedup normalized to the default value");
    let times: Vec<f64> = values
        .iter()
        .map(|&v| {
            let apply = apply.clone();
            run_with(scale, cache, move |cfg| apply(cfg, v))
        })
        .collect();
    let base = times[default_idx];
    println!("{:>12} {:>10}", name, "speedup");
    for (v, t) in values.iter().zip(&times) {
        println!("{v:>12} {:>10.3}", base / t);
    }
    println!();
}

fn panel(scale: BenchScale, cache: &TraceCache, which: &str) {
    match which {
        "assoc" => {
            normalized_sweep(scale, cache, "indirect ways", &[1usize, 4, 16, 64], 0, |cfg, v| {
                cfg.indirect_ways = v;
            })
        }
        "block" => normalized_sweep(
            scale,
            cache,
            "affine block B",
            &[256u64, 512, 1024, 2048, 4096],
            2,
            |cfg, v| cfg.affine_block = v,
        ),
        "affine-cap" => {
            // Fractions of the unit capacity, plus the unrestricted ideal.
            println!("# Fig 9c (affine space restriction)");
            let fractions = [("1/16", 16u64), ("1/8", 8), ("1/4", 4), ("ideal", 1)];
            let times: Vec<f64> = fractions
                .iter()
                .map(|&(_, div)| {
                    run_with(scale, cache, move |cfg| {
                        cfg.affine_cap =
                            if div == 1 { cfg.unit_capacity } else { cfg.unit_capacity / div }
                    })
                })
                .collect();
            let base = times[0];
            println!("{:>12} {:>10}", "cap", "speedup");
            for ((label, _), t) in fractions.iter().zip(&times) {
                println!("{label:>12} {:>10.3}", base / t);
            }
            println!();
        }
        "sampler" => {
            normalized_sweep(scale, cache, "sampled sets k", &[8usize, 16, 32, 64], 2, |cfg, v| {
                cfg.sampler_sets = v;
            })
        }
        "method" => {
            println!("# Fig 9e (reconfiguration method)");
            let static_t = {
                let specs: Vec<RunSpec> = REPRESENTATIVE_WORKLOADS
                    .iter()
                    .map(|&w| RunSpec::new(MemKind::Hbm, PolicyKind::NdpExtStatic, w, scale))
                    .collect();
                let reports = run_many_with(CellPool::from_env(), cache, &specs);
                geomean(reports.iter().map(|r| r.sim_time.as_ps() as f64))
            };
            let partial_t = run_with(scale, cache, |cfg| cfg.max_reconfigs = Some(2));
            let full_t = run_with(scale, cache, |_| {});
            println!("{:>12} {:>10}", "method", "speedup");
            for (label, t) in [("S(tatic)", static_t), ("P(artial)", partial_t), ("F(ull)", full_t)]
            {
                println!("{label:>12} {:>10.3}", full_t / t);
            }
            println!();
        }
        "interval" => {
            println!("# Fig 9f (reconfiguration interval, fraction of the default epoch)");
            let muls =
                [("1/4x", 4u64, 1u64), ("1/2x", 2, 1), ("1x", 1, 1), ("2x", 1, 2), ("4x", 1, 4)];
            let times: Vec<f64> = muls
                .iter()
                .map(|&(_, div, mul)| {
                    run_with(scale, cache, move |cfg| {
                        cfg.epoch_cycles = cfg.epoch_cycles / div * mul
                    })
                })
                .collect();
            let base = times[2];
            println!("{:>12} {:>10}", "interval", "speedup");
            for ((label, _, _), t) in muls.iter().zip(&times) {
                println!("{label:>12} {:>10.3}", base / t);
            }
            println!();
        }
        other => {
            eprintln!(
                "unknown panel `{other}`; use assoc|block|affine-cap|sampler|method|interval|all"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let cache = TraceCache::from_env();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "all" {
        for p in ["assoc", "block", "affine-cap", "sampler", "method", "interval"] {
            panel(scale, &cache, p);
        }
    } else {
        panel(scale, &cache, &which);
    }
}
