//! Figure 7: average interconnect latency (bars) and DRAM-cache miss rate
//! (dots), Nexus vs NDPExt, on a representative workload subset.
//!
//! Expected shape (paper): NDPExt sharply reduces interconnect latency
//! (e.g. hotspot 113 ns → 38 ns) via placement and replication; miss rates
//! drop for spatial workloads (block prefetching) and may rise slightly
//! where replication trades capacity (mv).

use ndpx_bench::runner::{run_many, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_workloads::REPRESENTATIVE_WORKLOADS;

fn main() {
    let scale = BenchScale::from_env();
    println!("# Fig 7: interconnect latency and miss rate, Nexus vs NDPExt");
    println!(
        "{:<11} {:>12} {:>12} {:>10} {:>10}",
        "workload", "nexus_icn_ns", "ndpx_icn_ns", "nexus_miss", "ndpx_miss"
    );

    let mut specs = Vec::new();
    for &w in &REPRESENTATIVE_WORKLOADS {
        specs.push(RunSpec::new(MemKind::Hbm, PolicyKind::Nexus, w, scale));
        specs.push(RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, w, scale));
    }
    let reports = run_many(specs);
    for (i, &w) in REPRESENTATIVE_WORKLOADS.iter().enumerate() {
        let nexus = &reports[2 * i];
        let ndpx = &reports[2 * i + 1];
        println!(
            "{:<11} {:>12.1} {:>12.1} {:>10.3} {:>10.3}",
            w,
            nexus.avg_interconnect().as_ns_f64(),
            ndpx.avg_interconnect().as_ns_f64(),
            nexus.miss_rate(),
            ndpx.miss_rate()
        );
    }
}
