//! Quick trend sanity check: NDPExt vs baselines vs host on one workload.
//!
//! All runs (host included) go through the [`CellPool`], so the check
//! parallelizes under `NDPX_THREADS`; printing happens after collection, in
//! canonical policy order, so the output is identical at any width.
use ndpx_bench::pool::{CellPool, CellTask, MonitorConfig};
use ndpx_bench::runner::{run_host_cached, run_ndp_cached, BenchScale, RunSpec};
use ndpx_bench::{manifest, TraceCache};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;

fn main() {
    let scale = BenchScale::from_env();
    let workload: &'static str = std::env::args().nth(1).map(|s| &*s.leak()).unwrap_or("pr");
    let ops = ndpx_sim::knobs::OPS.u64_opt().unwrap_or(scale.ops_per_core());
    let filter = ndpx_sim::knobs::POLICY.raw();
    let policies: Vec<PolicyKind> = PolicyKind::ALL
        .into_iter()
        .filter(|p| filter.as_deref().is_none_or(|f| p.label() == f))
        .collect();

    let cache = TraceCache::from_env();
    let cache = &cache;
    let tasks: Vec<CellTask<'_, RunReport>> =
        std::iter::once(
            Box::new(move || run_host_cached(workload, scale, ops, cache)) as CellTask<'_, _>
        )
        .chain(policies.iter().map(|&policy| {
            Box::new(move || {
                let spec = RunSpec {
                    ops_per_core: ops,
                    ..RunSpec::new(MemKind::Hbm, policy, workload, scale)
                };
                run_ndp_cached(&spec, cache)
            }) as CellTask<'_, RunReport>
        }))
        .collect();
    let names: Vec<String> = std::iter::once(format!("host/{workload}"))
        .chain(policies.iter().map(|p| format!("hbm/{}/{workload}", p.label())))
        .collect();
    let monitor = MonitorConfig::from_env("sanity", names);
    let pool = CellPool::from_env();
    let results = pool.run_monitored(&monitor, tasks);
    manifest::emit("sanity", pool.threads(), &monitor.names, &results, Some(cache.stats()));
    let mut reports: Vec<RunReport> = results.into_iter().map(|r| r.value).collect();
    let rest = reports.split_off(1);
    let host = reports.pop().expect("host task ran");

    println!(
        "host      : time {:>12}  miss {:.3}  ops/us {:.1}",
        host.sim_time.to_string(),
        host.miss_rate(),
        host.ops_per_us()
    );
    for (policy, r) in policies.iter().zip(&rest) {
        if ndpx_sim::knobs::DEBUG.bool_or(false) {
            use ndpx_core::stats::LatComponent;
            let parts: Vec<String> = LatComponent::ALL
                .iter()
                .map(|&c| format!("{}={:.2}", c.label(), r.breakdown.fraction(c)))
                .collect();
            println!("    breakdown: {} total={}", parts.join(" "), r.breakdown.total());
        }
        println!(
            "{:<10}: time {:>12}  miss {:.3}  l1 {:.2}  local {:.2}  icn {:>9}  slbm {}  metaD {}  inv {}  repl {:.2}  vs-host {:.2}x",
            policy.label(), r.sim_time.to_string(), r.miss_rate(), r.l1_hit_rate(),
            r.local_hits as f64 / (r.cache_hits.max(1)) as f64,
            r.avg_interconnect().to_string(), r.slb_misses, r.metadata_dram, r.invalidations,
            r.replicated_fraction,
            host.sim_time.as_ps() as f64 / r.sim_time.as_ps() as f64 * (r.ops as f64 / host.ops as f64),
        );
    }
}
