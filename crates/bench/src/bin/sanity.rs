//! Quick trend sanity check: NDPExt vs baselines vs host on one workload.
use ndpx_bench::runner::{run_host, run_ndp, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};

fn main() {
    let scale = BenchScale::from_env();
    let workload: &'static str = std::env::args().nth(1).map(|s| &*s.leak()).unwrap_or("pr");
    let ops =
        std::env::var("NDPX_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(scale.ops_per_core());
    let host = run_host(workload, scale, ops);
    println!(
        "host      : time {:>12}  miss {:.3}  ops/us {:.1}",
        host.sim_time.to_string(),
        host.miss_rate(),
        host.ops_per_us()
    );
    let filter = std::env::var("NDPX_POLICY").ok();
    for policy in PolicyKind::ALL {
        if let Some(f) = &filter {
            if policy.label() != f {
                continue;
            }
        }
        let spec =
            RunSpec { ops_per_core: ops, ..RunSpec::new(MemKind::Hbm, policy, workload, scale) };
        let r = run_ndp(&spec);
        if std::env::var("NDPX_DEBUG").is_ok() {
            use ndpx_core::stats::LatComponent;
            let parts: Vec<String> = LatComponent::ALL
                .iter()
                .map(|&c| format!("{}={:.2}", c.label(), r.breakdown.fraction(c)))
                .collect();
            println!("    breakdown: {} total={}", parts.join(" "), r.breakdown.total());
        }
        println!(
            "{:<10}: time {:>12}  miss {:.3}  l1 {:.2}  local {:.2}  icn {:>9}  slbm {}  metaD {}  inv {}  repl {:.2}  vs-host {:.2}x",
            policy.label(), r.sim_time.to_string(), r.miss_rate(), r.l1_hit_rate(),
            r.local_hits as f64 / (r.cache_hits.max(1)) as f64,
            r.avg_interconnect().to_string(), r.slb_misses, r.metadata_dram, r.invalidations,
            r.replicated_fraction,
            host.sim_time.as_ps() as f64 / r.sim_time.as_ps() as f64 * (r.ops as f64 / host.ops as f64),
        );
    }
}
