//! Ablation study: how much each NDPExt mechanism contributes.
//!
//! Not a paper figure — DESIGN.md calls for ablations of the design choices.
//! Each row disables one mechanism and reports the slowdown relative to full
//! NDPExt (geomean over the representative workloads):
//!
//! * `no-replication`   — cap replication groups at 1 (placement only);
//! * `bulk-invalidate`  — disable consistent-hash transfer;
//! * `line-blocks`      — affine blocks shrunk to one cacheline (no spatial
//!   prefetch from the stream abstraction);
//! * `no-reconfig`      — freeze the warmup configuration (≈NDPExt-static).

use ndpx_bench::pool::CellPool;
use ndpx_bench::runner::{geomean, run_many_monitored, BenchScale, RunSpec};
use ndpx_bench::TraceCache;
use ndpx_core::config::{MemKind, PolicyKind, ReconfigTransfer};
use ndpx_workloads::REPRESENTATIVE_WORKLOADS;

type Tweak = Option<fn(&mut ndpx_core::SystemConfig)>;

/// Geomean runtime of `policy` over the representative set. The cache is
/// shared across variants: tweaks change the configuration, not the trace.
/// `variant` labels the run's telemetry (heartbeats and `NDPX_METRICS`
/// sidecars).
fn geotime(
    variant: &str,
    scale: BenchScale,
    cache: &TraceCache,
    policy: PolicyKind,
    tweak: Tweak,
) -> f64 {
    let specs: Vec<RunSpec> = REPRESENTATIVE_WORKLOADS
        .iter()
        .map(|&w| {
            let mut s = RunSpec::new(MemKind::Hbm, policy, w, scale);
            if let Some(t) = tweak {
                s = s.with_tweak(t);
            }
            s
        })
        .collect();
    let run_name = format!("ablation_{variant}");
    let reports = run_many_monitored(&run_name, CellPool::from_env(), cache, &specs);
    geomean(reports.iter().map(|r| r.sim_time.as_ps() as f64))
}

fn main() {
    let scale = BenchScale::from_env();
    let cache = TraceCache::from_env();
    println!("# Ablation: slowdown vs full NDPExt (geomean, representative set)");
    let full = geotime("full-ndpext", scale, &cache, PolicyKind::NdpExt, None);

    let rows: [(&str, PolicyKind, Tweak); 4] = [
        (
            "no-replication",
            PolicyKind::NdpExt,
            Some(
                (|cfg: &mut ndpx_core::SystemConfig| cfg.allow_replication = false)
                    as fn(&mut ndpx_core::SystemConfig),
            ),
        ),
        (
            "bulk-invalidate",
            PolicyKind::NdpExt,
            Some(|cfg| cfg.transfer = ReconfigTransfer::BulkInvalidate),
        ),
        ("line-blocks", PolicyKind::NdpExt, Some(|cfg| cfg.affine_block = cfg.line_bytes)),
        ("no-reconfig", PolicyKind::NdpExtStatic, None),
    ];
    println!("{:>16} {:>10}", "variant", "slowdown");
    println!("{:>16} {:>10.3}", "full-ndpext", 1.0);
    for (label, policy, tweak) in rows {
        let t = geotime(label, scale, &cache, policy, tweak);
        println!("{label:>16} {:>10.3}", t / full);
    }
    println!("\n(>1.0 means the removed mechanism was helping)");
}
