//! Figure 8(a): NDPExt speedup over Nexus across NDP core counts,
//! presented as `#stacks × #cores-per-stack`.
//!
//! Expected shape (paper): more stacks at the same core count raise the
//! speedup (up to 1.65× at 16 stacks); fewer cores shrink it (1.09× at 32
//! cores); 256 cores raise it further (1.75×); a single unit still wins
//! 1.16× from the stream abstraction alone.

use ndpx_bench::runner::{geomean, run_many, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_noc::topology::{IntraKind, Topology};
use ndpx_workloads::REPRESENTATIVE_WORKLOADS;

/// `(label, stacks_x, stacks_y, units_x, units_y)` — cores = product.
const CONFIGS: [(&str, usize, usize, usize, usize); 6] = [
    ("4x32", 2, 2, 8, 4),
    ("8x16", 4, 2, 4, 4),
    ("16x8", 4, 4, 4, 2),
    ("4x8", 2, 2, 4, 2),
    ("16x16", 4, 4, 4, 4),
    ("1x1", 1, 1, 1, 1),
];

fn main() {
    let scale = BenchScale::from_env();
    println!("# Fig 8a: NDPExt speedup over Nexus vs core count (stacks x cores/stack)");
    println!("{:>8} {:>7} {:>10}", "config", "cores", "speedup");
    for &(label, sx, sy, ux, uy) in &CONFIGS {
        let topo = Topology {
            stacks_x: sx,
            stacks_y: sy,
            units_x: ux,
            units_y: uy,
            intra: IntraKind::Crossbar,
        };
        let set_topo = move |cfg: &mut ndpx_core::SystemConfig| {
            cfg.topology = topo;
        };
        let mut ratios = Vec::new();
        let specs: Vec<RunSpec> = REPRESENTATIVE_WORKLOADS
            .iter()
            .flat_map(|&w| {
                [PolicyKind::Nexus, PolicyKind::NdpExt]
                    .into_iter()
                    .map(move |p| RunSpec::new(MemKind::Hbm, p, w, scale).with_tweak(set_topo))
            })
            .collect();
        let reports = run_many(specs);
        for pair in reports.chunks(2) {
            ratios.push(pair[0].sim_time.as_ps() as f64 / pair[1].sim_time.as_ps() as f64);
        }
        println!("{label:>8} {:>7} {:>10.2}", topo.units(), geomean(ratios.iter().copied()));
    }
}
