//! Wall-clock performance gauge for the simulator itself.
//!
//! Runs the fixed 36-cell `(mem, policy, workload)` matrix (see
//! [`ndpx_bench::gauge`]) twice at the `NDPX_SCALE` profile: once serial
//! with live trace generation (the historical baseline path) and once on
//! the [`CellPool`] with the shared trace cache (the optimized path), then
//! asserts the two phases produced byte-identical report digests before
//! writing `BENCH_PERF.json`. Perf optimisations must keep every digest
//! byte-identical — only the wall clock may move.
//!
//! Usage:
//!   perf_gauge                      # measure, write BENCH_PERF.json
//!   perf_gauge --check OLD.json     # additionally assert digests match
//!                                   # OLD.json and report the speedup
//!   NDPX_THREADS=n perf_gauge       # pool width of the optimized phase
//!   NDPX_THREAD_SWEEP=1,2,4 ...     # extra cached runs per thread count
//!   NDPX_PERF_OUT=path perf_gauge   # write somewhere else
//!   NDPX_METRICS=dir perf_gauge     # also write metrics.json + registry
//!                                   # dump sidecars (see ndpx_bench::manifest)
//!   NDPX_QUEUE=heap perf_gauge      # run on the reference BinaryHeap event
//!                                   # queue instead of the time wheel
//!   NDPX_GAUGE_MICRO=1 perf_gauge   # also run component micro-benchmarks
//!                                   # (queue ops, vectorized kernels) and
//!                                   # record them under "micro"
//!   NDPX_TIMELINE=path perf_gauge   # cells additionally write windowed
//!                                   # timelines (ndpx_sim::telemetry); the
//!                                   # report records telemetry as active
//!   NDPX_PROFILE=1 perf_gauge       # cells attribute wall/sim time to
//!                                   # phases (profile.* registry scope)
//!
//! `--check` exits non-zero on any digest mismatch (against the baseline
//! file or between the two phases), so the CI smoke run doubles as a
//! regression gate for simulated results at every thread count.

use std::fmt::Write as _;
use std::time::Instant;

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::{cell_key, gauge_ops, gauge_specs, scale_name};
use ndpx_bench::manifest::{self, RunManifest};
use ndpx_bench::micro::{self, MicroResult};
use ndpx_bench::pool::{CellPool, CellResult, CellTask, MonitorConfig, ThreadPlan};
use ndpx_bench::runner::{run_ndp_cached, BenchScale, RunSpec};
use ndpx_core::config::PolicyKind;
use ndpx_core::stats::RunReport;
use ndpx_sim::engine::QueueImpl;
use ndpx_sim::telemetry::StatRegistry;
use ndpx_workloads::TraceCache;

struct Cell {
    key: String,
    policy: PolicyKind,
    ops: u64,
    wall_s: f64,
    worker: usize,
    digest: u64,
}

impl Cell {
    fn ops_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ops as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Per-cell `engine.batch.*` registry readout (run-ahead batching
/// telemetry); all zeros when the cell predates the scope or batching is
/// disabled.
#[derive(Debug, Default, Clone, Copy)]
struct BatchCell {
    enabled: bool,
    batches: u64,
    ops: u64,
    fast_hits: u64,
    max_len: u64,
}

impl BatchCell {
    fn from_registry(reg: &StatRegistry) -> Self {
        let count = |path: &str| reg.get(path).and_then(|v| v.as_count()).unwrap_or(0);
        BatchCell {
            enabled: count("engine.batch.enabled") != 0,
            batches: count("engine.batch.batches"),
            ops: count("engine.batch.ops"),
            fast_hits: count("engine.batch.fast_hits"),
            max_len: count("engine.batch.max_len"),
        }
    }

    fn mean_len(&self) -> f64 {
        if self.batches > 0 {
            self.ops as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    fn fast_hit_ratio(&self) -> f64 {
        if self.ops > 0 {
            self.fast_hits as f64 / self.ops as f64
        } else {
            0.0
        }
    }

    fn sum(cells: &[BatchCell]) -> BatchCell {
        cells.iter().fold(BatchCell::default(), |a, c| BatchCell {
            enabled: a.enabled || c.enabled,
            batches: a.batches + c.batches,
            ops: a.ops + c.ops,
            fast_hits: a.fast_hits + c.fast_hits,
            max_len: a.max_len.max(c.max_len),
        })
    }
}

/// One timed pass over the whole matrix.
struct Phase {
    threads: usize,
    cached: bool,
    cells: Vec<Cell>,
    wall_s: f64,
}

impl Phase {
    fn ops_total(&self) -> u64 {
        self.cells.iter().map(|c| c.ops).sum()
    }

    fn rate(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ops_total() as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Runs the matrix once. With a monitor the pool emits heartbeat/watchdog
/// lines and the full per-cell results come back for sidecar emission;
/// without one (the serial baseline and sweep passes) results are digested
/// and dropped.
fn run_matrix(
    specs: &[RunSpec],
    pool: CellPool,
    cache: &TraceCache,
    monitor: Option<&MonitorConfig>,
) -> (Phase, Vec<CellResult<RunReport>>) {
    let t0 = Instant::now();
    let tasks: Vec<CellTask<'_, RunReport>> = specs
        .iter()
        .map(|spec| Box::new(move || run_ndp_cached(spec, cache)) as CellTask<'_, RunReport>)
        .collect();
    let results = match monitor {
        Some(m) => pool.run_monitored(m, tasks),
        None => pool.run(tasks),
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let cells = specs
        .iter()
        .zip(&results)
        .map(|(spec, r)| Cell {
            key: cell_key(spec),
            policy: spec.policy,
            ops: r.value.ops,
            wall_s: r.wall_s,
            worker: r.worker,
            digest: report_digest(&r.value),
        })
        .collect();
    (Phase { threads: pool.threads(), cached: cache.is_enabled(), cells, wall_s }, results)
}

fn main() {
    let scale = BenchScale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let ops = gauge_ops(scale);
    let specs = gauge_specs(scale, ops);
    let names: Vec<String> = specs.iter().map(cell_key).collect();

    // Phase 1: the historical path — serial, every cell generates its own
    // trace. This is the in-report speedup denominator.
    let (serial, _) = run_matrix(&specs, CellPool::with_threads(1), &TraceCache::disabled(), None);

    // Phase 2: the optimized path — pool at the environment's width, traces
    // shared across cells, heartbeat + watchdog attached. The plan keeps
    // the requested-vs-host distinction for the report: explicit widths
    // past the host are honored but flagged as oversubscribed.
    let plan = ThreadPlan::from_env();
    let pool = plan.pool();
    let cache = TraceCache::from_env();
    let monitor = MonitorConfig::from_env("perf_gauge", names);
    let (parallel, parallel_results) = run_matrix(&specs, pool, &cache, Some(&monitor));

    // The two phases must agree cell for cell before anything is reported:
    // parallelism and replay may only move the wall clock.
    let mut phase_mismatches = 0;
    for (s, p) in serial.cells.iter().zip(parallel.cells.iter()) {
        if s.digest != p.digest {
            eprintln!(
                "PHASE MISMATCH {}: serial {:016x} != threads={} {:016x}",
                s.key, s.digest, parallel.threads, p.digest
            );
            phase_mismatches += 1;
        }
    }
    if phase_mismatches > 0 {
        eprintln!("{phase_mismatches} cell(s) differ between serial and pooled execution");
        std::process::exit(1);
    }

    for c in &parallel.cells {
        eprintln!(
            "{:<28} {:>9.0} ops/s  worker {:>2}  digest {:016x}",
            c.key,
            c.ops_per_sec(),
            c.worker,
            c.digest
        );
    }
    let cache_stats = cache.stats();
    eprintln!(
        "serial {:.3}s -> threads={} cached {:.3}s ({:.2}x); trace cache {} hits / {} misses, {:.3}s generation saved",
        serial.wall_s,
        parallel.threads,
        parallel.wall_s,
        serial.wall_s / parallel.wall_s.max(1e-9),
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.saved().as_secs_f64()
    );

    // The run manifest feeds both the v3 report fields below and, under
    // NDPX_METRICS, the metrics.json + registry-dump sidecars.
    let run_manifest = RunManifest::collect(
        "perf_gauge",
        parallel.threads,
        &monitor.names,
        &parallel_results,
        Some(cache_stats),
    );
    manifest::emit(
        "perf_gauge",
        parallel.threads,
        &monitor.names,
        &parallel_results,
        Some(cache_stats),
    );
    // Run-ahead batch telemetry, read out of each cell's registry before
    // the reports are dropped.
    let batch_cells: Vec<BatchCell> =
        parallel_results.iter().map(|r| BatchCell::from_registry(&r.value.registry)).collect();
    drop(parallel_results);

    // Optional component micro-benchmarks: raw queue ops under both
    // implementations plus the vectorized analytic kernels, recorded in the
    // report so CI artifacts can attribute wall-clock movement.
    let micros = if micro::enabled_from_env() {
        let rs = micro::run_all();
        for r in &rs {
            eprintln!(
                "micro {:<28} {:>12.1} ops/s  ({:.1} ns/op)",
                r.name,
                r.ops_per_sec(),
                r.ns_per_iter
            );
        }
        rs
    } else {
        Vec::new()
    };

    // Optional sweep: extra cached passes at other widths, reusing the now
    // warm cache so the entries compare pure simulation scaling.
    let mut phases = vec![serial, parallel];
    if let Some(sweep) = ndpx_sim::knobs::THREAD_SWEEP.raw() {
        for n in sweep.split(',').filter_map(|s| s.trim().parse::<usize>().ok()) {
            let (p, _) = run_matrix(&specs, CellPool::with_threads(n), &cache, None);
            eprintln!("sweep threads={n}: {:.3}s ({:.0} ops/s)", p.wall_s, p.rate());
            phases.push(p);
        }
    }
    let (serial, parallel) = (&phases[0], &phases[1]);

    let agg = parallel.rate();
    let mut baseline_agg = None;
    if let Some(path) = check_path {
        let old = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let old_digests = parse_digests(&old);
        let mut mismatches = 0;
        for cell in &parallel.cells {
            match old_digests.iter().find(|(k, _)| *k == cell.key) {
                Some((_, d)) if *d == cell.digest => {}
                Some((_, d)) => {
                    eprintln!(
                        "DIGEST MISMATCH {}: baseline {d:016x} != current {:016x}",
                        cell.key, cell.digest
                    );
                    mismatches += 1;
                }
                None => eprintln!("note: baseline has no cell {}", cell.key),
            }
        }
        if mismatches > 0 {
            eprintln!("{mismatches} digest mismatch(es): simulated results changed");
            std::process::exit(1);
        }
        baseline_agg = parse_number(&old, "\"sim_ops_per_sec\":");
        if let Some(b) = baseline_agg {
            eprintln!("digests unchanged; speedup over baseline: {:.2}x", agg / b);
        } else {
            eprintln!("digests unchanged ({} cells)", parallel.cells.len());
        }
    }

    let speedup = serial.wall_s / parallel.wall_s.max(1e-9);
    if plan.host_cpus == 1 && speedup < 1.0 {
        eprintln!(
            "note: speedup {speedup:.3}x < 1.0 on a 1-CPU host — pool overhead, not a simulator regression"
        );
    }

    let out_path = ndpx_sim::knobs::PERF_OUT.raw().unwrap_or_else(|| "BENCH_PERF.json".to_string());
    let json = render_json(
        scale,
        &phases,
        plan,
        &cache_stats,
        baseline_agg,
        &run_manifest,
        &micros,
        &batch_cells,
    );
    std::fs::write(&out_path, json).expect("write BENCH_PERF.json");
    println!(
        "{agg:.0} simulated ops/sec over {} cells at {} thread(s) ({:.2}x vs serial) -> {out_path}",
        parallel.cells.len(),
        parallel.threads,
        serial.wall_s / parallel.wall_s.max(1e-9)
    );
}

/// Renders the report (`ndpx-perf-gauge-v6`: v5 plus the telemetry line —
/// whether windowed timelines and the phase profiler were active during the
/// measured run — and an explicit `pool_overhead` flag for sub-1.0 speedups
/// on single-CPU hosts). Hand-rolled: the workspace has no JSON dependency,
/// and the format below is line-oriented so `parse_digests` can read it
/// back without a parser (v1–v5 baselines parse the same way).
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: BenchScale,
    phases: &[Phase],
    plan: ThreadPlan,
    cache_stats: &ndpx_workloads::TraceCacheStats,
    baseline_agg: Option<f64>,
    run_manifest: &RunManifest,
    micros: &[MicroResult],
    batch_cells: &[BatchCell],
) -> String {
    let (serial, parallel) = (&phases[0], &phases[1]);
    let agg = parallel.rate();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"ndpx-perf-gauge-v6\",");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"queue_impl\": \"{}\",", QueueImpl::from_env().name());
    let _ = writeln!(s, "  \"threads\": {},", parallel.threads);
    let _ = writeln!(s, "  \"requested_threads\": {},", plan.requested);
    let _ = writeln!(s, "  \"host_cpus\": {},", plan.host_cpus);
    let _ = writeln!(s, "  \"oversubscribed\": {},", plan.oversubscribed());
    let _ = writeln!(s, "  \"ops_total\": {},", parallel.ops_total());
    let _ = writeln!(s, "  \"wall_seconds\": {:.3},", parallel.wall_s);
    let _ = writeln!(s, "  \"sim_ops_per_sec\": {agg:.1},");
    let _ = writeln!(s, "  \"events_total\": {},", run_manifest.events_total());
    let _ = writeln!(s, "  \"events_per_sec\": {:.1},", run_manifest.events_per_sec());
    let _ = writeln!(s, "  \"peak_queue_depth\": {},", run_manifest.peak_queue_depth());
    let _ = writeln!(s, "  \"serial_wall_seconds\": {:.3},", serial.wall_s);
    let _ = writeln!(s, "  \"serial_sim_ops_per_sec\": {:.1},", serial.rate());
    // `engine.events` is defined as completed ops (one queue event can
    // carry a whole run-ahead batch), so the serial event rate IS the
    // serial op rate; written explicitly so trend tooling need not know
    // that equivalence.
    let _ = writeln!(s, "  \"serial_events_per_sec\": {:.1},", serial.rate());
    let speedup = serial.wall_s / parallel.wall_s.max(1e-9);
    let _ = writeln!(s, "  \"parallel_speedup_vs_serial\": {speedup:.3},");
    // On a 1-CPU host the pool cannot win: the cached phase pays thread
    // spawn + channel overhead on the same core the serial phase had to
    // itself. Name that case rather than letting the sub-1.0 speedup read
    // as a simulator regression.
    let _ = writeln!(s, "  \"pool_overhead\": {},", plan.host_cpus == 1 && speedup < 1.0);
    let _ = writeln!(
        s,
        "  \"telemetry\": {{\"timeline\": {}, \"profile\": {}}},",
        timeline_active(),
        profile_active()
    );
    let _ = writeln!(
        s,
        "  \"trace_cache\": {{\"hits\": {}, \"misses\": {}, \"saved_seconds\": {:.3}}},",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.saved().as_secs_f64()
    );
    if let Some(b) = baseline_agg {
        let _ = writeln!(s, "  \"baseline_sim_ops_per_sec\": {b:.1},");
        let _ = writeln!(s, "  \"speedup_over_baseline\": {:.3},", agg / b);
    }
    let b = BatchCell::sum(batch_cells);
    let _ = writeln!(
        s,
        "  \"batch\": {{\"enabled\": {}, \"batches\": {}, \"ops\": {}, \"fast_hits\": {}, \"max_len\": {}, \"mean_len\": {:.3}, \"fast_hit_ratio\": {:.4}}},",
        b.enabled,
        b.batches,
        b.ops,
        b.fast_hits,
        b.max_len,
        b.mean_len(),
        b.fast_hit_ratio()
    );
    if !micros.is_empty() {
        s.push_str("  \"micro\": [\n");
        for (i, m) in micros.iter().enumerate() {
            let comma = if i + 1 < micros.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.2}, \"ops_per_sec\": {:.1}}}{comma}",
                m.name,
                m.iters,
                m.ns_per_iter,
                m.ops_per_sec()
            );
        }
        s.push_str("  ],\n");
    }
    s.push_str("  \"runs\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"threads\": {}, \"host_cpus\": {}, \"oversubscribed\": {}, \"trace_cache\": {}, \"wall_seconds\": {:.3}, \"sim_ops_per_sec\": {:.1}}}{comma}",
            p.threads,
            plan.host_cpus,
            p.threads > plan.host_cpus,
            p.cached,
            p.wall_s,
            p.rate()
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"per_policy\": {\n");
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        let (ops, wall): (u64, f64) = parallel
            .cells
            .iter()
            .filter(|c| c.policy == *policy)
            .fold((0, 0.0), |(o, w), c| (o + c.ops, w + c.wall_s));
        let rate = if wall > 0.0 { ops as f64 / wall } else { 0.0 };
        let comma = if i + 1 < PolicyKind::ALL.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{}\": {rate:.1}{comma}", policy.label());
    }
    s.push_str("  },\n");
    s.push_str("  \"cells\": [\n");
    for (i, (c, m)) in parallel.cells.iter().zip(&run_manifest.cells).enumerate() {
        let comma = if i + 1 < parallel.cells.len() { "," } else { "" };
        let bc = batch_cells.get(i).copied().unwrap_or_default();
        let _ = writeln!(
            s,
            "    {{\"cell\": \"{}\", \"ops\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"worker\": {}, \"events_per_sec\": {:.1}, \"peak_queue_depth\": {}, \"batch_mean_len\": {:.3}, \"batch_fast_hit_ratio\": {:.4}, \"digest\": \"{:016x}\"}}{comma}",
            c.key,
            c.ops,
            c.wall_s * 1e3,
            c.ops_per_sec(),
            c.worker,
            m.events_per_sec(),
            m.peak_queue_depth,
            bc.mean_len(),
            bc.fast_hit_ratio(),
            c.digest
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `("cell", digest)` pairs from a previously written report
/// (v1, v2, or v3 — the cell line format only ever gains fields, so the
/// line-oriented scan reads every version).
fn parse_digests(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(cell) = extract_str(line, "\"cell\": \"") else { continue };
        let Some(digest) = extract_str(line, "\"digest\": \"") else { continue };
        if let Ok(d) = u64::from_str_radix(digest, 16) {
            out.push((cell.to_string(), d));
        }
    }
    out
}

/// True when `NDPX_TIMELINE` pointed the run at a timeline output path.
fn timeline_active() -> bool {
    ndpx_sim::knobs::TIMELINE.path().is_some()
}

/// True when `NDPX_PROFILE` enabled the sim-phase profiler.
fn profile_active() -> bool {
    ndpx_sim::knobs::PROFILE.bool_or(false)
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn parse_number(json: &str, key: &str) -> Option<f64> {
    for line in json.lines() {
        if let Some(pos) = line.find(key) {
            let rest = line[pos + key.len()..].trim().trim_end_matches(',');
            return rest.parse().ok();
        }
    }
    None
}
