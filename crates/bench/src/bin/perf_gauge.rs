//! Wall-clock performance gauge for the simulator itself.
//!
//! Runs a fixed (mem, policy, workload) spec matrix at the `NDPX_SCALE`
//! profile, digests every `RunReport` (makespan, counters, breakdown,
//! energy), and writes `BENCH_PERF.json` with simulated ops per wall-clock
//! second, per cell and per policy. Perf optimisations must keep every
//! digest byte-identical — only the wall clock may move.
//!
//! Usage:
//!   perf_gauge                      # measure, write BENCH_PERF.json
//!   perf_gauge --check OLD.json     # additionally assert digests match
//!                                   # OLD.json and report the speedup
//!   NDPX_PERF_OUT=path perf_gauge   # write somewhere else
//!
//! `--check` exits non-zero on any digest mismatch, so the CI smoke run
//! doubles as a regression gate for simulated results.

use std::fmt::Write as _;
use std::time::Instant;

use ndpx_bench::digest::report_digest;
use ndpx_bench::runner::{run_ndp, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};

/// The fixed matrix: both memory families, every policy, and one workload
/// per pattern class (dense affine, skewed indirect, graph).
const WORKLOADS: [&str; 3] = ["mv", "pr", "recsys"];
const MEMS: [(MemKind, &str); 2] = [(MemKind::Hbm, "hbm"), (MemKind::Hmc, "hmc")];

struct Cell {
    mem: &'static str,
    policy: PolicyKind,
    workload: &'static str,
    ops: u64,
    wall_s: f64,
    digest: u64,
}

impl Cell {
    fn key(&self) -> String {
        format!("{}/{}/{}", self.mem, self.policy.label(), self.workload)
    }

    fn ops_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ops as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn scale_name(scale: BenchScale) -> &'static str {
    match scale {
        BenchScale::Test => "test",
        BenchScale::Small => "small",
        BenchScale::Paper => "paper",
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    // Divisor keeps the gauge itself fast: the matrix has 36 cells.
    let ops = (scale.ops_per_core() / 4).max(1000);

    let mut cells = Vec::new();
    let t_total = Instant::now();
    for (mem, mem_name) in MEMS {
        for policy in PolicyKind::ALL {
            for workload in WORKLOADS {
                let spec =
                    RunSpec { ops_per_core: ops, ..RunSpec::new(mem, policy, workload, scale) };
                let t0 = Instant::now();
                let report = run_ndp(&spec);
                let wall_s = t0.elapsed().as_secs_f64();
                let cell = Cell {
                    mem: mem_name,
                    policy,
                    workload,
                    ops: report.ops,
                    wall_s,
                    digest: report_digest(&report),
                };
                eprintln!(
                    "{:<28} {:>9.0} ops/s  digest {:016x}",
                    cell.key(),
                    cell.ops_per_sec(),
                    cell.digest
                );
                cells.push(cell);
            }
        }
    }
    let wall_total = t_total.elapsed().as_secs_f64();
    let ops_total: u64 = cells.iter().map(|c| c.ops).sum();
    let agg = ops_total as f64 / wall_total;

    let mut baseline_agg = None;
    if let Some(path) = check_path {
        let old = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let old_digests = parse_digests(&old);
        let mut mismatches = 0;
        for cell in &cells {
            match old_digests.iter().find(|(k, _)| *k == cell.key()) {
                Some((_, d)) if *d == cell.digest => {}
                Some((_, d)) => {
                    eprintln!(
                        "DIGEST MISMATCH {}: baseline {d:016x} != current {:016x}",
                        cell.key(),
                        cell.digest
                    );
                    mismatches += 1;
                }
                None => eprintln!("note: baseline has no cell {}", cell.key()),
            }
        }
        if mismatches > 0 {
            eprintln!("{mismatches} digest mismatch(es): simulated results changed");
            std::process::exit(1);
        }
        baseline_agg = parse_number(&old, "\"sim_ops_per_sec\":");
        if let Some(b) = baseline_agg {
            eprintln!("digests unchanged; speedup over baseline: {:.2}x", agg / b);
        } else {
            eprintln!("digests unchanged ({} cells)", cells.len());
        }
    }

    let out_path = std::env::var("NDPX_PERF_OUT").unwrap_or_else(|_| "BENCH_PERF.json".to_string());
    let json = render_json(scale, &cells, ops_total, wall_total, agg, baseline_agg);
    std::fs::write(&out_path, json).expect("write BENCH_PERF.json");
    println!("{agg:.0} simulated ops/sec over {} cells -> {out_path}", cells.len());
}

/// Renders the report. Hand-rolled: the workspace has no JSON dependency,
/// and the format below is line-oriented so `parse_digests` can read it
/// back without a parser.
fn render_json(
    scale: BenchScale,
    cells: &[Cell],
    ops_total: u64,
    wall_total: f64,
    agg: f64,
    baseline_agg: Option<f64>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"ndpx-perf-gauge-v1\",");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"ops_total\": {ops_total},");
    let _ = writeln!(s, "  \"wall_seconds\": {wall_total:.3},");
    let _ = writeln!(s, "  \"sim_ops_per_sec\": {agg:.1},");
    if let Some(b) = baseline_agg {
        let _ = writeln!(s, "  \"baseline_sim_ops_per_sec\": {b:.1},");
        let _ = writeln!(s, "  \"speedup_over_baseline\": {:.3},", agg / b);
    }
    s.push_str("  \"per_policy\": {\n");
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        let (ops, wall): (u64, f64) = cells
            .iter()
            .filter(|c| c.policy == *policy)
            .fold((0, 0.0), |(o, w), c| (o + c.ops, w + c.wall_s));
        let rate = if wall > 0.0 { ops as f64 / wall } else { 0.0 };
        let comma = if i + 1 < PolicyKind::ALL.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{}\": {rate:.1}{comma}", policy.label());
    }
    s.push_str("  },\n");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"cell\": \"{}\", \"ops\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"digest\": \"{:016x}\"}}{comma}",
            c.key(),
            c.ops,
            c.wall_s * 1e3,
            c.ops_per_sec(),
            c.digest
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `("cell", digest)` pairs from a previously written report.
fn parse_digests(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(cell) = extract_str(line, "\"cell\": \"") else { continue };
        let Some(digest) = extract_str(line, "\"digest\": \"") else { continue };
        if let Ok(d) = u64::from_str_radix(digest, 16) {
            out.push((cell.to_string(), d));
        }
    }
    out
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn parse_number(json: &str, key: &str) -> Option<f64> {
    for line in json.lines() {
        if let Some(pos) = line.find(key) {
            let rest = line[pos + key.len()..].trim().trim_end_matches(',');
            return rest.parse().ok();
        }
    }
    None
}
