//! Runs every figure/table binary in sequence — the one-command paper
//! reproduction. Honors `NDPX_SCALE` like the individual binaries.

use std::process::Command;

const STEPS: [(&str, &[&str]); 9] = [
    ("fig02_breakdown", &[]),
    ("fig04_maxflow", &[]),
    ("fig05_overall", &["--mem", "hbm"]),
    ("fig05_overall", &["--mem", "hmc"]),
    ("fig06_energy", &[]),
    ("fig07_latency_miss", &[]),
    ("fig08a_scaling", &[]),
    ("fig08b_cxl", &[]),
    ("tab_consistent_hash", &[]),
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    if let Some(metrics) = ndpx_bench::manifest::metrics_dir() {
        println!(
            "telemetry: each step writes metrics.json + registry sidecars under {}",
            metrics.display()
        );
    }
    let mut failed = 0;
    for (bin, args) in STEPS {
        println!("\n======== {bin} {} ========", args.join(" "));
        let status = Command::new(dir.join(bin)).args(args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("step {bin} failed: {other:?}");
                failed += 1;
            }
        }
    }
    println!("\n======== fig09_design all ========");
    let status = Command::new(dir.join("fig09_design")).arg("all").status();
    if !matches!(status, Ok(s) if s.success()) {
        failed += 1;
    }
    if failed > 0 {
        eprintln!("{failed} step(s) failed");
        std::process::exit(1);
    }
}
