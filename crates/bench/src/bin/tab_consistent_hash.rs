//! §V-D table: consistent hashing vs bulk invalidation at reconfiguration.
//!
//! Expected shape (paper): consistent hashing cuts invalidation traffic
//! (paper: −9.4% on average) and yields a small overall speedup (+3.7%);
//! migration requests stay a small fraction of all accesses (~1.3%).

use ndpx_bench::runner::{geomean, run_many, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind, ReconfigTransfer};
use ndpx_workloads::ALL_WORKLOADS;

fn main() {
    let scale = BenchScale::from_env();
    println!("# V-D: consistent hashing vs bulk invalidation (NDPExt)");
    println!(
        "{:<11} {:>10} {:>10} {:>9} {:>10}",
        "workload", "inv_bulk", "inv_cons", "speedup", "migr_frac"
    );
    let mut speedups = Vec::new();
    let mut inv_ratios = Vec::new();
    let mut specs = Vec::new();
    for &w in &ALL_WORKLOADS {
        specs.push(
            RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, w, scale)
                .with_tweak(|cfg| cfg.transfer = ReconfigTransfer::BulkInvalidate),
        );
        specs.push(
            RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, w, scale)
                .with_tweak(|cfg| cfg.transfer = ReconfigTransfer::ConsistentHash),
        );
    }
    let reports = run_many(specs);
    for (i, &w) in ALL_WORKLOADS.iter().enumerate() {
        let bulk = &reports[2 * i];
        let cons = &reports[2 * i + 1];
        let speedup = bulk.sim_time.as_ps() as f64 / cons.sim_time.as_ps() as f64;
        let migr_frac =
            cons.migrations as f64 / (cons.cache_hits + cons.cache_misses).max(1) as f64;
        println!(
            "{:<11} {:>10} {:>10} {:>9.3} {:>10.4}",
            w, bulk.invalidations, cons.invalidations, speedup, migr_frac
        );
        speedups.push(speedup);
        if bulk.invalidations > 0 {
            inv_ratios.push((cons.invalidations.max(1)) as f64 / bulk.invalidations as f64);
        }
    }
    println!(
        "\nspeedup geomean {:.3} (paper: 1.037); invalidation ratio geomean {:.3} (paper: ~0.91)",
        geomean(speedups),
        geomean(inv_ratios)
    );
}
