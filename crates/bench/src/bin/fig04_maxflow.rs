//! Figure 4(b): host-processor execution time of the max-flow sampler
//! assignment as the stream count grows.
//!
//! Expected shape (paper): well under half a millisecond even at 512
//! streams on 64 units.

use std::time::Instant;

use ndpx_core::runtime::maxflow::assign_samplers;
use ndpx_sim::rng::Xoshiro256;

fn main() {
    println!("# Fig 4b: sampler-assignment (Edmonds-Karp) host runtime");
    println!("{:>8}  {:>12}  {:>8}", "streams", "time_us", "covered");
    let units = 64;
    let samplers = 4;
    for &streams in &[32usize, 64, 128, 256, 512] {
        // Each unit accesses a random ~25% subset of the streams.
        let mut rng = Xoshiro256::seed_from(42);
        let accessed: Vec<Vec<usize>> =
            (0..units).map(|_| (0..streams).filter(|_| rng.chance(0.25)).collect()).collect();
        // Median of several runs for a stable wall-clock figure.
        let mut times: Vec<f64> = (0..9)
            .map(|_| {
                let t0 = Instant::now();
                let a = assign_samplers(&accessed, streams, samplers);
                let dt = t0.elapsed().as_secs_f64() * 1e6;
                assert!(a.covered <= streams);
                dt
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let a = assign_samplers(&accessed, streams, samplers);
        println!("{streams:>8}  {:>12.1}  {:>8}", times[times.len() / 2], a.covered);
    }
    println!("\n(paper: < 500 us to assign 512 streams)");
}
