//! CI fault-smoke: end-to-end proof that the fault stack behaves.
//!
//! Requires `NDPX_FAULT_SEED` plus at least one nonzero `NDPX_FAULT_*`
//! rate in the environment (the CI job sets aggressive rates) and then:
//!
//! 1. runs a 6-cell matrix (every policy on HBM/pagerank) twice — serial
//!    and on a 4-wide [`CellPool`] — asserting byte-identical digests and
//!    registry dumps, i.e. the seeded injection schedule is thread-count
//!    invariant;
//! 2. asserts the run actually injected faults (nonzero `fault.*`
//!    counters), so a silently-disabled injector cannot pass;
//! 3. re-runs one cell next to a deliberately panicking cell through the
//!    panic-isolated [`CellPool::run_cells`] path and
//!    [`manifest::emit_outcomes`], asserting the sweep completes with
//!    partial results and (under `NDPX_METRICS`) a failure manifest.
//!
//! Exit codes: 0 on success, 2 on missing/zeroed fault environment, 1 on
//! any assertion failure (via panic).

use ndpx_bench::digest::report_digest;
use ndpx_bench::gauge::cell_key;
use ndpx_bench::manifest;
use ndpx_bench::pool::{CellPool, CellTask, RetryPolicy};
use ndpx_bench::runner::{run_many_with, run_ndp_cached, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_core::stats::RunReport;
use ndpx_sim::fault::FaultConfig;
use ndpx_sim::telemetry::StatValue;
use ndpx_workloads::TraceCache;

const SMOKE_OPS: u64 = 750;

fn specs() -> Vec<RunSpec> {
    PolicyKind::ALL
        .iter()
        .map(|&policy| RunSpec {
            ops_per_core: SMOKE_OPS,
            ..RunSpec::new(MemKind::Hbm, policy, "pr", BenchScale::Test)
        })
        .collect()
}

fn count(r: &RunReport, path: &str) -> u64 {
    r.registry.get(path).and_then(StatValue::as_count).unwrap_or(0)
}

fn injected(r: &RunReport) -> u64 {
    count(r, "fault.mem.ce")
        + count(r, "fault.mem.ue")
        + count(r, "fault.cxl.crc_errors")
        + count(r, "fault.noc.retransmits")
}

fn main() {
    let fcfg = FaultConfig::from_env();
    if fcfg.seed.is_none() {
        eprintln!(
            "fault_smoke: {} is unset; nothing to smoke-test",
            ndpx_sim::knobs::FAULT_SEED.name
        );
        std::process::exit(2);
    }
    if fcfg.cxl_ber <= 0.0 && fcfg.mem_ce <= 0.0 && fcfg.mem_ue <= 0.0 && fcfg.noc_fer <= 0.0 {
        eprintln!(
            "fault_smoke: all fault rates are zero; set at least one (e.g. {}=1e-2)",
            ndpx_sim::knobs::FAULT_MEM_CE.name
        );
        std::process::exit(2);
    }

    // Phase 1: thread-count invariance of the seeded schedule. The fault
    // config reaches every cell through the environment (SystemConfig
    // inherits FaultConfig::from_env()).
    let matrix = specs();
    let serial = run_many_with(CellPool::with_threads(1), &TraceCache::disabled(), &matrix);
    let pooled = run_many_with(CellPool::with_threads(4), &TraceCache::new(), &matrix);
    for ((spec, a), b) in matrix.iter().zip(&serial).zip(&pooled) {
        let key = cell_key(spec);
        assert_eq!(
            report_digest(a),
            report_digest(b),
            "{key}: digest differs between 1 and 4 threads under a fixed fault seed"
        );
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "{key}: registry dump differs between 1 and 4 threads under a fixed fault seed"
        );
    }
    println!("fault_smoke: {} cells thread-invariant under seeded faults", matrix.len());

    // Phase 2: the configured rates must actually inject.
    let total_injected: u64 = serial.iter().map(injected).sum();
    let total_rolls: u64 = serial
        .iter()
        .map(|r| {
            count(r, "fault.mem.rolls") + count(r, "fault.cxl.rolls") + count(r, "fault.noc.rolls")
        })
        .sum();
    assert!(total_rolls > 0, "fault plans drew no decisions; injectors look disabled");
    assert!(
        total_injected > 0,
        "no faults injected across the matrix; raise the configured fault rates"
    );
    println!("fault_smoke: {total_injected} faults injected over {total_rolls} decisions");

    // Phase 3: panic isolation. One real cell and one deliberately
    // panicking cell run through the outcome-carrying pool path; the sweep
    // must complete, keep the real result, and (under NDPX_METRICS) leave
    // a failure manifest naming the lost cell.
    let demo_spec = matrix[0].clone();
    let cache = TraceCache::new();
    let names = vec![cell_key(&demo_spec), "smoke/deliberate-panic".to_string()];
    let tasks: Vec<CellTask<'_, RunReport>> = vec![
        Box::new({
            let cache = &cache;
            let spec = demo_spec.clone();
            move || run_ndp_cached(&spec, cache)
        }),
        Box::new(|| -> RunReport { panic!("deliberate fault_smoke panic") }),
    ];
    let completions = CellPool::with_threads(2).run_cells(RetryPolicy::from_env(), tasks);
    manifest::emit_outcomes("fault_smoke", 2, &names, &completions, Some(cache.stats()));
    let failed: Vec<&String> = names
        .iter()
        .zip(&completions)
        .filter(|(_, c)| c.outcome.is_failed())
        .map(|(n, _)| n)
        .collect();
    assert_eq!(
        failed,
        vec!["smoke/deliberate-panic"],
        "exactly the deliberate panic cell must fail; siblings must survive"
    );
    assert!(
        completions[0].outcome.value().is_some(),
        "the healthy cell must produce a report despite its panicking sibling"
    );
    println!("fault_smoke: panic-isolated sweep completed with partial results");
    println!("fault_smoke: OK");
}
