//! Figure 6: energy breakdown, NDPExt vs Nexus, normalized to Nexus.
//!
//! Expected shape (paper): NDPExt saves ≈40% total energy on average —
//! static energy follows execution time, DRAM energy drops (fewer tag
//! accesses, fewer extended-memory misses), interconnect energy roughly
//! halves.

use ndpx_bench::runner::{geomean, run_many, BenchScale, RunSpec};
use ndpx_core::config::{MemKind, PolicyKind};
use ndpx_workloads::ALL_WORKLOADS;

fn main() {
    let scale = BenchScale::from_env();
    println!("# Fig 6: energy breakdown (normalized to Nexus total)");
    println!(
        "{:<11} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload",
        "nx-st",
        "nx-dram",
        "nx-noc",
        "nx-cxl",
        "nx-tot",
        "nd-st",
        "nd-dram",
        "nd-noc",
        "nd-cxl",
        "nd-tot"
    );

    let mut specs = Vec::new();
    for &w in &ALL_WORKLOADS {
        specs.push(RunSpec::new(MemKind::Hbm, PolicyKind::Nexus, w, scale));
        specs.push(RunSpec::new(MemKind::Hbm, PolicyKind::NdpExt, w, scale));
    }
    let reports = run_many(specs);

    let mut totals = Vec::new();
    for (i, &w) in ALL_WORKLOADS.iter().enumerate() {
        let nexus = &reports[2 * i];
        let ndpx = &reports[2 * i + 1];
        let base = nexus.energy.total().as_pj();
        let f = |e: ndpx_sim::energy::Energy| e.as_pj() / base;
        println!(
            "{:<11} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            w,
            f(nexus.energy.static_),
            f(nexus.energy.dram),
            f(nexus.energy.noc),
            f(nexus.energy.cxl),
            1.0,
            f(ndpx.energy.static_),
            f(ndpx.energy.dram),
            f(ndpx.energy.noc),
            f(ndpx.energy.cxl),
            f(ndpx.energy.total()),
        );
        totals.push(f(ndpx.energy.total()));
    }
    println!(
        "\nNDPExt total energy vs Nexus: geomean {:.2} (paper: ~0.60, i.e. 40.3% saving)",
        geomean(totals)
    );
}
