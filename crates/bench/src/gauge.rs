//! The fixed perf-gauge cell matrix.
//!
//! One canonical definition of the 36-cell `(mem, policy, workload)` matrix
//! that `perf_gauge` measures and `BENCH_PERF.json` records, shared with the
//! determinism tests so a matrix change cannot silently decouple the gauge
//! from its regression gate.

use ndpx_core::config::{MemKind, PolicyKind};

use crate::runner::{BenchScale, RunSpec};

/// One workload per pattern class: dense affine, graph, skewed indirect.
pub const GAUGE_WORKLOADS: [&str; 3] = ["mv", "pr", "recsys"];

/// Both memory families with their report labels.
pub const GAUGE_MEMS: [(MemKind, &str); 2] = [(MemKind::Hbm, "hbm"), (MemKind::Hmc, "hmc")];

/// Report label of a memory family.
pub fn mem_name(mem: MemKind) -> &'static str {
    match mem {
        MemKind::Hbm => "hbm",
        MemKind::Hmc => "hmc",
    }
}

/// Report label of a scale profile.
pub fn scale_name(scale: BenchScale) -> &'static str {
    match scale {
        BenchScale::Test => "test",
        BenchScale::Small => "small",
        BenchScale::Paper => "paper",
    }
}

/// The gauge's per-core op count at `scale` (a divisor keeps the 36-cell
/// matrix fast relative to headline runs).
pub fn gauge_ops(scale: BenchScale) -> u64 {
    (scale.ops_per_core() / 4).max(1000)
}

/// The 36 cells in canonical order: mems × policies × workloads.
pub fn gauge_specs(scale: BenchScale, ops_per_core: u64) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (mem, _) in GAUGE_MEMS {
        for policy in PolicyKind::ALL {
            for workload in GAUGE_WORKLOADS {
                specs.push(RunSpec { ops_per_core, ..RunSpec::new(mem, policy, workload, scale) });
            }
        }
    }
    specs
}

/// The `"cell"` key a spec is recorded under in `BENCH_PERF.json`.
pub fn cell_key(spec: &RunSpec) -> String {
    format!("{}/{}/{}", mem_name(spec.mem), spec.policy.label(), spec.workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_36_unique_cells() {
        let specs = gauge_specs(BenchScale::Test, 100);
        assert_eq!(specs.len(), 36);
        let mut keys: Vec<String> = specs.iter().map(cell_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 36, "cell keys must be unique");
    }

    #[test]
    fn labels_match_the_mems_table() {
        for (mem, name) in GAUGE_MEMS {
            assert_eq!(mem_name(mem), name);
        }
    }
}
