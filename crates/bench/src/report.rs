//! Run-diff reporting: compare two perf-gauge reports (and optionally two
//! timelines or registry dumps) and render a markdown trend report.
//!
//! This is the library half of the `ndpx_report` binary. The comparison is
//! split by signal quality:
//!
//! * **Digests** are deterministic — any mismatch means simulated results
//!   changed and is always a hard failure.
//! * **Throughput aggregates** (`sim_ops_per_sec`, the serial rate, the
//!   event rate, per-policy rates) are wall-clock measurements on shared CI
//!   runners, so they regress *advisorily*: the report lists them and the
//!   caller decides whether to enforce (`--strict` / `NDPX_REPORT_STRICT`).
//! * **Per-cell rates** are the noisiest; they are reported as the biggest
//!   movers but never drive the exit status on their own.
//!
//! Everything is parsed with [`Json`], the dependency-free telemetry
//! parser, so any line-format drift between gauge schema versions
//! (v1 … v6) is absorbed by real parsing instead of line scans.

use std::fmt::Write as _;

use ndpx_sim::telemetry::Json;

/// One run's worth of perf-gauge output, reduced to the fields the diff
/// needs. Missing fields (older schemas) parse as zero / empty rather than
/// failing, so v1 baselines still compare.
#[derive(Debug, Clone, Default)]
pub struct PerfRun {
    /// Schema tag (`ndpx-perf-gauge-vN`).
    pub schema: String,
    /// Scale profile name (`micro`, `small`, …).
    pub scale: String,
    /// Event-queue backend the run used.
    pub queue_impl: String,
    /// Pool width of the measured (cached) phase.
    pub threads: u64,
    /// CPUs visible to the run.
    pub host_cpus: u64,
    /// Aggregate cached-phase throughput.
    pub sim_ops_per_sec: f64,
    /// Serial-phase throughput (the historical baseline path).
    pub serial_sim_ops_per_sec: f64,
    /// Aggregate event rate.
    pub events_per_sec: f64,
    /// Cached-phase wall-clock speedup over the serial phase.
    pub speedup_vs_serial: f64,
    /// v6: the sub-1.0-speedup-on-1-CPU case, named.
    pub pool_overhead: bool,
    /// Per-policy throughput, in report order.
    pub per_policy: Vec<(String, f64)>,
    /// Per-cell results, in report order.
    pub cells: Vec<CellPerf>,
}

/// One cell of a perf-gauge report.
#[derive(Debug, Clone, Default)]
pub struct CellPerf {
    /// Cell key (`mem/policy/workload`).
    pub key: String,
    /// Cell throughput.
    pub ops_per_sec: f64,
    /// Cell wall time in milliseconds.
    pub wall_ms: f64,
    /// Report digest as the 16-hex-digit string the gauge wrote.
    pub digest: String,
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn text(doc: &Json, key: &str) -> String {
    doc.get(key).and_then(Json::as_str).unwrap_or("").to_string()
}

/// Parses a perf-gauge report (any schema version).
///
/// # Errors
///
/// Returns the parser's message when `source` is not valid JSON or has no
/// top-level object.
pub fn parse_perf(source: &str) -> Result<PerfRun, String> {
    let doc = Json::parse(source)?;
    if doc.as_object().is_none() {
        return Err("perf report is not a JSON object".into());
    }
    let per_policy = doc
        .get("per_policy")
        .and_then(Json::as_object)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|r| (k.clone(), r)))
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .map(|c| CellPerf {
                    key: text(c, "cell"),
                    ops_per_sec: num(c, "ops_per_sec"),
                    wall_ms: num(c, "wall_ms"),
                    digest: text(c, "digest"),
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    Ok(PerfRun {
        schema: text(&doc, "schema"),
        scale: text(&doc, "scale"),
        queue_impl: text(&doc, "queue_impl"),
        threads: num(&doc, "threads") as u64,
        host_cpus: num(&doc, "host_cpus") as u64,
        sim_ops_per_sec: num(&doc, "sim_ops_per_sec"),
        serial_sim_ops_per_sec: num(&doc, "serial_sim_ops_per_sec"),
        events_per_sec: num(&doc, "events_per_sec"),
        speedup_vs_serial: num(&doc, "parallel_speedup_vs_serial"),
        pool_overhead: doc.get("pool_overhead").and_then(Json::as_bool).unwrap_or(false),
        per_policy,
        cells,
    })
}

/// One metric compared across the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name as shown in the report.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl Delta {
    /// `current / baseline`; 1.0 when the baseline is zero (no signal).
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            1.0
        }
    }

    /// Signed percentage change.
    pub fn pct(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }
}

/// The full diff of two perf runs.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Regression threshold as a fraction (0.10 = flag drops past 10%).
    pub threshold: f64,
    /// Every tracked aggregate, in report order.
    pub aggregates: Vec<Delta>,
    /// The aggregates whose ratio fell below `1 - threshold`.
    pub regressions: Vec<Delta>,
    /// Cells whose digests differ — simulated results changed.
    pub digest_mismatches: Vec<String>,
    /// Cells present in only one of the runs.
    pub missing_cells: Vec<String>,
    /// Per-cell throughput deltas (report order), advisory only.
    pub cell_deltas: Vec<Delta>,
}

impl Comparison {
    /// True when nothing deterministic changed (digests and cell sets
    /// agree). Throughput regressions do *not* make a comparison unclean.
    pub fn is_clean(&self) -> bool {
        self.digest_mismatches.is_empty() && self.missing_cells.is_empty()
    }
}

/// Compares `cur` against `base` at `threshold` (a fraction; 0.10 flags
/// throughput drops beyond 10%).
pub fn compare(base: &PerfRun, cur: &PerfRun, threshold: f64) -> Comparison {
    let mut aggregates = vec![
        Delta {
            name: "sim_ops_per_sec".into(),
            baseline: base.sim_ops_per_sec,
            current: cur.sim_ops_per_sec,
        },
        Delta {
            name: "serial_sim_ops_per_sec".into(),
            baseline: base.serial_sim_ops_per_sec,
            current: cur.serial_sim_ops_per_sec,
        },
        Delta {
            name: "events_per_sec".into(),
            baseline: base.events_per_sec,
            current: cur.events_per_sec,
        },
    ];
    for (policy, rate) in &cur.per_policy {
        let baseline =
            base.per_policy.iter().find(|(p, _)| p == policy).map(|(_, r)| *r).unwrap_or(0.0);
        aggregates.push(Delta { name: format!("policy/{policy}"), baseline, current: *rate });
    }
    let regressions = aggregates.iter().filter(|d| d.ratio() < 1.0 - threshold).cloned().collect();

    let mut digest_mismatches = Vec::new();
    let mut missing_cells = Vec::new();
    let mut cell_deltas = Vec::new();
    for cell in &cur.cells {
        match base.cells.iter().find(|c| c.key == cell.key) {
            Some(b) => {
                if !b.digest.is_empty() && b.digest != cell.digest {
                    digest_mismatches.push(cell.key.clone());
                }
                cell_deltas.push(Delta {
                    name: cell.key.clone(),
                    baseline: b.ops_per_sec,
                    current: cell.ops_per_sec,
                });
            }
            None => missing_cells.push(cell.key.clone()),
        }
    }
    for cell in &base.cells {
        if !cur.cells.iter().any(|c| c.key == cell.key) {
            missing_cells.push(cell.key.clone());
        }
    }
    Comparison { threshold, aggregates, regressions, digest_mismatches, missing_cells, cell_deltas }
}

fn fmt_rate(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Renders the markdown report. `sections` are pre-rendered extra blocks
/// (timeline / registry diffs) appended verbatim after the perf tables.
pub fn render_markdown(
    base: &PerfRun,
    cur: &PerfRun,
    cmp: &Comparison,
    sections: &[String],
) -> String {
    let mut s = String::new();
    s.push_str("# ndpx run diff\n\n");
    let _ = writeln!(
        s,
        "| | baseline | current |\n|---|---|---|\n| schema | {} | {} |\n| scale | {} | {} |\n| queue | {} | {} |\n| threads | {} | {} |\n| host cpus | {} | {} |",
        base.schema, cur.schema, base.scale, cur.scale, base.queue_impl, cur.queue_impl,
        base.threads, cur.threads, base.host_cpus, cur.host_cpus
    );
    s.push('\n');

    let verdict = if !cmp.is_clean() {
        "**DIGEST CHANGE** — simulated results differ between the runs."
    } else if !cmp.regressions.is_empty() {
        "**Throughput regression** beyond threshold (advisory; wall-clock noise is expected on shared runners)."
    } else {
        "Clean: digests identical, throughput within threshold."
    };
    let _ = writeln!(s, "{verdict}\n");
    if cur.pool_overhead {
        s.push_str(
            "Note: current run reports `pool_overhead` — sub-1.0 parallel speedup on a \
             1-CPU host is thread-pool cost, not a simulator regression.\n\n",
        );
    }

    s.push_str("## Aggregates\n\n| metric | baseline | current | Δ% |\n|---|---:|---:|---:|\n");
    for d in &cmp.aggregates {
        let flag = if cmp.regressions.contains(d) { " ⚠" } else { "" };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:+.1}%{flag} |",
            d.name,
            fmt_rate(d.baseline),
            fmt_rate(d.current),
            d.pct()
        );
    }
    s.push('\n');

    if !cmp.digest_mismatches.is_empty() {
        s.push_str("## Digest mismatches\n\n");
        for key in &cmp.digest_mismatches {
            let _ = writeln!(s, "- `{key}`");
        }
        s.push('\n');
    }
    if !cmp.missing_cells.is_empty() {
        s.push_str("## Cells in only one run\n\n");
        for key in &cmp.missing_cells {
            let _ = writeln!(s, "- `{key}`");
        }
        s.push('\n');
    }

    // Biggest per-cell movers, both directions. Advisory: at micro scale a
    // cell runs for a few milliseconds and scheduling noise dominates.
    let mut movers: Vec<&Delta> = cmp.cell_deltas.iter().filter(|d| d.baseline > 0.0).collect();
    movers.sort_by(|a, b| {
        a.pct().abs().partial_cmp(&b.pct().abs()).unwrap_or(std::cmp::Ordering::Equal).reverse()
    });
    if !movers.is_empty() {
        s.push_str(
            "## Biggest cell movers\n\n| cell | baseline | current | Δ% |\n|---|---:|---:|---:|\n",
        );
        for d in movers.iter().take(8) {
            let _ = writeln!(
                s,
                "| `{}` | {} | {} | {:+.1}% |",
                d.name,
                fmt_rate(d.baseline),
                fmt_rate(d.current),
                d.pct()
            );
        }
        s.push('\n');
    }

    for sec in sections {
        s.push_str(sec);
        if !sec.ends_with('\n') {
            s.push('\n');
        }
        s.push('\n');
    }
    s
}

/// Reduces one stat value (as timeline / registry JSON renders it) to a
/// scalar: numbers pass through; latency/hist/mean objects contribute their
/// `count`; anything else is zero.
fn scalar_of(v: &Json) -> f64 {
    match v {
        Json::Number(n) => *n,
        Json::Object(_) => v.get("count").and_then(Json::as_f64).unwrap_or(0.0),
        _ => 0.0,
    }
}

/// Diffs two `ndpx-timeline-v1` documents and renders a markdown section:
/// per-series totals across all windows plus the single worst-diverging
/// window. Series whose totals agree exactly are collapsed into a count.
///
/// # Errors
///
/// Returns the parse error if either document is malformed or missing its
/// `windows` array.
pub fn diff_timelines(a_src: &str, b_src: &str, top: usize) -> Result<String, String> {
    /// One window, reduced: (end_ns, flattened scalar stats).
    type Window = (f64, Vec<(String, f64)>);
    let a = Json::parse(a_src)?;
    let b = Json::parse(b_src)?;
    let windows = |doc: &Json| -> Result<Vec<Window>, String> {
        doc.get("windows")
            .and_then(Json::as_array)
            .ok_or_else(|| "timeline has no windows array".to_string())
            .map(|ws| {
                ws.iter()
                    .map(|w| {
                        let end = num(w, "end_ns");
                        let stats = w
                            .get("stats")
                            .and_then(Json::as_object)
                            .map(|fields| {
                                fields
                                    .iter()
                                    .map(|(k, v)| (k.clone(), scalar_of(v)))
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default();
                        (end, stats)
                    })
                    .collect()
            })
    };
    let (wa, wb) = (windows(&a)?, windows(&b)?);

    // Union of series keys, a-side order first.
    let mut keys: Vec<String> = Vec::new();
    for (_, stats) in wa.iter().chain(wb.iter()) {
        for (k, _) in stats {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
    }
    struct Series {
        key: String,
        total_a: f64,
        total_b: f64,
        worst_end_ns: f64,
        worst_gap: f64,
    }
    let val = |stats: &[(String, f64)], key: &str| {
        stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0.0)
    };
    let mut series: Vec<Series> = Vec::new();
    for key in keys {
        let mut s = Series { key, total_a: 0.0, total_b: 0.0, worst_end_ns: 0.0, worst_gap: 0.0 };
        for (end, stats) in &wa {
            let va = val(stats, &s.key);
            let vb = wb
                .iter()
                .find(|(e, _)| e == end)
                .map(|(_, stats)| val(stats, &s.key))
                .unwrap_or(0.0);
            s.total_a += va;
            s.total_b += vb;
            if (va - vb).abs() > s.worst_gap {
                s.worst_gap = (va - vb).abs();
                s.worst_end_ns = *end;
            }
        }
        for (end, stats) in &wb {
            if !wa.iter().any(|(e, _)| e == end) {
                let vb = val(stats, &s.key);
                s.total_b += vb;
                if vb.abs() > s.worst_gap {
                    s.worst_gap = vb.abs();
                    s.worst_end_ns = *end;
                }
            }
        }
        series.push(s);
    }
    let identical = series.iter().filter(|s| s.worst_gap == 0.0).count();
    let mut moved: Vec<&Series> = series.iter().filter(|s| s.worst_gap > 0.0).collect();
    moved
        .sort_by(|x, y| y.worst_gap.partial_cmp(&x.worst_gap).unwrap_or(std::cmp::Ordering::Equal));

    let label = |doc: &Json| doc.get("label").and_then(Json::as_str).unwrap_or("?").to_string();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "## Timeline diff: `{}` vs `{}`\n\n{} windows vs {}; {} of {} series identical.\n",
        label(&a),
        label(&b),
        wa.len(),
        wb.len(),
        identical,
        series.len()
    );
    if !moved.is_empty() {
        s.push_str(
            "| series | Σ baseline | Σ current | worst window (end ns) | gap |\n|---|---:|---:|---:|---:|\n",
        );
        for m in moved.iter().take(top) {
            let _ = writeln!(
                s,
                "| `{}` | {} | {} | {} | {} |",
                m.key,
                fmt_rate(m.total_a),
                fmt_rate(m.total_b),
                m.worst_end_ns,
                fmt_rate(m.worst_gap)
            );
        }
        if moved.len() > top {
            let _ = writeln!(s, "\n… and {} more diverging series.", moved.len() - top);
        }
    }
    Ok(s)
}

/// Diffs the `profile.*` and `slo.*` scopes of two `ndpx-registry-dump-v1`
/// documents cell by cell, rendering a markdown section of per-phase sim
/// time and SLO movement. Cells or scopes absent from both sides are
/// skipped, so profiler-off dumps produce an empty section.
///
/// # Errors
///
/// Returns the parse error if either document is malformed or missing its
/// `cells` object.
pub fn diff_registry_phases(a_src: &str, b_src: &str) -> Result<String, String> {
    let a = Json::parse(a_src)?;
    let b = Json::parse(b_src)?;
    let cells = |doc: &Json| -> Result<Vec<(String, Json)>, String> {
        doc.get("cells")
            .and_then(Json::as_object)
            .map(|fields| fields.to_vec())
            .ok_or_else(|| "registry dump has no cells object".to_string())
    };
    let (ca, cb) = (cells(&a)?, cells(&b)?);
    let mut s = String::new();
    let mut any = false;
    for (name, stats_a) in &ca {
        let Some((_, stats_b)) = cb.iter().find(|(n, _)| n == name) else { continue };
        let fields_a = stats_a.as_object().unwrap_or(&[]);
        let mut rows = Vec::new();
        for (path, va) in fields_a {
            if !path.starts_with("profile.") && !path.starts_with("slo.") {
                continue;
            }
            let a_val = scalar_of(va);
            let b_val = stats_b.get(path).map(scalar_of).unwrap_or(0.0);
            rows.push((path.clone(), a_val, b_val));
        }
        if rows.is_empty() {
            continue;
        }
        if !any {
            s.push_str("## Per-phase / SLO deltas\n");
            any = true;
        }
        let _ = writeln!(s, "\n### `{name}`\n\n| stat | baseline | current |\n|---|---:|---:|");
        for (path, a_val, b_val) in rows {
            let _ = writeln!(s, "| `{path}` | {} | {} |", fmt_rate(a_val), fmt_rate(b_val));
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(schema: &str, rate: f64, digest: &str) -> String {
        format!(
            "{{\n  \"schema\": \"{schema}\",\n  \"scale\": \"micro\",\n  \"queue_impl\": \"wheel\",\n  \
             \"threads\": 4,\n  \"host_cpus\": 4,\n  \"sim_ops_per_sec\": {rate},\n  \
             \"serial_sim_ops_per_sec\": 900.0,\n  \"events_per_sec\": 1800.0,\n  \
             \"parallel_speedup_vs_serial\": 1.5,\n  \
             \"per_policy\": {{\"ndpext\": {rate}}},\n  \
             \"cells\": [{{\"cell\": \"hbm/ndpext/pr\", \"ops\": 10, \"wall_ms\": 1.0, \
             \"ops_per_sec\": {rate}, \"digest\": \"{digest}\"}}]\n}}\n"
        )
    }

    #[test]
    fn parse_reads_aggregates_policies_and_cells() {
        let run = parse_perf(&sample("ndpx-perf-gauge-v6", 1000.0, "00ff")).unwrap();
        assert_eq!(run.schema, "ndpx-perf-gauge-v6");
        assert_eq!(run.threads, 4);
        assert_eq!(run.sim_ops_per_sec, 1000.0);
        assert_eq!(run.per_policy, vec![("ndpext".to_string(), 1000.0)]);
        assert_eq!(run.cells.len(), 1);
        assert_eq!(run.cells[0].digest, "00ff");
        assert!(!run.pool_overhead);
    }

    #[test]
    fn identical_runs_compare_clean() {
        let run = parse_perf(&sample("ndpx-perf-gauge-v6", 1000.0, "00ff")).unwrap();
        let cmp = compare(&run, &run, 0.10);
        assert!(cmp.is_clean());
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.aggregates.len(), 4, "three aggregates + one policy");
    }

    #[test]
    fn throughput_drop_past_threshold_is_flagged_but_stays_clean() {
        let base = parse_perf(&sample("ndpx-perf-gauge-v5", 1000.0, "00ff")).unwrap();
        let cur = parse_perf(&sample("ndpx-perf-gauge-v6", 800.0, "00ff")).unwrap();
        let cmp = compare(&base, &cur, 0.10);
        assert!(cmp.is_clean(), "throughput noise never dirties the diff");
        let names: Vec<&str> = cmp.regressions.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"sim_ops_per_sec"));
        assert!(names.contains(&"policy/ndpext"));
        assert!(!names.contains(&"serial_sim_ops_per_sec"), "unchanged rate not flagged");
    }

    #[test]
    fn digest_change_is_a_hard_mismatch() {
        let base = parse_perf(&sample("ndpx-perf-gauge-v6", 1000.0, "00ff")).unwrap();
        let cur = parse_perf(&sample("ndpx-perf-gauge-v6", 1000.0, "beef")).unwrap();
        let cmp = compare(&base, &cur, 0.10);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.digest_mismatches, vec!["hbm/ndpext/pr".to_string()]);
        let md = render_markdown(&base, &cur, &cmp, &[]);
        assert!(md.contains("DIGEST CHANGE"));
        assert!(md.contains("hbm/ndpext/pr"));
    }

    #[test]
    fn markdown_includes_aggregate_table_and_sections() {
        let base = parse_perf(&sample("ndpx-perf-gauge-v5", 1000.0, "00ff")).unwrap();
        let cur = parse_perf(&sample("ndpx-perf-gauge-v6", 1200.0, "00ff")).unwrap();
        let cmp = compare(&base, &cur, 0.10);
        let md = render_markdown(&base, &cur, &cmp, &["## extra\ncustom".to_string()]);
        assert!(md.starts_with("# ndpx run diff"));
        assert!(md.contains("| sim_ops_per_sec | 1000 | 1200 | +20.0% |"));
        assert!(md.contains("## extra"));
        assert!(md.contains("Clean: digests identical"));
    }

    #[test]
    fn timeline_diff_finds_diverging_series() {
        let tl = |flits: u64| {
            format!(
                "{{\n  \"schema\": \"ndpx-timeline-v1\",\n  \"label\": \"t\",\n  \
                 \"window_ns\": 10000,\n  \"evicted_windows\": 0,\n  \"windows\": [\n    \
                 {{\"start_ns\": 0, \"end_ns\": 10000, \"stats\": {{\n      \
                 \"core.mem_ops\": 50,\n      \"noc.bytes\": {flits}\n    }}}}\n  ]\n}}\n"
            )
        };
        let md = diff_timelines(&tl(100), &tl(140), 10).unwrap();
        assert!(md.contains("1 of 2 series identical"));
        assert!(md.contains("`noc.bytes`"));
        assert!(!md.contains("`core.mem_ops`"), "identical series are collapsed");
        let same = diff_timelines(&tl(100), &tl(100), 10).unwrap();
        assert!(same.contains("2 of 2 series identical"));
    }

    #[test]
    fn registry_phase_diff_reports_profile_and_slo_only() {
        let dump = |run_ps: u64| {
            format!(
                "{{\n  \"schema\": \"ndpx-registry-dump-v1\",\n  \"run\": \"t\",\n  \"cells\": {{\n    \
                 \"hbm/ndpext/pr\": {{\n      \"core.mem_ops\": 5,\n      \
                 \"profile.run\": {{\"mean_ps\": {run_ps}, \"total_ps\": {run_ps}, \"count\": 1}},\n      \
                 \"slo.epochs\": 3\n    }}\n  }}\n}}\n"
            )
        };
        let md = diff_registry_phases(&dump(100), &dump(200)).unwrap();
        assert!(md.contains("Per-phase / SLO deltas"));
        assert!(md.contains("`profile.run`"));
        assert!(md.contains("`slo.epochs`"));
        assert!(!md.contains("core.mem_ops"));
        // Dumps without profile/slo scopes produce an empty section.
        let bare = "{\"schema\": \"ndpx-registry-dump-v1\", \"run\": \"t\", \"cells\": {\"c\": {\"core.mem_ops\": 5}}}";
        assert_eq!(diff_registry_phases(bare, bare).unwrap(), "");
    }
}
