//! Randomized property tests for the cache structures: set-associative LRU
//! caches, share placement, and tag arrays.
//!
//! Cases are driven by the workspace's seeded [`Xoshiro256`] so the suite is
//! deterministic and needs no external property-testing framework.

use ndpx_cache::placement::SharePlacement;
use ndpx_cache::setassoc::SetAssocCache;
use ndpx_cache::tagarray::TagArray;
use ndpx_sim::rng::Xoshiro256;

#[test]
fn setassoc_occupancy_never_exceeds_capacity() {
    let mut rng = Xoshiro256::seed_from(0x0CC);
    for _ in 0..64 {
        let sets = 1 + rng.below(31) as usize;
        let ways = 1 + rng.below(7) as usize;
        let n = 1 + rng.below(399) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let mut c = SetAssocCache::new(sets, ways);
        for &k in &keys {
            c.access(k, false);
        }
        assert!(c.occupancy() <= sets * ways);
        assert_eq!(c.stats().accesses(), keys.len() as u64);
    }
}

#[test]
fn setassoc_access_then_probe_hits() {
    let mut rng = Xoshiro256::seed_from(0xF00);
    for _ in 0..128 {
        let sets = 1 + rng.below(31) as usize;
        let ways = 1 + rng.below(7) as usize;
        let key = rng.below(10_000);
        let mut c = SetAssocCache::new(sets, ways);
        c.access(key, false);
        assert!(c.probe(key), "just-inserted key must be resident");
        assert!(c.access(key, false).is_hit());
    }
}

#[test]
fn setassoc_invalidate_removes() {
    let mut rng = Xoshiro256::seed_from(0x1BAD);
    for _ in 0..64 {
        let n = 1 + rng.below(99) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let mut c = SetAssocCache::new(64, 4);
        for &k in &keys {
            c.access(k, true);
        }
        for &k in &keys {
            c.invalidate(k);
            assert!(!c.probe(k));
        }
        assert_eq!(c.occupancy(), 0);
    }
}

#[test]
fn share_placement_is_total_and_bounded() {
    let mut rng = Xoshiro256::seed_from(0x51AB);
    for _ in 0..64 {
        let units = 1 + rng.below(15) as usize;
        let shares: Vec<u64> = (0..units).map(|_| rng.below(64)).collect();
        let p = SharePlacement::new(shares.clone());
        let total: u64 = shares.iter().sum();
        for _ in 0..200 {
            let k = rng.below(100_000);
            match p.locate(k) {
                Some((u, slot)) => {
                    assert!(total > 0);
                    assert!(u < shares.len());
                    assert!(slot < shares[u], "slot {slot} >= share {}", shares[u]);
                }
                None => assert_eq!(total, 0),
            }
        }
    }
}

#[test]
fn share_placement_distribution_tracks_shares() {
    let mut rng = Xoshiro256::seed_from(0xD157);
    for _ in 0..16 {
        let a = 1 + rng.below(31);
        let b = 1 + rng.below(31);
        let p = SharePlacement::new(vec![a * 64, b * 64]);
        let n = 40_000u64;
        let hits_a = (0..n).filter(|&k| p.locate(k).expect("non-empty").0 == 0).count() as f64;
        let expect = a as f64 / (a + b) as f64;
        let got = hits_a / n as f64;
        assert!((got - expect).abs() < 0.05, "expected {expect:.3}, got {got:.3}");
    }
}

#[test]
fn tagarray_hit_follows_miss_at_same_slot() {
    let mut rng = Xoshiro256::seed_from(0x7A6);
    for _ in 0..64 {
        let slots = 1 + rng.below(255);
        let ways = 1 + rng.below(7) as usize;
        let n = 1 + rng.below(99) as usize;
        let mut t = TagArray::new(slots, ways);
        for _ in 0..n {
            let slot = rng.below(slots);
            let key = rng.below(100_000);
            t.access(slot, key, false);
            assert!(t.probe(slot, key), "key must be resident right after access");
        }
        assert!(t.occupancy() <= t.slots());
    }
}

#[test]
fn tagarray_adoption_preserves_only_placed_keys() {
    let mut rng = Xoshiro256::seed_from(0xAD09);
    for _ in 0..64 {
        let n = 1 + rng.below(63) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let mut old = TagArray::new(128, 1);
        for &k in &keys {
            old.access(k, k, false);
        }
        let mut new = TagArray::new(128, 1);
        let kept = new.adopt_from(&old, |k| if k % 3 == 0 { Some(k) } else { None });
        assert_eq!(kept, new.occupancy());
        for (k, _) in new.entries() {
            assert_eq!(k % 3, 0, "non-placed key survived adoption");
        }
    }
}
