//! Property tests for the cache structures: set-associative LRU caches,
//! share placement, and tag arrays.

use ndpx_cache::placement::SharePlacement;
use ndpx_cache::setassoc::SetAssocCache;
use ndpx_cache::tagarray::TagArray;
use proptest::prelude::*;

proptest! {
    #[test]
    fn setassoc_occupancy_never_exceeds_capacity(
        sets in 1usize..32,
        ways in 1usize..8,
        keys in prop::collection::vec(0u64..10_000, 1..400),
    ) {
        let mut c = SetAssocCache::new(sets, ways);
        for &k in &keys {
            c.access(k, false);
        }
        prop_assert!(c.occupancy() <= sets * ways);
        prop_assert_eq!(c.stats().accesses(), keys.len() as u64);
    }

    #[test]
    fn setassoc_access_then_probe_hits(
        sets in 1usize..32,
        ways in 1usize..8,
        key in 0u64..10_000,
    ) {
        let mut c = SetAssocCache::new(sets, ways);
        c.access(key, false);
        prop_assert!(c.probe(key), "just-inserted key must be resident");
        prop_assert!(c.access(key, false).is_hit());
    }

    #[test]
    fn setassoc_invalidate_removes(
        keys in prop::collection::vec(0u64..1000, 1..100),
    ) {
        let mut c = SetAssocCache::new(64, 4);
        for &k in &keys {
            c.access(k, true);
        }
        for &k in &keys {
            c.invalidate(k);
            prop_assert!(!c.probe(k));
        }
        prop_assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn share_placement_is_total_and_bounded(
        shares in prop::collection::vec(0u64..64, 1..16),
        keys in prop::collection::vec(0u64..100_000, 1..200),
    ) {
        let p = SharePlacement::new(shares.clone());
        let total: u64 = shares.iter().sum();
        for &k in &keys {
            match p.locate(k) {
                Some((u, slot)) => {
                    prop_assert!(total > 0);
                    prop_assert!(u < shares.len());
                    prop_assert!(slot < shares[u], "slot {slot} >= share {}", shares[u]);
                }
                None => prop_assert_eq!(total, 0),
            }
        }
    }

    #[test]
    fn share_placement_distribution_tracks_shares(
        a in 1u64..32,
        b in 1u64..32,
    ) {
        let p = SharePlacement::new(vec![a * 64, b * 64]);
        let n = 40_000u64;
        let hits_a = (0..n).filter(|&k| p.locate(k).expect("non-empty").0 == 0).count() as f64;
        let expect = a as f64 / (a + b) as f64;
        let got = hits_a / n as f64;
        prop_assert!((got - expect).abs() < 0.05, "expected {expect:.3}, got {got:.3}");
    }

    #[test]
    fn tagarray_hit_follows_miss_at_same_slot(
        slots in 1u64..256,
        ways in 1usize..8,
        pairs in prop::collection::vec((0u64..1024, 0u64..100_000), 1..100),
    ) {
        let mut t = TagArray::new(slots, ways);
        for &(slot, key) in &pairs {
            t.access(slot, key, false);
            prop_assert!(t.probe(slot, key), "key must be resident right after access");
        }
        prop_assert!(t.occupancy() <= t.slots());
    }

    #[test]
    fn tagarray_adoption_preserves_only_placed_keys(
        keys in prop::collection::vec(0u64..1000, 1..64),
    ) {
        let mut old = TagArray::new(128, 1);
        for &k in &keys {
            old.access(k, k, false);
        }
        let mut new = TagArray::new(128, 1);
        let kept = new.adopt_from(&old, |k| if k % 3 == 0 { Some(k) } else { None });
        prop_assert_eq!(kept, new.occupancy());
        for (k, _) in new.entries() {
            prop_assert_eq!(k % 3, 0, "non-placed key survived adoption");
        }
    }
}
