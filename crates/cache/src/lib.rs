//! # ndpx-cache
//!
//! Cache structures for the NDPExt reproduction.
//!
//! * [`setassoc`] — a generic set-associative LRU cache used for per-core L1
//!   data caches, the baselines' SRAM metadata caches, and NDPExt's affine
//!   tag array;
//! * [`placement`] — share-based hashed placement of keys across NDP units
//!   (the substrate of both RShares and partitioned baseline caches);
//! * [`tagarray`] — externally-indexed tag arrays recording DRAM-cache
//!   contents at arbitrary granularity and associativity.
//!
//! # Examples
//!
//! ```
//! use ndpx_cache::placement::SharePlacement;
//! use ndpx_cache::tagarray::TagArray;
//!
//! // A stream gets 8 and 6 slots on two units; keys hash across both.
//! let place = SharePlacement::new(vec![8, 6]);
//! let mut unit0 = TagArray::new(8, 1);
//! let (unit, slot) = place.locate(44).unwrap();
//! if unit == 0 {
//!     assert!(!unit0.access(slot, 44, false).is_hit());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod placement;
pub mod setassoc;
pub mod tagarray;
pub mod tcam;

pub use placement::SharePlacement;
pub use setassoc::{CacheStats, Outcome, SetAssocCache};
pub use tagarray::TagArray;
pub use tcam::{RangeEntry, RangeTcam};
