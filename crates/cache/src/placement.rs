//! Share-based distributed placement.
//!
//! Both NDPExt's stream caches (RShares, paper §IV-B) and the partitioned
//! baseline DRAM caches spread a partition's contents over per-unit *shares*
//! of cache slots: unit `u` contributes `shares[u]` slots, and each key is
//! hashed to one global slot, then mapped to the owning unit and the slot
//! offset within that unit's share.

use ndpx_sim::rng::{hash_range, mix64};

/// A partition's allocation of slots across units, with hashed placement.
///
/// # Examples
///
/// ```
/// use ndpx_cache::placement::SharePlacement;
///
/// // Units 0 and 1 contribute 8 and 6 slots (the paper's Fig. 3 example).
/// let p = SharePlacement::new(vec![8, 6]);
/// let (unit, slot) = p.locate(44).expect("non-empty");
/// assert!(unit < 2);
/// assert!(slot < p.shares()[unit]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharePlacement {
    shares: Vec<u64>,
    /// prefix[i] = sum of shares[..i]; prefix.len() == shares.len() + 1.
    prefix: Vec<u64>,
}

impl SharePlacement {
    /// Creates a placement from per-unit slot counts.
    pub fn new(shares: Vec<u64>) -> Self {
        let mut prefix = Vec::with_capacity(shares.len() + 1);
        let mut acc = 0;
        prefix.push(0);
        for &s in &shares {
            acc += s;
            prefix.push(acc);
        }
        SharePlacement { shares, prefix }
    }

    /// An empty placement over `units` units.
    pub fn empty(units: usize) -> Self {
        Self::new(vec![0; units])
    }

    /// Per-unit slot counts.
    pub fn shares(&self) -> &[u64] {
        &self.shares
    }

    /// Total slots across all units.
    pub fn total(&self) -> u64 {
        *self.prefix.last().expect("prefix is never empty")
    }

    /// Maps `key` to `(unit index, slot offset within that unit's share)`.
    ///
    /// Returns `None` when the placement has no slots.
    pub fn locate(&self, key: u64) -> Option<(usize, u64)> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let global = hash_range(key, total);
        self.locate_global(global)
    }

    /// Maps an already-computed global slot to `(unit, offset)`.
    ///
    /// Exposed so consistent-hash remapping can reuse the share structure.
    pub fn locate_global(&self, global: u64) -> Option<(usize, u64)> {
        if global >= self.total() {
            return None;
        }
        // partition_point returns the first prefix entry > global; the unit
        // index is one before it.
        let unit = self.prefix.partition_point(|&p| p <= global) - 1;
        Some((unit, global - self.prefix[unit]))
    }

    /// The global slot index `key` hashes to, or `None` when empty.
    pub fn global_slot(&self, key: u64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some(hash_range(key, total))
        }
    }

    /// A second-level hash distributing `key` within `n` slots; used to pick
    /// a replica among equivalent choices.
    pub fn subhash(key: u64, salt: u64, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((mix64(key ^ mix64(salt)) as u128 * n as u128) >> 64) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_respects_share_sizes() {
        let p = SharePlacement::new(vec![8, 6, 0, 2]);
        assert_eq!(p.total(), 16);
        let mut counts = [0u64; 4];
        for key in 0..16_000 {
            let (unit, slot) = p.locate(key).unwrap();
            assert!(slot < p.shares()[unit], "slot {slot} exceeds share at unit {unit}");
            counts[unit] += 1;
        }
        // Distribution proportional to shares: 8:6:0:2.
        assert_eq!(counts[2], 0);
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
        let frac0 = counts[0] as f64 / 16_000.0;
        assert!((frac0 - 0.5).abs() < 0.05, "unit 0 got {frac0}");
    }

    #[test]
    fn empty_placement_locates_nothing() {
        let p = SharePlacement::empty(4);
        assert_eq!(p.total(), 0);
        assert_eq!(p.locate(123), None);
        assert_eq!(p.global_slot(123), None);
    }

    #[test]
    fn locate_global_round_trips() {
        let p = SharePlacement::new(vec![3, 5, 1]);
        for g in 0..9 {
            let (unit, off) = p.locate_global(g).unwrap();
            // Reconstruct the global index.
            let base: u64 = p.shares()[..unit].iter().sum();
            assert_eq!(base + off, g);
        }
        assert_eq!(p.locate_global(9), None);
    }

    #[test]
    fn placement_is_deterministic() {
        let p = SharePlacement::new(vec![4, 4]);
        let q = SharePlacement::new(vec![4, 4]);
        for key in 0..100 {
            assert_eq!(p.locate(key), q.locate(key));
        }
    }

    #[test]
    fn subhash_varies_with_salt() {
        let a = SharePlacement::subhash(42, 0, 100);
        let b = SharePlacement::subhash(42, 1, 100);
        assert!(a < 100 && b < 100);
        assert_ne!(a, b, "different salts should (almost surely) differ");
        assert_eq!(SharePlacement::subhash(42, 0, 0), 0);
    }
}
