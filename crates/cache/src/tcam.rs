//! Ternary-CAM range matching for the stream lookahead buffer.
//!
//! The paper's SLB (§IV-C) identifies which stream an address falls in with
//! a modified CAM: it stores, per entry, the common bit-prefix of `base` and
//! `base + size` with the remaining low bits as *don't care*, then resolves
//! the (possibly several) prefix hits with digital comparators. This module
//! models that lookup faithfully at the bit level — including the fact that
//! a prefix can over-match — so the SLB's entry cost and hit semantics are
//! reproducible, and provides the same interface a behavioural model needs.

/// One TCAM entry: a value/mask pair plus the exact range for the
/// comparator stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry {
    /// Prefix bits shared by every address in the range.
    value: u64,
    /// Set bits participate in the match; clear bits are "don't care".
    mask: u64,
    /// Inclusive range start (comparator stage).
    start: u64,
    /// Exclusive range end (comparator stage).
    end: u64,
    /// Caller tag (e.g. a stream ID).
    tag: u32,
}

impl RangeEntry {
    /// Builds the entry for `[start, end)`: the TCAM stores the longest
    /// common prefix of `start` and `end - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(start: u64, end: u64, tag: u32) -> Self {
        assert!(end > start, "range must be non-empty");
        let last = end - 1;
        let diff = start ^ last;
        // All bits above the highest differing bit are common.
        let mask = if diff == 0 { u64::MAX } else { !((1u64 << (64 - diff.leading_zeros())) - 1) };
        RangeEntry { value: start & mask, mask, start, end, tag }
    }

    /// The TCAM stage: does `addr` match the stored prefix?
    ///
    /// This can over-match (the prefix covers a power-of-two-aligned
    /// superset of the range); the comparator stage disambiguates.
    #[inline]
    pub fn prefix_matches(&self, addr: u64) -> bool {
        addr & self.mask == self.value
    }

    /// The comparator stage: is `addr` exactly inside the range?
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        (self.start..self.end).contains(&addr)
    }

    /// The caller's tag.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// How many low bits are "don't care" — the entry's TCAM width cost is
    /// `64 - dont_care_bits()` ternary cells.
    pub fn dont_care_bits(&self) -> u32 {
        self.mask.trailing_zeros()
    }
}

/// A fixed-capacity TCAM of address ranges with two-stage lookup.
///
/// # Examples
///
/// ```
/// use ndpx_cache::tcam::RangeTcam;
///
/// let mut tcam = RangeTcam::new(32);
/// tcam.insert(0x5CA1_A000, 0x5CA1_AC00, 1).expect("has space");
/// assert_eq!(tcam.lookup(0x5CA1_AB00), Some(1));
/// assert_eq!(tcam.lookup(0x5CA1_AC00), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeTcam {
    entries: Vec<RangeEntry>,
    capacity: usize,
    /// Lookups whose prefix stage matched more than one entry (resolved by
    /// the comparators); a hardware-cost statistic.
    multi_prefix_hits: u64,
}

impl RangeTcam {
    /// An empty TCAM of `capacity` entries (the paper's SLB: 32).
    pub fn new(capacity: usize) -> Self {
        RangeTcam { entries: Vec::new(), capacity, multi_prefix_hits: 0 }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts the range `[start, end)` with `tag`.
    ///
    /// # Errors
    ///
    /// Returns the entry back if the TCAM is full (caller evicts and
    /// retries, as the SLB's replacement logic does).
    pub fn insert(&mut self, start: u64, end: u64, tag: u32) -> Result<(), RangeEntry> {
        let e = RangeEntry::new(start, end, tag);
        if self.entries.len() >= self.capacity {
            return Err(e);
        }
        self.entries.push(e);
        Ok(())
    }

    /// Removes the entry with `tag`; returns whether one was present.
    pub fn remove(&mut self, tag: u32) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.tag != tag);
        self.entries.len() != before
    }

    /// Two-stage lookup: parallel prefix match, then comparators over the
    /// prefix hits. Returns the matching entry's tag.
    pub fn lookup(&mut self, addr: u64) -> Option<u32> {
        let mut prefix_hits = 0u32;
        let mut winner = None;
        for e in &self.entries {
            if e.prefix_matches(addr) {
                prefix_hits += 1;
                if e.contains(addr) {
                    winner = Some(e.tag);
                }
            }
        }
        if prefix_hits > 1 {
            self.multi_prefix_hits += 1;
        }
        winner
    }

    /// Lookups that needed the comparator stage to disambiguate several
    /// prefix matches.
    pub fn multi_prefix_hits(&self) -> u64 {
        self.multi_prefix_hits
    }

    /// Total ternary cells the resident entries occupy.
    pub fn ternary_cells(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(64 - e.dont_care_bits())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_covers_range() {
        // [0x1000, 0x1C00): common prefix of 0x1000 and 0x1BFF.
        let e = RangeEntry::new(0x1000, 0x1C00, 7);
        for a in [0x1000u64, 0x13FF, 0x1BFF] {
            assert!(e.prefix_matches(a), "{a:#x} must prefix-match");
            assert!(e.contains(a));
        }
        // 0x1C00 shares the prefix superset but fails the comparator.
        assert!(!e.contains(0x1C00));
        assert_eq!(e.tag(), 7);
    }

    #[test]
    fn single_address_range() {
        let e = RangeEntry::new(0xABCD, 0xABCE, 1);
        assert!(e.prefix_matches(0xABCD));
        assert!(!e.prefix_matches(0xABCC));
        assert_eq!(e.dont_care_bits(), 0);
    }

    #[test]
    fn over_match_is_resolved_by_comparator() {
        // Range [6, 10): prefix of 6 (0b0110) and 9 (0b1001) differs at bit
        // 3 → mask keeps only bits ≥ 4, so 0..16 all prefix-match.
        let mut t = RangeTcam::new(4);
        t.insert(6, 10, 42).unwrap();
        assert_eq!(t.lookup(6), Some(42));
        assert_eq!(t.lookup(9), Some(42));
        assert_eq!(t.lookup(5), None, "prefix over-match must be rejected");
        assert_eq!(t.lookup(10), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = RangeTcam::new(2);
        t.insert(0, 64, 0).unwrap();
        t.insert(64, 128, 1).unwrap();
        let rejected = t.insert(128, 192, 2).unwrap_err();
        assert_eq!(rejected.tag(), 2);
        assert!(t.remove(0));
        assert!(!t.remove(0));
        t.insert(128, 192, 2).unwrap();
        assert_eq!(t.lookup(130), Some(2));
    }

    #[test]
    fn multi_prefix_statistics() {
        let mut t = RangeTcam::new(4);
        // Two ranges under the same power-of-two umbrella.
        t.insert(0, 96, 0).unwrap(); // prefix covers 0..128
        t.insert(96, 128, 1).unwrap(); // prefix covers 96..128? (96..127 -> 0x60..0x7F)
        let _ = t.lookup(100);
        assert_eq!(t.lookup(32), Some(0));
        assert!(t.multi_prefix_hits() >= 1, "overlapping prefixes should be counted");
    }

    #[test]
    fn ternary_cell_cost_reflects_alignment() {
        let mut aligned = RangeTcam::new(2);
        aligned.insert(0x1000, 0x2000, 0).unwrap(); // 4 kB aligned: 12 don't-care bits
        let mut unaligned = RangeTcam::new(2);
        unaligned.insert(0x1001, 0x1003, 0).unwrap();
        assert!(aligned.ternary_cells() < unaligned.ternary_cells());
    }

    #[test]
    fn disjoint_streams_resolve_uniquely() {
        let mut t = RangeTcam::new(32);
        for i in 0..16u64 {
            t.insert(i * 0x1000, i * 0x1000 + 0x800, i as u32).unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(t.lookup(i * 0x1000 + 0x400), Some(i as u32));
            assert_eq!(t.lookup(i * 0x1000 + 0x900), None, "gap must miss");
        }
    }
}
