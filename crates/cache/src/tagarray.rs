//! Externally-indexed tag arrays for DRAM-cache contents.
//!
//! Unlike [`crate::setassoc::SetAssocCache`], which hashes keys to sets
//! internally, a [`TagArray`] is indexed by a *slot* supplied by the caller —
//! the placement layer (shares, replication groups) decides where a key may
//! live, and the tag array only records what currently occupies each slot.
//! This models both the baselines' in-DRAM cacheline tags and NDPExt's
//! affine/indirect stream caches.

use crate::setassoc::{CacheStats, Outcome};

/// A resizable tag array of `slots` entries grouped into sets of `ways`.
///
/// Slot indices come from the placement layer. With `ways == 1` the array is
/// direct-mapped (the paper's default for indirect streams); higher
/// associativity groups consecutive slots into one set with LRU replacement
/// (evaluated in Fig. 9a).
///
/// # Examples
///
/// ```
/// use ndpx_cache::tagarray::TagArray;
///
/// let mut tags = TagArray::new(64, 1);
/// assert!(!tags.access(5, 1000, false).is_hit());
/// assert!(tags.access(5, 1000, false).is_hit());
/// // Direct-mapped: a different key in the same slot evicts.
/// assert!(!tags.access(5, 2000, false).is_hit());
/// assert!(!tags.access(5, 1000, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    ways: usize,
    sets: u64,
    /// Key + 1 per physical slot; 0 = invalid.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    lru: Vec<u32>,
    tick: u32,
    stats: CacheStats,
}

impl TagArray {
    /// Creates an array of `slots` entries at the given associativity.
    ///
    /// If `slots` is not a multiple of `ways` the remainder slots are
    /// dropped (a partition loses at most `ways - 1` slots).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(slots: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be at least 1");
        // A tiny allocation (fewer slots than ways) degrades gracefully to
        // a fully-associative array over the available slots.
        let ways = ways.min(slots.max(1) as usize);
        let sets = slots / ways as u64;
        let n = (sets * ways as u64) as usize;
        TagArray {
            ways,
            sets,
            tags: vec![0; n],
            dirty: vec![false; n],
            lru: vec![0; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of usable slots.
    pub fn slots(&self) -> u64 {
        self.sets * self.ways as u64
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Accesses `key` at placement `slot` (reduced mod the set count),
    /// filling on miss.
    pub fn access(&mut self, slot: u64, key: u64, write: bool) -> Outcome {
        if self.sets == 0 {
            self.stats.misses.inc();
            return Outcome::Miss { evicted: None };
        }
        self.tick += 1;
        let set = (slot % self.sets) as usize;
        let base = set * self.ways;

        for i in base..base + self.ways {
            if self.tags[i] == key + 1 {
                self.lru[i] = self.tick;
                self.dirty[i] |= write;
                self.stats.hits.inc();
                return Outcome::Hit;
            }
        }

        self.stats.misses.inc();
        let victim = (base..base + self.ways)
            .min_by_key(|&i| if self.tags[i] == 0 { (0, 0) } else { (1, self.lru[i]) })
            .expect("ways >= 1");
        let evicted = if self.tags[victim] != 0 {
            if self.dirty[victim] {
                self.stats.writebacks.inc();
            }
            Some((self.tags[victim] - 1, self.dirty[victim]))
        } else {
            None
        };
        self.tags[victim] = key + 1;
        self.dirty[victim] = write;
        self.lru[victim] = self.tick;
        Outcome::Miss { evicted }
    }

    /// Checks for `key` at `slot` without filling.
    pub fn probe(&self, slot: u64, key: u64) -> bool {
        if self.sets == 0 {
            return false;
        }
        let base = (slot % self.sets) as usize * self.ways;
        self.tags[base..base + self.ways].iter().any(|&t| t == key + 1)
    }

    /// Invalidates everything; returns `(valid, dirty)` counts.
    pub fn invalidate_all(&mut self) -> (u64, u64) {
        let mut valid = 0;
        let mut dirty = 0;
        for i in 0..self.tags.len() {
            if self.tags[i] != 0 {
                valid += 1;
                if self.dirty[i] {
                    dirty += 1;
                }
            }
            self.tags[i] = 0;
            self.dirty[i] = false;
        }
        (valid, dirty)
    }

    /// Moves the resident keys of another array into this one, re-placing
    /// each with `place` (used by consistent-hash reconfiguration to keep
    /// surviving lines). Returns how many keys were retained.
    pub fn adopt_from(&mut self, old: &TagArray, mut place: impl FnMut(u64) -> Option<u64>) -> u64 {
        let mut kept = 0;
        for i in 0..old.tags.len() {
            if old.tags[i] != 0 {
                let key = old.tags[i] - 1;
                if let Some(slot) = place(key) {
                    if self.sets > 0 {
                        let set = (slot % self.sets) as usize;
                        let base = set * self.ways;
                        if let Some(j) = (base..base + self.ways).find(|&j| self.tags[j] == 0) {
                            self.tags[j] = key + 1;
                            self.dirty[j] = old.dirty[i];
                            kept += 1;
                        }
                    }
                }
            }
        }
        kept
    }

    /// Iterates over resident `(key, dirty)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.tags.iter().zip(self.dirty.iter()).filter(|(&t, _)| t != 0).map(|(&t, &d)| (t - 1, d))
    }

    /// Installs `key` at `slot` only if a free way exists (no eviction);
    /// returns whether it was installed. Used when adopting entries across
    /// a reconfiguration.
    pub fn install_if_free(&mut self, slot: u64, key: u64, dirty: bool) -> bool {
        if self.sets == 0 {
            return false;
        }
        let base = (slot % self.sets) as usize * self.ways;
        if let Some(j) = (base..base + self.ways).find(|&j| self.tags[j] == 0) {
            self.tags[j] = key + 1;
            self.dirty[j] = dirty;
            true
        } else {
            false
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != 0).count() as u64
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut t = TagArray::new(4, 1);
        assert!(!t.access(0, 100, false).is_hit());
        assert!(t.access(0, 100, false).is_hit());
        match t.access(0, 200, true) {
            Outcome::Miss { evicted: Some((100, false)) } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.probe(0, 200));
        assert!(!t.probe(0, 100));
    }

    #[test]
    fn associative_sets_avoid_conflicts() {
        let mut t = TagArray::new(8, 2);
        assert_eq!(t.sets(), 4);
        t.access(0, 100, false);
        t.access(0, 200, false);
        // Both fit in the 2-way set.
        assert!(t.access(0, 100, false).is_hit());
        assert!(t.access(0, 200, false).is_hit());
        // Third key evicts the least recently touched (100: the re-touches
        // above ended with 200).
        match t.access(0, 300, false) {
            Outcome::Miss { evicted: Some((k, _)) } => assert_eq!(k, 100),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_slots_always_miss() {
        let mut t = TagArray::new(0, 1);
        assert_eq!(t.access(0, 1, false), Outcome::Miss { evicted: None });
        assert!(!t.probe(7, 1));
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn invalidate_all_reports_dirty() {
        let mut t = TagArray::new(8, 1);
        t.access(0, 1, true);
        t.access(1, 2, false);
        assert_eq!(t.invalidate_all(), (2, 1));
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn adopt_keeps_surviving_keys() {
        let mut old = TagArray::new(8, 1);
        for k in 0..8u64 {
            old.access(k, k, k % 2 == 0);
        }
        let mut new = TagArray::new(8, 1);
        // Keep only even keys, at the same slots.
        let kept = new.adopt_from(&old, |k| if k % 2 == 0 { Some(k) } else { None });
        assert_eq!(kept, 4);
        assert_eq!(new.occupancy(), 4);
        assert!(new.probe(0, 0));
        assert!(!new.probe(1, 1));
    }

    #[test]
    fn ways_truncation() {
        let t = TagArray::new(7, 2);
        assert_eq!(t.slots(), 6);
    }

    #[test]
    fn tiny_allocations_keep_capacity() {
        // One slot at 4-way must still cache one entry, not zero.
        let mut t = TagArray::new(1, 4);
        assert_eq!(t.slots(), 1);
        assert!(!t.access(0, 42, false).is_hit());
        assert!(t.access(0, 42, false).is_hit());
        let t3 = TagArray::new(3, 4);
        assert_eq!(t3.slots(), 3);
    }

    #[test]
    fn entries_and_install_if_free() {
        let mut t = TagArray::new(4, 2);
        t.access(0, 10, true);
        t.access(1, 20, false);
        let mut es: Vec<_> = t.entries().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(10, true), (20, false)]);
        // Fill set 0's both ways, then a third install must fail.
        assert!(t.install_if_free(0, 30, false));
        assert!(!t.install_if_free(0, 40, false));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = TagArray::new(4, 1);
        t.access(0, 1, false);
        t.access(0, 1, false);
        t.access(0, 2, true);
        t.access(0, 3, false); // evicts dirty 2
        assert_eq!(t.stats().hits.get(), 1);
        assert_eq!(t.stats().misses.get(), 3);
        assert_eq!(t.stats().writebacks.get(), 1);
    }
}
