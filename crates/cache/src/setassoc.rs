//! Generic set-associative cache with LRU replacement.
//!
//! Used for the per-core L1 data caches, the baselines' SRAM metadata caches,
//! and NDPExt's affine tag array (ATA). The cache tracks presence and
//! dirtiness only — the simulator never stores data contents.

use ndpx_sim::rng::mix64;
use ndpx_sim::stats::Counter;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` reports a victim writeback if the
    /// victim was dirty.
    Miss {
        /// Evicted line's key and whether it was dirty.
        evicted: Option<(u64, bool)>,
    },
}

impl Outcome {
    /// True on [`Outcome::Hit`].
    pub const fn is_hit(&self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: Counter,
    /// Accesses that missed.
    pub misses: Counter,
    /// Dirty evictions (writebacks).
    pub writebacks: Counter,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate over all accesses (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        self.hits.ratio_of(self.accesses())
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Key + 1; zero means invalid.
    tag: u64,
    dirty: bool,
    lru: u64,
}

impl Way {
    const EMPTY: Way = Way { tag: 0, dirty: false, lru: 0 };
}

/// A set-associative, LRU, write-back cache over opaque `u64` keys.
///
/// Callers supply *keys* (e.g. `addr / line_bytes`); the cache does not
/// interpret them beyond hashing to a set.
///
/// # Examples
///
/// ```
/// use ndpx_cache::setassoc::SetAssocCache;
///
/// let mut l1 = SetAssocCache::new(16, 4);
/// assert!(!l1.access(42, false).is_hit());
/// assert!(l1.access(42, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    /// `sets - 1` when `sets` is a power of two: `hash % sets` and
    /// `hash & mask` agree exactly, and the mask avoids a divide on every
    /// access.
    set_mask: Option<u64>,
    ways: usize,
    lines: Vec<Way>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache of `sets × ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        SetAssocCache {
            sets,
            set_mask: if sets.is_power_of_two() { Some(sets as u64 - 1) } else { None },
            ways,
            lines: vec![Way::EMPTY; sets * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache sized for `capacity_bytes` of `line_bytes` lines at
    /// the given associativity (sets rounded down, minimum 1).
    pub fn with_capacity(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        let lines = (capacity_bytes / line_bytes).max(1) as usize;
        let sets = (lines / ways).max(1);
        Self::new(sets, ways)
    }

    /// Total line count.
    pub fn line_count(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        let h = mix64(key);
        match self.set_mask {
            Some(mask) => (h & mask) as usize,
            None => (h % self.sets as u64) as usize,
        }
    }

    /// Accesses `key`, filling on miss. `write` marks the line dirty.
    pub fn access(&mut self, key: u64, write: bool) -> Outcome {
        self.tick += 1;
        let set = self.set_of(key);
        let base = set * self.ways;
        let ways = &mut self.lines[base..base + self.ways];

        if let Some(w) = ways.iter_mut().find(|w| w.tag == key + 1) {
            w.lru = self.tick;
            w.dirty |= write;
            self.stats.hits.inc();
            return Outcome::Hit;
        }

        self.stats.misses.inc();
        // Choose an invalid way, else the LRU way.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.tag == 0 { (0, 0) } else { (1, w.lru) })
            .map(|(i, _)| i)
            .expect("ways is non-empty");
        let w = &mut ways[victim];
        let evicted = if w.tag != 0 {
            if w.dirty {
                self.stats.writebacks.inc();
            }
            Some((w.tag - 1, w.dirty))
        } else {
            None
        };
        *w = Way { tag: key + 1, dirty: write, lru: self.tick };
        Outcome::Miss { evicted }
    }

    /// Checks for `key` without filling or updating recency.
    pub fn probe(&self, key: u64) -> bool {
        let set = self.set_of(key);
        let base = set * self.ways;
        self.lines[base..base + self.ways].iter().any(|w| w.tag == key + 1)
    }

    /// Invalidates `key` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, key: u64) -> Option<bool> {
        let set = self.set_of(key);
        let base = set * self.ways;
        for w in &mut self.lines[base..base + self.ways] {
            if w.tag == key + 1 {
                let dirty = w.dirty;
                *w = Way::EMPTY;
                return Some(dirty);
            }
        }
        None
    }

    /// Invalidates every line; returns the number that were valid.
    pub fn invalidate_all(&mut self) -> usize {
        let mut n = 0;
        for w in &mut self.lines {
            if w.tag != 0 {
                n += 1;
                *w = Way::EMPTY;
            }
        }
        n
    }

    /// Invalidates all lines whose key satisfies `pred`; returns how many.
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let mut n = 0;
        for w in &mut self.lines {
            if w.tag != 0 && pred(w.tag - 1) {
                n += 1;
                *w = Way::EMPTY;
            }
        }
        n
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Publishes hit/miss/writeback counters and occupancy under `scope`.
    pub fn register_stats(&self, scope: &mut ndpx_sim::telemetry::StatScope<'_>) {
        scope.count("hits", self.stats.hits.get());
        scope.count("misses", self.stats.misses.get());
        scope.count("writebacks", self.stats.writebacks.get());
        scope.gauge("hit_rate", self.stats.hit_rate());
        scope.count("occupancy", self.occupancy() as u64);
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|w| w.tag != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.access(1, false), Outcome::Miss { evicted: None });
        assert!(c.access(1, false).is_hit());
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single set, 2 ways: find three keys in the same set.
        let mut c = SetAssocCache::new(1, 2);
        c.access(10, false);
        c.access(20, false);
        c.access(10, false); // 20 is now LRU
        match c.access(30, false) {
            Outcome::Miss { evicted: Some((key, dirty)) } => {
                assert_eq!(key, 20);
                assert!(!dirty);
            }
            other => panic!("expected eviction of 20, got {other:?}"),
        }
        assert!(c.probe(10));
        assert!(!c.probe(20));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true);
        let out = c.access(2, false);
        assert_eq!(out, Outcome::Miss { evicted: Some((1, true)) });
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, false);
        c.access(1, true);
        assert_eq!(c.invalidate(1), Some(true));
        assert_eq!(c.invalidate(1), None);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.probe(99));
        assert!(!c.access(99, false).is_hit());
    }

    #[test]
    fn invalidate_matching_and_all() {
        let mut c = SetAssocCache::new(16, 4);
        for k in 0..32 {
            c.access(k, false);
        }
        // Hashed sets may conflict, so fewer than 32 keys can be resident.
        let before = c.occupancy();
        assert!(before > 0);
        let evens = c.invalidate_matching(|k| k % 2 == 0);
        assert!(evens > 0);
        assert_eq!(c.occupancy(), before - evens);
        assert_eq!(c.invalidate_all(), before - evens);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn with_capacity_sizing() {
        // 64 kB / 64 B lines / 4 ways = 256 sets (the paper's L1D).
        let c = SetAssocCache::with_capacity(64 << 10, 64, 4);
        assert_eq!(c.line_count(), 1024);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = SetAssocCache::new(64, 4);
        for _ in 0..3 {
            c.access(7, false);
        }
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
