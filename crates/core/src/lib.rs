//! # ndpx-core
//!
//! NDPExt: stream-based data placement for near-data processing with
//! extended memory — the paper's primary contribution, plus the baseline
//! NUCA policies it is evaluated against.
//!
//! * [`config`] — Table II system configurations and scale profiles;
//! * [`layout`] — the materialized stream remap table (RShares / RRowBase /
//!   RGroups) with hashed or consistent-hash placement;
//! * [`runtime`] — samplers, max-flow sampler assignment, and the
//!   configuration algorithm (Algorithm 1);
//! * [`system`] — the full NDP-with-extended-memory simulator (data plane +
//!   epoch control plane) under any [`config::PolicyKind`];
//! * [`host`] — the conventional chip-multiprocessor baseline;
//! * [`stats`] — latency/energy breakdowns and the run report.
//!
//! # Examples
//!
//! ```no_run
//! use ndpx_core::config::{PolicyKind, SystemConfig};
//! use ndpx_core::system::NdpSystem;
//! use ndpx_workloads::trace::ScaleParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::test(PolicyKind::NdpExt);
//! let params = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 1 };
//! let workload = ndpx_workloads::build("pr", &params).expect("known")?;
//! let report = NdpSystem::new(cfg, workload)?.run(10_000);
//! println!("{} (miss {:.2})", report.sim_time, report.miss_rate());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod desc;
pub mod layout;
pub mod runtime;

pub use config::{MemKind, PolicyKind, ReconfigTransfer, SystemConfig};

pub mod stats;
pub mod system;

pub use ndpx_sim::telemetry::Phase;
pub use stats::{Breakdown, EnergyBreakdown, LatComponent, RunReport};
pub use system::NdpSystem;

pub mod host;

pub use host::{HostConfig, HostSystem};
