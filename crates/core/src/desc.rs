//! Cached per-stream descriptors for the simulation hot path.
//!
//! The access path needs a stream's caching grain, cache-key mapping, miss
//! fetch size, and key→address mapping on every reference. All four are
//! pure functions of the stream's configuration and the active policy —
//! both immutable for a run — yet the original helpers re-derived them per
//! access through a stream-table lookup plus policy branching.
//! [`StreamDesc`] precomputes them once at system construction, indexed by
//! [`StreamId`](ndpx_stream::StreamId); the free functions remain as the
//! uncached reference implementations the property tests compare against.

use ndpx_sim::fastdiv::Divisor;
use ndpx_stream::{StreamConfig, StreamKind};

/// The policy-dependent constants a descriptor is built from.
#[derive(Debug, Clone, Copy)]
pub struct DescParams {
    /// Whether the active policy caches at stream grain.
    pub stream_grain: bool,
    /// Affine-block bytes (stream-grain policies).
    pub affine_block: u64,
    /// Cache-line bytes (line-grain policies).
    pub line_bytes: u64,
}

/// Reference: caching grain (slot bytes) of a stream under the policy.
pub fn grain_of(s: &StreamConfig, p: DescParams) -> u64 {
    if p.stream_grain {
        match s.kind {
            StreamKind::Affine(_) => p.affine_block,
            // Tag stored with the element, padded to 8 B (§IV-C).
            StreamKind::Indirect { .. } => (u64::from(s.elem_size) + 4).next_multiple_of(8),
        }
    } else {
        p.line_bytes
    }
}

/// Reference: cache key of element `elem` at address `addr`.
pub fn key_of(s: &StreamConfig, p: DescParams, elem: u64, addr: u64) -> u64 {
    if p.stream_grain {
        match s.kind {
            StreamKind::Affine(_) => {
                let epb = (p.affine_block / u64::from(s.elem_size)).max(1);
                elem / epb
            }
            StreamKind::Indirect { .. } => elem,
        }
    } else {
        addr / p.line_bytes
    }
}

/// Reference: bytes fetched from extended memory on a miss.
pub fn fetch_bytes(s: &StreamConfig, p: DescParams) -> u32 {
    if p.stream_grain && s.kind.is_affine() {
        p.affine_block as u32
    } else {
        p.line_bytes as u32
    }
}

/// Reference: physical address of a cache key (for extended-memory access).
pub fn addr_of_key(s: &StreamConfig, p: DescParams, key: u64) -> u64 {
    if p.stream_grain {
        match s.kind {
            StreamKind::Affine(_) => {
                let epb = (p.affine_block / u64::from(s.elem_size)).max(1);
                s.addr_of((key * epb).min(s.elems() - 1))
            }
            StreamKind::Indirect { .. } => s.addr_of(key.min(s.elems() - 1)),
        }
    } else {
        key * p.line_bytes
    }
}

/// Precomputed per-stream facts for the access path.
#[derive(Debug, Clone, Copy)]
pub struct StreamDesc {
    /// The stream configuration, copied out of the table.
    pub cfg: StreamConfig,
    /// Caching grain (slot bytes) under the active policy.
    pub grain: u64,
    /// Bytes fetched from extended memory on a miss.
    pub fetch_bytes: u32,
    /// Elements per affine block (1 for indirect streams).
    epb: u64,
    /// `elems() - 1`: clamp bound for key→address mapping.
    last_elem: u64,
    /// Line bytes for line-grain key/address math.
    line_bytes: u64,
    /// Stream-grain policy active.
    stream_grain: bool,
    /// Affine stream.
    pub affine: bool,
    /// Stream base address.
    base: u64,
    /// Element bytes (indirect element→address math).
    elem_bytes: u64,
    /// Strength-reduced `/ epb` for affine stream-grain keys.
    epb_div: Divisor,
    /// Strength-reduced `/ line_bytes` for line-grain keys.
    line_div: Divisor,
    /// Strength-reduced first/second access-order dimension lengths of an
    /// affine shape (the two divides of `access_to_coords`).
    lp0_div: Divisor,
    lp1_div: Divisor,
    /// Byte strides permuted into access order (`strides[perm[i]]`).
    sp: [u64; 3],
}

impl StreamDesc {
    /// Builds the descriptor; agrees with the reference functions by
    /// construction (and by the property suite).
    pub fn build(cfg: StreamConfig, p: DescParams) -> Self {
        let epb = (p.affine_block / u64::from(cfg.elem_size)).max(1);
        // Access-order walk constants: the two dimension lengths
        // `access_to_coords` divides by, and the strides permuted so the
        // offset sum indexes them directly.
        let (lp0, lp1, sp) = match &cfg.kind {
            StreamKind::Affine(shape) => {
                let perm = shape.order.perm();
                (
                    shape.lengths[perm[0]],
                    shape.lengths[perm[1]],
                    [shape.strides[perm[0]], shape.strides[perm[1]], shape.strides[perm[2]]],
                )
            }
            StreamKind::Indirect { .. } => (1, 1, [0; 3]),
        };
        StreamDesc {
            grain: grain_of(&cfg, p),
            fetch_bytes: fetch_bytes(&cfg, p),
            epb,
            last_elem: cfg.elems() - 1,
            line_bytes: p.line_bytes,
            stream_grain: p.stream_grain,
            affine: cfg.kind.is_affine(),
            base: cfg.base,
            elem_bytes: u64::from(cfg.elem_size),
            epb_div: Divisor::new(epb),
            line_div: Divisor::new(p.line_bytes.max(1)),
            lp0_div: Divisor::new(lp0.max(1)),
            lp1_div: Divisor::new(lp1.max(1)),
            sp,
            cfg,
        }
    }

    /// Physical address of element `elem` — [`StreamConfig::addr_of`]
    /// with the coordinate divides strength-reduced through the
    /// precomputed dimension divisors.
    #[inline]
    pub fn addr_of_elem(&self, elem: u64) -> u64 {
        let addr = if self.affine {
            let (k1, c0) = self.lp0_div.divmod(elem);
            let (c2, c1) = self.lp1_div.divmod(k1);
            self.base + c0 * self.sp[0] + c1 * self.sp[1] + c2 * self.sp[2]
        } else {
            self.base + elem * self.elem_bytes
        };
        debug_assert_eq!(addr, self.cfg.addr_of(elem));
        addr
    }

    /// Cache key of element `elem` at address `addr`.
    #[inline]
    pub fn key_of(&self, elem: u64, addr: u64) -> u64 {
        if self.stream_grain {
            if self.affine {
                self.epb_div.div(elem)
            } else {
                elem
            }
        } else {
            self.line_div.div(addr)
        }
    }

    /// Physical address of a cache key.
    #[inline]
    pub fn addr_of_key(&self, key: u64) -> u64 {
        if self.stream_grain {
            if self.affine {
                self.addr_of_elem((key * self.epb).min(self.last_elem))
            } else {
                self.addr_of_elem(key.min(self.last_elem))
            }
        } else {
            key * self.line_bytes
        }
    }
}
