//! Set-based miss-curve samplers (paper §V-A).
//!
//! NDPExt's DRAM caches are set-partitioned (direct-mapped within a share),
//! so way-based utility monitors do not apply: set partitioning lacks the
//! stack property. Instead each hardware sampler shadows `c` capacity cases
//! simultaneously; for each case it monitors `k` hashed sample sets (4 bytes
//! of address each) and counts hits/misses. Scaling the sampled miss rate by
//! the stream's total access count yields the absolute miss curve.

use ndpx_sim::fastdiv::Divisor;
use ndpx_sim::rng::mix64;

/// A miss curve: estimated misses per epoch at increasing capacities.
///
/// Point 0 is always `(0, total_accesses)` — with no cache everything
/// misses. Capacities are strictly increasing; misses are non-increasing
/// (enforced at construction).
#[derive(Debug, Clone, PartialEq)]
pub struct MissCurve {
    points: Vec<(u64, f64)>,
}

impl MissCurve {
    /// Builds a curve from raw `(capacity_bytes, misses)` samples plus the
    /// zero-capacity anchor. Samples are sorted and monotonicity is enforced
    /// by running minimum (sampling noise can make a larger cache look
    /// worse; the paper interpolates the same way).
    pub fn from_samples(total_accesses: f64, mut samples: Vec<(u64, f64)>) -> Self {
        samples.sort_by_key(|&(c, _)| c);
        let mut points = Vec::with_capacity(samples.len() + 1);
        points.push((0, total_accesses));
        let mut floor = total_accesses;
        for (c, m) in samples {
            if c == 0 {
                continue;
            }
            floor = floor.min(m);
            points.push((c, floor));
        }
        MissCurve { points }
    }

    /// A degenerate curve for an unsampled stream: assumes no capacity helps
    /// beyond a token amount (the runtime treats such streams
    /// conservatively).
    pub fn flat(total_accesses: f64) -> Self {
        MissCurve { points: vec![(0, total_accesses)] }
    }

    /// The `(capacity, misses)` points, ascending capacity.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Estimated misses at `capacity` (linear interpolation between points;
    /// flat beyond the last point).
    pub fn misses_at(&self, capacity: u64) -> f64 {
        match self.points.binary_search_by_key(&capacity, |&(c, _)| c) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) if i == self.points.len() => self.points[i - 1].1,
            Err(i) => {
                let (c0, m0) = self.points[i - 1];
                let (c1, m1) = self.points[i];
                let t = (capacity - c0) as f64 / (c1 - c0) as f64;
                m0 + (m1 - m0) * t
            }
        }
    }

    /// The *lookahead* segment beyond `capacity`: among all larger curve
    /// points, the one with the steepest average slope (misses saved per
    /// byte) from the current position — the classic UCP/Jigsaw lookahead
    /// rule, which steps over convex plateaus that a next-point-only search
    /// would stall on.
    pub fn next_segment(&self, capacity: u64) -> Option<(u64, f64)> {
        let cur = self.misses_at(capacity);
        let mut best: Option<(u64, f64)> = None;
        for &(c, m) in self.points.iter().filter(|&&(c, _)| c > capacity) {
            let slope = (cur - m).max(0.0) / (c - capacity) as f64;
            if best.is_none_or(|(_, bs)| slope > bs) {
                best = Some((c, slope));
            }
        }
        best.filter(|&(_, slope)| slope > 0.0)
    }
}

/// Geometric capacity points from `min_cap` to `max_cap` (paper: 64 points
/// from 32 kB to the full per-unit space, factor ≈1.16).
pub fn capacity_points(min_cap: u64, max_cap: u64, count: usize) -> Vec<u64> {
    assert!(count >= 2, "need at least two capacity points");
    let min_cap = min_cap.max(1).min(max_cap);
    let ratio = (max_cap as f64 / min_cap as f64).powf(1.0 / (count - 1) as f64);
    let mut points: Vec<u64> =
        (0..count).map(|i| (min_cap as f64 * ratio.powi(i as i32)).round() as u64).collect();
    points.dedup();
    if let Some(last) = points.last_mut() {
        *last = max_cap;
    }
    points
}

#[derive(Debug, Clone)]
struct CapCase {
    capacity: u64,
    slots: u64,
    /// Strength-reduced monitoring stride `(slots / sets.len()).max(1)` —
    /// the per-access filter is the dominant cost of a sampled stream, and
    /// a hardware divide per case per access serializes the whole case
    /// loop.
    stride_div: Divisor,
    /// Strength-reduced `sets.len()` for the monitored-set index.
    monitored_div: Divisor,
    /// Sampled-set contents: key + 1 per monitored set (0 = empty).
    sets: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// One hardware sampler, watching one stream at one unit.
///
/// Storage per the paper: `k` sets × `c` cases × 4 B ≈ 8 kB.
#[derive(Debug, Clone)]
pub struct SetSampler {
    cases: Vec<CapCase>,
}

impl SetSampler {
    /// Creates a sampler over the given capacity points for a stream whose
    /// caching granularity is `grain` bytes per slot.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `grain` is zero.
    pub fn new(capacities: &[u64], grain: u64, k: usize) -> Self {
        assert!(k > 0, "need at least one sample set");
        assert!(grain > 0, "slot granularity must be positive");
        let cases = capacities
            .iter()
            .map(|&capacity| {
                let slots = (capacity / grain).max(1);
                let monitored = k.min(slots as usize) as u64;
                let stride = (slots / monitored).max(1);
                CapCase {
                    capacity,
                    slots,
                    stride_div: Divisor::new(stride),
                    monitored_div: Divisor::new(monitored),
                    sets: vec![0; monitored as usize],
                    hits: 0,
                    misses: 0,
                }
            })
            .collect();
        SetSampler { cases }
    }

    /// Observes one access to the stream (key = slot-granularity index).
    ///
    /// One hashed draw serves every capacity case: `hash_range(key, n)` is
    /// a multiply-shift range reduction of `mix64(key)`, so hoisting the
    /// mix out of the loop leaves each case a single widening multiply —
    /// the same bits `hash_range` would produce per case, at a fraction of
    /// the cost (the mix is three xor-shift-multiply rounds, and a sampled
    /// stream pays it per capacity point per access).
    pub fn observe(&mut self, key: u64) {
        let mixed = mix64(key);
        let tag = key + 1;
        for case in &mut self.cases {
            let slot = ((u128::from(mixed) * u128::from(case.slots)) >> 64) as u64;
            if !case.stride_div.is_multiple(slot) {
                continue;
            }
            let idx = case.monitored_div.rem(case.stride_div.div(slot)) as usize;
            if case.sets[idx] == tag {
                case.hits += 1;
            } else {
                case.misses += 1;
                case.sets[idx] = tag;
            }
        }
    }

    /// Zeroes hit/miss counters while keeping the shadow-set contents, so a
    /// new epoch's curve is not dominated by cold-start misses.
    pub fn reset_counters(&mut self) {
        for case in &mut self.cases {
            case.hits = 0;
            case.misses = 0;
        }
    }

    /// Total observations at the smallest-capacity case (every case sees a
    /// k/slots fraction; this is a health metric, not a rate).
    pub fn observed(&self) -> u64 {
        self.cases.first().map_or(0, |c| c.hits + c.misses)
    }

    /// Builds the absolute miss curve, scaling sampled miss *rates* by the
    /// stream's total epoch access count.
    pub fn curve(&self, total_accesses: u64) -> MissCurve {
        let samples = self
            .cases
            .iter()
            .map(|c| {
                let seen = c.hits + c.misses;
                let rate = if seen == 0 { 1.0 } else { c.misses as f64 / seen as f64 };
                (c.capacity, rate * total_accesses as f64)
            })
            .collect();
        MissCurve::from_samples(total_accesses as f64, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpx_sim::rng::Xoshiro256;

    #[test]
    fn capacity_points_are_geometric() {
        let pts = capacity_points(32 << 10, 256 << 20, 64);
        assert!(pts.len() >= 2);
        assert_eq!(*pts.first().unwrap(), 32 << 10);
        assert_eq!(*pts.last().unwrap(), 256 << 20);
        // Paper's factor: 63rd root of 8192 ≈ 1.154.
        let ratio = pts[1] as f64 / pts[0] as f64;
        assert!((ratio - 1.154).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn curve_interpolates_monotonically() {
        let c = MissCurve::from_samples(1000.0, vec![(100, 600.0), (200, 200.0), (400, 250.0)]);
        assert_eq!(c.misses_at(0), 1000.0);
        assert_eq!(c.misses_at(100), 600.0);
        assert_eq!(c.misses_at(150), 400.0);
        // Monotonicity enforced: the noisy 250 at 400 is floored to 200.
        assert_eq!(c.misses_at(400), 200.0);
        assert_eq!(c.misses_at(1 << 20), 200.0);
    }

    #[test]
    fn next_segment_reports_slopes() {
        let c = MissCurve::from_samples(1000.0, vec![(100, 500.0), (200, 400.0)]);
        let (cap, slope) = c.next_segment(0).unwrap();
        assert_eq!(cap, 100);
        assert!((slope - 5.0).abs() < 1e-9);
        let (cap2, slope2) = c.next_segment(100).unwrap();
        assert_eq!(cap2, 200);
        assert!((slope2 - 1.0).abs() < 1e-9);
        assert_eq!(c.next_segment(200), None);
    }

    #[test]
    fn sampler_detects_working_set_size() {
        // A working set of 64 keys, each 64 B: fits in ≥4 kB.
        let caps = vec![1 << 10, 4 << 10, 16 << 10];
        let mut s = SetSampler::new(&caps, 64, 16);
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..60_000 {
            s.observe(rng.below(64));
        }
        let curve = s.curve(60_000);
        let small = curve.misses_at(1 << 10);
        let big = curve.misses_at(16 << 10);
        assert!(small > big * 3.0, "1 kB should miss much more than 16 kB: {small} vs {big}");
        // With ample capacity, almost everything hits after warmup.
        assert!(big < 6_000.0, "16 kB misses too high: {big}");
    }

    #[test]
    fn sampler_scales_to_absolute_misses() {
        let mut s = SetSampler::new(&[1 << 10], 64, 8);
        // A scanning pattern never re-hits: miss rate ~1.
        for key in 0..10_000u64 {
            s.observe(key);
        }
        let curve = s.curve(1_000_000);
        assert!(curve.misses_at(1 << 10) > 900_000.0);
    }

    #[test]
    fn unsampled_stream_yields_flat_curve() {
        let c = MissCurve::flat(500.0);
        assert_eq!(c.misses_at(0), 500.0);
        assert_eq!(c.misses_at(1 << 30), 500.0);
        assert_eq!(c.next_segment(0), None);
    }

    #[test]
    fn sampler_storage_matches_paper() {
        // k = 32 sets × c = 64 cases × 4 B = 8 kB per sampler.
        let caps = capacity_points(32 << 10, 256 << 20, 64);
        let s = SetSampler::new(&caps, 64, 32);
        let bytes: usize = s.cases.iter().map(|c| c.sets.len() * 4).sum();
        assert!(bytes <= 8 << 10, "sampler storage {bytes} exceeds 8 kB");
    }
}
