//! Cache configuration policies (paper §V-C, Algorithm 1) and the adapted
//! baseline allocators.
//!
//! Given per-stream miss curves and per-unit access counts, the allocators
//! decide how many bytes of every unit's DRAM cache each stream receives and
//! how those bytes form replication groups:
//!
//! * [`allocate_ndpext`] — the paper's Algorithm 1: greedy lookahead over
//!   miss-curve slopes that *co-optimizes* sizing, spatial placement, and
//!   per-stream replication. Streams start maximally replicated (one group
//!   per accessing unit); when space runs out the algorithm either extends a
//!   group to a nearby unit or merges two groups (reducing replication),
//!   choosing by attenuation-weighted utility.
//! * [`allocate_baseline`] — Jigsaw / Whirlpool / Nexus / static-interleave
//!   and NDPExt-static, each with the paper's described placement rule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::PolicyKind;
use crate::runtime::sampler::MissCurve;

/// Per-stream demand information collected over an epoch.
#[derive(Debug, Clone)]
pub struct StreamDemand {
    /// Miss curve (absolute misses vs. capacity).
    pub curve: MissCurve,
    /// Units that accessed the stream, with access counts.
    pub acc_units: Vec<(usize, u64)>,
    /// Replication is only legal for read-only streams (§IV-B).
    pub read_only: bool,
    /// True for affine streams (which are capped by the affine budget).
    pub affine: bool,
    /// Slot granularity in bytes.
    pub grain: u64,
    /// Total accesses this epoch.
    pub total_accesses: u64,
    /// The stream's data footprint in bytes (caching beyond this is
    /// pointless).
    pub footprint: u64,
}

/// One replication group's allocation: bytes per unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocGroup {
    /// `(unit, bytes)` pairs with positive bytes.
    pub unit_bytes: Vec<(usize, u64)>,
}

impl AllocGroup {
    /// Total bytes in the group.
    pub fn total(&self) -> u64 {
        self.unit_bytes.iter().map(|&(_, b)| b).sum()
    }
}

/// The allocator output: per stream, its replication groups.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// `streams[s]` lists stream `s`'s groups (empty = nothing cached).
    pub streams: Vec<Vec<AllocGroup>>,
}

impl Allocation {
    /// Total bytes allocated across all streams and groups (replicas count).
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().flatten().map(AllocGroup::total).sum()
    }

    /// Fraction of allocated bytes beyond each stream's largest group —
    /// i.e. capacity spent on replication.
    pub fn replicated_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let primary: u64 =
            self.streams.iter().map(|gs| gs.iter().map(AllocGroup::total).max().unwrap_or(0)).sum();
        (total - primary) as f64 / total as f64
    }
}

/// Static inputs to the allocators.
#[derive(Debug, Clone)]
pub struct ConfigCtx {
    /// Number of NDP units.
    pub units: usize,
    /// DRAM cache bytes per unit.
    pub unit_capacity: u64,
    /// Affine budget per unit (§IV-C).
    pub affine_cap: u64,
    /// `attenuation[u][v]` = DRAM latency / (DRAM + interconnect(u→v))
    /// (paper §V-C); 1.0 on the diagonal, smaller for farther units.
    pub attenuation: Vec<Vec<f64>>,
    /// DRAM-cache hit latency at the serving unit, picoseconds.
    pub dram_lat_ps: f64,
    /// Extra latency of a miss to extended memory (beyond a local hit),
    /// picoseconds.
    pub miss_extra_ps: f64,
    /// Per-unit death mask (chaos stack loss): dead units contribute zero
    /// cache capacity and are excluded from every spread. All-false on a
    /// healthy system.
    pub dead: Vec<bool>,
}

impl ConfigCtx {
    /// Whether unit `u` is alive (can hold cache capacity).
    pub fn alive(&self, u: usize) -> bool {
        !self.dead.get(u).copied().unwrap_or(false)
    }

    /// DRAM cache bytes unit `u` can offer: `unit_capacity`, or zero when the
    /// unit is dead.
    pub fn capacity_of(&self, u: usize) -> u64 {
        if self.alive(u) {
            self.unit_capacity
        } else {
            0
        }
    }

    /// Interconnect latency between `u` and `v`, picoseconds (derived from
    /// the attenuation factor).
    fn noc_ps(&self, u: usize, v: usize) -> f64 {
        self.dram_lat_ps * (1.0 / self.attenuation[u][v] - 1.0)
    }

    /// The unit nearest to `u` (highest attenuation) among candidates where
    /// `pred` holds; excludes `u` itself unless it is the only candidate.
    fn nearest_where(&self, u: usize, mut pred: impl FnMut(usize) -> bool) -> Option<usize> {
        let mut best = None;
        let mut best_k = f64::NEG_INFINITY;
        for v in 0..self.units {
            if v == u || !pred(v) {
                continue;
            }
            let k = self.attenuation[u][v];
            if k > best_k {
                best_k = k;
                best = Some(v);
            }
        }
        best
    }
}

#[derive(Debug, Clone)]
struct GroupState {
    cap: Vec<u64>,
    members: Vec<usize>,
    /// Anchor unit: the original (or highest-traffic) accessing unit.
    anchor: usize,
    /// This group's share of the stream's accesses.
    share: f64,
    alive: bool,
}

impl GroupState {
    fn total(&self) -> u64 {
        self.members.iter().map(|&u| self.cap[u]).sum()
    }

    /// Paper-style group utility: every member values every member's
    /// capacity, attenuated by distance.
    fn utility(&self, ctx: &ConfigCtx) -> f64 {
        let mut util = 0.0;
        for &u in &self.members {
            for &v in &self.members {
                util += self.cap[v] as f64 * ctx.attenuation[u][v];
            }
        }
        util
    }
}

struct Budget {
    free: Vec<u64>,
    affine_free: Vec<u64>,
}

impl Budget {
    fn available(&self, unit: usize, affine: bool) -> u64 {
        if affine {
            self.free[unit].min(self.affine_free[unit])
        } else {
            self.free[unit]
        }
    }

    fn take(&mut self, unit: usize, affine: bool, bytes: u64) {
        self.free[unit] -= bytes;
        if affine {
            self.affine_free[unit] -= bytes;
        }
    }

    fn give(&mut self, unit: usize, affine: bool, bytes: u64) {
        self.free[unit] += bytes;
        if affine {
            self.affine_free[unit] += bytes;
        }
    }
}

/// A heap entry: slope encoded as ordered bits (slopes are non-negative).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey(u64, Reverse<usize>, Reverse<usize>);

fn slope_bits(slope: f64) -> u64 {
    debug_assert!(slope >= 0.0);
    slope.to_bits()
}

/// Runs the NDPExt configuration algorithm (Algorithm 1).
///
/// Returns a per-stream group allocation. Capacity is expressed in bytes and
/// already rounded to each stream's grain.
pub fn allocate_ndpext(demands: &[StreamDemand], ctx: &ConfigCtx) -> Allocation {
    let mut budget = Budget {
        free: (0..ctx.units).map(|u| ctx.capacity_of(u)).collect(),
        affine_free: (0..ctx.units).map(|u| ctx.affine_cap.min(ctx.capacity_of(u))).collect(),
    };

    // Initial groups: maximal replication for read-only streams, a single
    // shared group otherwise.
    let mut groups: Vec<Vec<GroupState>> = demands
        .iter()
        .map(|d| {
            if d.acc_units.is_empty() {
                return Vec::new();
            }
            let total: u64 = d.acc_units.iter().map(|&(_, a)| a).sum();
            if d.read_only {
                d.acc_units
                    .iter()
                    .map(|&(u, a)| GroupState {
                        cap: vec![0; ctx.units],
                        members: vec![u],
                        anchor: u,
                        share: a as f64 / total.max(1) as f64,
                        alive: true,
                    })
                    .collect()
            } else {
                let anchor = d.acc_units.iter().max_by_key(|&&(_, a)| a).expect("non-empty").0;
                vec![GroupState {
                    cap: vec![0; ctx.units],
                    members: d.acc_units.iter().map(|&(u, _)| u).collect(),
                    anchor,
                    share: 1.0,
                    alive: true,
                }]
            }
        })
        .collect();

    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<HeapKey>,
                demands: &[StreamDemand],
                all: &[Vec<GroupState>],
                s: usize,
                g: usize| {
        let gs = &all[s][g];
        if let Some((_, slope)) = demands[s].curve.next_segment(gs.total()) {
            let weighted = slope * gs.share * replica_factor(&all[s], g, &demands[s], ctx);
            if weighted > 0.0 {
                heap.push(HeapKey(slope_bits(weighted), Reverse(s), Reverse(g)));
            }
        }
    };
    for s in 0..groups.len() {
        for g in 0..groups[s].len() {
            push(&mut heap, demands, &groups, s, g);
        }
    }

    while let Some(HeapKey(bits, Reverse(s), Reverse(g))) = heap.pop() {
        if !groups[s][g].alive {
            continue;
        }
        // Lazy heap: recompute and skip stale entries.
        let cur_total = groups[s][g].total();
        let Some((next_cap, slope)) = demands[s].curve.next_segment(cur_total) else {
            continue;
        };
        let weighted = slope * groups[s][g].share * replica_factor(&groups[s], g, &demands[s], ctx);
        if slope_bits(weighted) != bits {
            push(&mut heap, demands, &groups, s, g);
            continue;
        }

        let grain = demands[s].grain.max(1);
        // A group never needs more than one full copy of the stream.
        let room = demands[s].footprint.saturating_sub(cur_total);
        if room == 0 {
            continue;
        }
        let seg = ((next_cap - cur_total).min(room).div_ceil(grain)) * grain;
        let affine = demands[s].affine;

        // Try to place `seg` bytes within the group's members.
        let mut remaining = seg;
        let mut staged: Vec<(usize, u64)> = Vec::new();
        let mut member_order = groups[s][g].members.clone();
        member_order.sort_by_key(|&u| Reverse(budget.available(u, affine)));
        for &u in &member_order {
            if remaining == 0 {
                break;
            }
            let avail = (budget.available(u, affine) / grain) * grain;
            let take = avail.min(remaining);
            if take > 0 {
                staged.push((u, take));
                remaining -= take;
            }
        }

        if remaining > 0 {
            // Lines 9–21: extend the group or merge two groups.
            let anchor = groups[s][g].anchor;
            let members = groups[s][g].members.clone();
            let extend_unit = ctx.nearest_where(anchor, |v| {
                !members.contains(&v) && budget.available(v, affine) >= grain
            });
            let extend_gain = extend_unit.map(|v| {
                let mut trial = groups[s][g].clone();
                trial.members.push(v);
                let placeable = (budget.available(v, affine).min(remaining) / grain) * grain;
                trial.cap[v] += placeable;
                trial.utility(ctx) - groups[s][g].utility(ctx)
            });

            // Merge candidate: the lowest-utility group (any stream) with
            // capacity at a member unit of this group, merged into its
            // nearest sibling group.
            let mut merge_pick: Option<(usize, usize, usize, f64)> = None;
            for (s2, gs2) in groups.iter().enumerate() {
                if gs2.len() < 2 {
                    continue;
                }
                for (g2, st2) in gs2.iter().enumerate() {
                    // Only merging a group that holds capacity frees space.
                    if !st2.alive
                        || st2.total() == 0
                        || !st2.members.iter().any(|m| members.contains(m))
                    {
                        continue;
                    }
                    // Nearest sibling group of the same stream.
                    let sibling =
                        gs2.iter().enumerate().filter(|&(o, os)| o != g2 && os.alive).max_by(
                            |a, b| {
                                let ka = ctx.attenuation[st2.anchor][a.1.anchor];
                                let kb = ctx.attenuation[st2.anchor][b.1.anchor];
                                ka.partial_cmp(&kb).expect("attenuations are finite")
                            },
                        );
                    if let Some((g3, _)) = sibling {
                        let u = st2.utility(ctx);
                        if merge_pick.is_none_or(|(.., best_u)| u < best_u) {
                            merge_pick = Some((s2, g2, g3, u));
                        }
                    }
                }
            }

            let do_merge = match (extend_gain, merge_pick) {
                (None, None) => {
                    // Nothing helps: this group is done.
                    continue;
                }
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(eg), Some((s2, g2, g3, _))) => {
                    // Merge gain: freed capacity enables this allocation; its
                    // utility cost is the dropped replica's utility drop.
                    let freed = groups[s2][g2].total() as f64;
                    let merged_cost = groups[s2][g2].utility(ctx)
                        - groups[s2][g2].total() as f64
                            * ctx.attenuation[groups[s2][g2].anchor][groups[s2][g3].anchor];
                    freed - merged_cost > eg
                }
            };

            if do_merge {
                let (s2, g2, g3, _) = merge_pick.expect("checked above");
                // Drop replica g2: free its capacity, fold its members into
                // g3 (they are now served remotely).
                let (cap2, members2, share2, anchor2);
                {
                    let st2 = &mut groups[s2][g2];
                    st2.alive = false;
                    cap2 = st2.cap.clone();
                    members2 = st2.members.clone();
                    share2 = st2.share;
                    anchor2 = st2.anchor;
                    for u in 0..ctx.units {
                        if st2.cap[u] > 0 {
                            budget.give(u, demands[s2].affine, st2.cap[u]);
                            st2.cap[u] = 0;
                        }
                    }
                }
                let _ = (cap2, anchor2);
                let st3 = &mut groups[s2][g3];
                for m in members2 {
                    if !st3.members.contains(&m) {
                        st3.members.push(m);
                    }
                }
                st3.share += share2;
                // The surviving group's slope improved (more share); requeue.
                push(&mut heap, demands, &groups, s2, g3);
            } else if let Some(v) = extend_unit {
                if !groups[s][g].members.contains(&v) {
                    groups[s][g].members.push(v);
                }
            }
            // Retry this group next round.
            push(&mut heap, demands, &groups, s, g);
            continue;
        }

        // Commit the staged allocation.
        for (u, b) in staged {
            budget.take(u, affine, b);
            groups[s][g].cap[u] += b;
        }
        push(&mut heap, demands, &groups, s, g);
    }

    // Leftover fill: sampled curves flatten into noise long before capacity
    // runs out; a real cache still uses the space. Hand each unit's free
    // space to the streams that access it (weighted by access count).
    // Capacity goes into each stream's *largest* group — growing one shared
    // copy rather than inflating replication — and is capped by the stream's
    // footprint across all groups.
    for u in 0..ctx.units {
        let mut cands: Vec<(usize, usize, u64)> = Vec::new();
        for (s, d) in demands.iter().enumerate() {
            let Some(&(_, acc)) = d.acc_units.iter().find(|&&(au, _)| au == u) else {
                continue;
            };
            let Some(g) = (0..groups[s].len())
                .filter(|&g| groups[s][g].alive)
                .max_by_key(|&g| groups[s][g].total())
            else {
                continue;
            };
            let have: u64 = groups[s].iter().filter(|g| g.alive).map(GroupState::total).sum();
            if have < d.footprint {
                cands.push((s, g, acc));
            }
        }
        let total_w: u64 = cands.iter().map(|&(.., w)| w).sum();
        if total_w == 0 {
            continue;
        }
        let free_u = budget.available(u, false);
        for (s, g, w) in cands {
            let d = &demands[s];
            let grain = d.grain.max(1);
            let share = free_u * w / total_w;
            let have: u64 = groups[s].iter().filter(|g| g.alive).map(GroupState::total).sum();
            let room = d.footprint.saturating_sub(have);
            // Keep the filled capacity spatially spread: no unit holds more
            // than ~2× the stream's fair per-unit share (hot-spotting one
            // unit concentrates traffic and lengthens average hops).
            let fair = (d.footprint / ctx.units as u64).max(grain) * 2;
            let at_u = groups[s][g].cap[u];
            let add =
                (share.min(room).min(fair.saturating_sub(at_u)).min(budget.available(u, d.affine))
                    / grain)
                    * grain;
            if add > 0 {
                budget.take(u, d.affine, add);
                groups[s][g].cap[u] += add;
                if !groups[s][g].members.contains(&u) {
                    groups[s][g].members.push(u);
                }
            }
        }
    }

    // Consolidation pass: replication trades hit latency for hit rate
    // (§V-C). For each read-only stream, merge replica groups while the
    // estimated access time improves: a merge pools capacity (fewer misses
    // to slow extended memory) at the cost of remote hits on the NoC.
    for (s, d) in demands.iter().enumerate() {
        loop {
            let alive: Vec<usize> = (0..groups[s].len()).filter(|&g| groups[s][g].alive).collect();
            if alive.len() < 2 {
                break;
            }
            // Merge the two smallest groups (the least capacity-efficient
            // replicas) if that lowers expected access time.
            let mut by_size = alive.clone();
            by_size.sort_by_key(|&g| groups[s][g].total());
            let (a, b) = (by_size[0], by_size[1]);
            let before = group_time(&groups[s][a], d, ctx) + group_time(&groups[s][b], d, ctx);
            let mut merged = groups[s][a].clone();
            for &m in &groups[s][b].members {
                if !merged.members.contains(&m) {
                    merged.members.push(m);
                }
            }
            for u in 0..ctx.units {
                merged.cap[u] += groups[s][b].cap[u];
            }
            merged.share += groups[s][b].share;
            let after = group_time(&merged, d, ctx);
            if after < before {
                groups[s][b].alive = false;
                groups[s][a] = merged;
            } else {
                break;
            }
        }
    }

    to_allocation(&groups, ctx.units)
}

/// Discounts a replica group's marginal utility: if the stream already has
/// a larger group covering its accesses, an extra copy only converts
/// *remote hits* into *local hits* — worth the interconnect saving, not the
/// full miss penalty (the paper's hit-rate vs hit-latency tradeoff, §V-C).
fn replica_factor(gs: &[GroupState], g: usize, d: &StreamDemand, ctx: &ConfigCtx) -> f64 {
    // The stream's primary copy (largest group, lowest index on ties) earns
    // full miss-curve credit; every other group is a replica.
    let Some(other) = gs
        .iter()
        .enumerate()
        .filter(|&(i, st)| {
            i != g
                && st.alive
                && (st.total() > gs[g].total() || (st.total() == gs[g].total() && i < g))
        })
        .max_by(|a, b| a.1.total().cmp(&b.1.total()).then(b.0.cmp(&a.0)))
        .map(|(_, st)| st)
    else {
        return 1.0;
    };
    // Fraction of accesses the larger group would serve as hits.
    let total = d.total_accesses.max(1) as f64;
    let covered = (1.0 - d.curve.misses_at(other.total()) / total).clamp(0.0, 1.0);
    // Value of localizing a covered access: the interconnect saving relative
    // to the full miss penalty an uncovered access pays.
    let noc = ctx.noc_ps(gs[g].anchor, other.anchor).max(0.0);
    let latency_value = (noc / (ctx.dram_lat_ps + ctx.miss_extra_ps)).min(1.0);
    covered * latency_value + (1.0 - covered)
}

/// Estimated time this group's accesses spend in the memory system per
/// epoch: misses pay the extended-memory penalty, hits pay DRAM plus the
/// average intra-group NoC distance.
fn group_time(g: &GroupState, d: &StreamDemand, ctx: &ConfigCtx) -> f64 {
    let acc = d.total_accesses as f64 * g.share;
    if acc <= 0.0 {
        return 0.0;
    }
    let misses = d.curve.misses_at(g.total()) * g.share;
    let hits = (acc - misses).max(0.0);
    // Average NoC distance within the group, capacity-weighted.
    let total_cap = g.total().max(1) as f64;
    let mut avg_noc = 0.0;
    if g.members.len() > 1 {
        for &u in &g.members {
            let mut from_u = 0.0;
            for &v in &g.members {
                from_u += g.cap[v] as f64 / total_cap * ctx.noc_ps(u, v);
            }
            avg_noc += from_u / g.members.len() as f64;
        }
    }
    misses * (ctx.dram_lat_ps + ctx.miss_extra_ps) + hits * (ctx.dram_lat_ps + avg_noc)
}

fn to_allocation(groups: &[Vec<GroupState>], units: usize) -> Allocation {
    Allocation {
        streams: groups
            .iter()
            .map(|gs| {
                gs.iter()
                    .filter(|st| st.alive && st.total() > 0)
                    .map(|st| AllocGroup {
                        unit_bytes: (0..units)
                            .filter(|&u| st.cap[u] > 0)
                            .map(|u| (u, st.cap[u]))
                            .collect(),
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Runs one of the baseline allocators.
///
/// # Panics
///
/// Panics if called with `PolicyKind::NdpExt` (use [`allocate_ndpext`]).
pub fn allocate_baseline(
    policy: PolicyKind,
    demands: &[StreamDemand],
    ctx: &ConfigCtx,
    nexus_degree: usize,
) -> Allocation {
    match policy {
        PolicyKind::NdpExt => panic!("use allocate_ndpext for the NDPExt policy"),
        PolicyKind::NdpExtStatic => allocate_equal(demands, ctx),
        PolicyKind::StaticInterleave => allocate_interleave(demands, ctx),
        PolicyKind::Jigsaw | PolicyKind::Whirlpool | PolicyKind::Nexus => {
            allocate_lookahead(policy, demands, ctx, nexus_degree)
        }
    }
}

/// NDPExt-static: the cache space is equally allocated to every stream on
/// every unit (paper §VI), one global group per stream.
fn allocate_equal(demands: &[StreamDemand], ctx: &ConfigCtx) -> Allocation {
    let active = demands.iter().filter(|d| d.total_accesses > 0).count().max(1) as u64;
    let streams = demands
        .iter()
        .map(|d| {
            if d.total_accesses == 0 {
                return Vec::new();
            }
            let per_unit_raw = ctx.unit_capacity / active;
            let per_unit_cap =
                if d.affine { per_unit_raw.min(ctx.affine_cap / active) } else { per_unit_raw };
            let per_unit = (per_unit_cap / d.grain.max(1)) * d.grain.max(1);
            if per_unit == 0 {
                return Vec::new();
            }
            vec![AllocGroup {
                unit_bytes: (0..ctx.units)
                    .filter(|&u| ctx.alive(u))
                    .map(|u| (u, per_unit))
                    .collect(),
            }]
        })
        .collect();
    Allocation { streams }
}

/// Static interleaving: one shared, unmanaged cache. Capacity divides
/// between streams proportional to access intensity (how an unpartitioned
/// direct-mapped cache settles), spread uniformly over all surviving units.
fn allocate_interleave(demands: &[StreamDemand], ctx: &ConfigCtx) -> Allocation {
    let total_acc: u64 = demands.iter().map(|d| d.total_accesses).sum();
    let alive: Vec<usize> = (0..ctx.units).filter(|&u| ctx.alive(u)).collect();
    if total_acc == 0 || alive.is_empty() {
        return Allocation { streams: demands.iter().map(|_| Vec::new()).collect() };
    }
    let streams = demands
        .iter()
        .map(|d| {
            if d.total_accesses == 0 {
                return Vec::new();
            }
            let stream_bytes =
                (ctx.unit_capacity as f64 * alive.len() as f64 * d.total_accesses as f64
                    / total_acc as f64) as u64;
            let per_unit = ((stream_bytes / alive.len() as u64) / d.grain.max(1)) * d.grain.max(1);
            if per_unit == 0 {
                return Vec::new();
            }
            vec![AllocGroup { unit_bytes: alive.iter().map(|&u| (u, per_unit)).collect() }]
        })
        .collect();
    Allocation { streams }
}

/// Jigsaw / Whirlpool / Nexus: lookahead sizing with policy-specific
/// placement.
fn allocate_lookahead(
    policy: PolicyKind,
    demands: &[StreamDemand],
    ctx: &ConfigCtx,
    nexus_degree: usize,
) -> Allocation {
    let mut free: Vec<u64> = (0..ctx.units).map(|u| ctx.capacity_of(u)).collect();

    // Per stream: the ordered unit preference list. Jigsaw gathers each
    // partition at its centre of mass; Whirlpool and Nexus place capacity at
    // the accessing units first (access-intensity order).
    let prefs: Vec<Vec<usize>> = demands
        .iter()
        .map(|d| {
            if policy == PolicyKind::Jigsaw {
                placement_order(d, ctx)
            } else {
                intensity_order(d, ctx)
            }
        })
        .collect();
    // Nexus: cluster accessing units into `nexus_degree` groups by unit
    // index (stack contiguity).
    let clusters: Vec<Vec<Vec<usize>>> = demands
        .iter()
        .map(|d| {
            if policy == PolicyKind::Nexus && d.read_only && !d.acc_units.is_empty() {
                let mut units: Vec<usize> = d.acc_units.iter().map(|&(u, _)| u).collect();
                units.sort_unstable();
                let degree = nexus_degree.min(units.len()).max(1);
                let per = units.len().div_ceil(degree);
                units.chunks(per).map(<[usize]>::to_vec).collect()
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut alloc: Vec<Vec<AllocGroup>> = demands
        .iter()
        .enumerate()
        .map(|(s, d)| {
            if d.total_accesses == 0 {
                Vec::new()
            } else if clusters[s].is_empty() {
                vec![AllocGroup::default()]
            } else {
                clusters[s].iter().map(|_| AllocGroup::default()).collect()
            }
        })
        .collect();
    let mut totals: Vec<u64> = vec![0; demands.len()];

    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::new();
    for (s, d) in demands.iter().enumerate() {
        if let Some((_, slope)) = d.curve.next_segment(0) {
            if slope > 0.0 && d.total_accesses > 0 {
                heap.push(HeapKey(slope_bits(slope), Reverse(s), Reverse(0)));
            }
        }
    }

    while let Some(HeapKey(bits, Reverse(s), Reverse(_))) = heap.pop() {
        let d = &demands[s];
        let Some((next_cap, slope)) = d.curve.next_segment(totals[s]) else {
            continue;
        };
        if slope_bits(slope) != bits {
            heap.push(HeapKey(slope_bits(slope), Reverse(s), Reverse(0)));
            continue;
        }
        let grain = d.grain.max(1);
        let room = d.footprint.saturating_sub(totals[s]);
        if room == 0 {
            continue;
        }
        let seg = (next_cap - totals[s]).min(room).div_ceil(grain) * grain;

        let replicas = alloc[s].len().max(1);
        let mut placed_any = false;
        for r in 0..replicas {
            let order: &[usize] = if clusters[s].is_empty() { &prefs[s] } else { &clusters[s][r] };
            let mut remaining = seg;
            // Whirlpool/Nexus spread each increment across the accessing
            // units proportionally to access intensity; Jigsaw fills from
            // the centre of mass outward.
            if policy != PolicyKind::Jigsaw && clusters[s].is_empty() && !d.acc_units.is_empty() {
                let total_acc: u64 = d.acc_units.iter().map(|&(_, a)| a).sum();
                for &(u, acc) in &d.acc_units {
                    let want = (seg * acc / total_acc.max(1)).min(remaining);
                    let take = ((free[u].min(want)) / grain) * grain;
                    if take > 0 {
                        free[u] -= take;
                        remaining -= take;
                        add_bytes(&mut alloc[s][r], u, take);
                        placed_any = true;
                    }
                }
            }
            for &u in order {
                if remaining == 0 {
                    break;
                }
                let take = ((free[u] / grain) * grain).min(remaining);
                if take > 0 {
                    free[u] -= take;
                    remaining -= take;
                    add_bytes(&mut alloc[s][r], u, take);
                    placed_any = true;
                }
            }
            // Overflow beyond the preferred order spills anywhere with space
            // (the paper's "suboptimal positions, incurring extra hops").
            if remaining > 0 {
                for (u, avail) in free.iter_mut().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    let take = ((*avail / grain) * grain).min(remaining);
                    if take > 0 {
                        *avail -= take;
                        remaining -= take;
                        add_bytes(&mut alloc[s][r], u, take);
                        placed_any = true;
                    }
                }
            }
        }
        if !placed_any {
            continue; // Out of space for this stream.
        }
        totals[s] = next_cap;
        heap.push(HeapKey(
            slope_bits(d.curve.next_segment(totals[s]).map_or(0.0, |(_, sl)| sl)),
            Reverse(s),
            Reverse(0),
        ));
    }

    // Leftover fill (see allocate_ndpext): unused capacity goes to streams
    // accessing each unit, weighted by access count, into their first group.
    for (u, avail) in free.iter_mut().enumerate() {
        let mut cands: Vec<(usize, u64)> = Vec::new();
        for (s, d) in demands.iter().enumerate() {
            if alloc[s].is_empty() {
                continue;
            }
            let Some(&(_, acc)) = d.acc_units.iter().find(|&&(au, _)| au == u) else {
                continue;
            };
            let have: u64 = alloc[s].iter().map(AllocGroup::total).sum();
            if have < d.footprint {
                cands.push((s, acc));
            }
        }
        let total_w: u64 = cands.iter().map(|&(_, w)| w).sum();
        if total_w == 0 {
            continue;
        }
        let free_u = *avail;
        for (s, w) in cands {
            let d = &demands[s];
            let grain = d.grain.max(1);
            let have: u64 = alloc[s].iter().map(AllocGroup::total).sum();
            let room = d.footprint.saturating_sub(have);
            let add = ((free_u * w / total_w).min(room).min(*avail) / grain) * grain;
            if add > 0 {
                *avail -= add;
                add_bytes(&mut alloc[s][0], u, add);
            }
        }
    }

    // Drop empty groups.
    for gs in &mut alloc {
        gs.retain(|g| g.total() > 0);
    }
    Allocation { streams: alloc }
}

fn add_bytes(group: &mut AllocGroup, unit: usize, bytes: u64) {
    if let Some(e) = group.unit_bytes.iter_mut().find(|(u, _)| *u == unit) {
        e.1 += bytes;
    } else {
        group.unit_bytes.push((unit, bytes));
    }
}

/// Whirlpool/Nexus placement: accessing units first, by access intensity,
/// then the rest by proximity to the hottest accessor.
fn intensity_order(d: &StreamDemand, ctx: &ConfigCtx) -> Vec<usize> {
    if d.acc_units.is_empty() {
        return (0..ctx.units).collect();
    }
    let mut accessing = d.acc_units.clone();
    accessing.sort_by_key(|&(_, a)| Reverse(a));
    let hottest = accessing[0].0;
    let mut order: Vec<usize> = accessing.iter().map(|&(u, _)| u).collect();
    let mut rest: Vec<usize> = (0..ctx.units).filter(|u| !order.contains(u)).collect();
    rest.sort_by(|&a, &b| {
        ctx.attenuation[hottest][b]
            .partial_cmp(&ctx.attenuation[hottest][a])
            .expect("finite attenuation")
    });
    order.extend(rest);
    order
}

/// Jigsaw placement: gather every partition at its centre of mass.
fn placement_order(d: &StreamDemand, ctx: &ConfigCtx) -> Vec<usize> {
    if d.acc_units.is_empty() {
        return (0..ctx.units).collect();
    }
    // Centre of mass: the unit with the highest attenuation-weighted access
    // sum.
    let com = (0..ctx.units)
        .max_by(|&a, &b| {
            let score = |u: usize| -> f64 {
                d.acc_units.iter().map(|&(v, acc)| acc as f64 * ctx.attenuation[u][v]).sum()
            };
            score(a).partial_cmp(&score(b)).expect("finite scores")
        })
        .expect("units > 0");
    let mut order: Vec<usize> = (0..ctx.units).collect();
    order.sort_by(|&a, &b| {
        ctx.attenuation[com][b].partial_cmp(&ctx.attenuation[com][a]).expect("finite attenuation")
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(units: usize, cap: u64) -> ConfigCtx {
        // Line topology: attenuation decays with distance.
        let attenuation = (0..units)
            .map(|u| (0..units).map(|v| 1.0 / (1.0 + u.abs_diff(v) as f64 * 0.2)).collect())
            .collect();
        ConfigCtx {
            units,
            unit_capacity: cap,
            affine_cap: cap,
            attenuation,
            dram_lat_ps: 45_000.0,
            miss_extra_ps: 500_000.0,
            dead: vec![false; units],
        }
    }

    fn demand(
        curve_pts: Vec<(u64, f64)>,
        total: f64,
        acc: Vec<(usize, u64)>,
        ro: bool,
    ) -> StreamDemand {
        // Footprint = the largest sampled capacity: beyond it more cache
        // cannot help, matching real stream sizes.
        let footprint = curve_pts.iter().map(|&(c, _)| c).max().unwrap_or(64);
        StreamDemand {
            curve: MissCurve::from_samples(total, curve_pts),
            acc_units: acc,
            read_only: ro,
            affine: false,
            grain: 64,
            total_accesses: total as u64,
            footprint,
        }
    }

    #[test]
    fn ndpext_replicates_hot_read_only_stream() {
        // One hot RO stream accessed by both units; plenty of space: each
        // unit should get its own replica (two groups).
        let d = vec![demand(vec![(1024, 0.0)], 10_000.0, vec![(0, 5000), (1, 5000)], true)];
        let a = allocate_ndpext(&d, &ctx(2, 1 << 20));
        assert_eq!(a.streams[0].len(), 2, "expected two replicas, got {:?}", a.streams[0]);
        assert!(a.replicated_fraction() > 0.4);
    }

    #[test]
    fn ndpext_does_not_replicate_read_write() {
        let d = vec![demand(vec![(1024, 0.0)], 10_000.0, vec![(0, 5000), (1, 5000)], false)];
        let a = allocate_ndpext(&d, &ctx(2, 1 << 20));
        assert_eq!(a.streams[0].len(), 1);
    }

    #[test]
    fn ndpext_reduces_replication_under_pressure() {
        // Capacity for only ~one copy: groups must merge.
        let units = 4;
        let cap = 4096u64;
        let d = vec![demand(
            vec![(8192, 0.0)],
            100_000.0,
            (0..units).map(|u| (u, 1000u64)).collect(),
            true,
        )];
        let a = allocate_ndpext(&d, &ctx(units, cap));
        let total: u64 = a.streams[0].iter().map(AllocGroup::total).sum();
        assert!(total <= cap * units as u64);
        assert!(
            a.streams[0].len() < units,
            "under pressure replication should drop below max: {:?}",
            a.streams[0]
        );
    }

    #[test]
    fn ndpext_prefers_steeper_curves() {
        // Stream 0 gains a lot from cache; stream 1 gains nothing.
        let d = vec![
            demand(vec![(4096, 100.0)], 100_000.0, vec![(0, 1000)], false),
            demand(vec![(4096, 99_000.0)], 100_000.0, vec![(1, 1000)], false),
        ];
        let a = allocate_ndpext(&d, &ctx(2, 2048));
        let t0: u64 = a.streams[0].iter().map(AllocGroup::total).sum();
        let t1: u64 = a.streams[1].iter().map(AllocGroup::total).sum();
        assert!(t0 > t1, "steep stream got {t0}, flat stream got {t1}");
    }

    #[test]
    fn equal_allocation_splits_capacity() {
        let d = vec![
            demand(vec![(4096, 0.0)], 100.0, vec![(0, 100)], true),
            demand(vec![(4096, 0.0)], 100.0, vec![(1, 100)], true),
        ];
        let c = ctx(2, 8192);
        let a = allocate_baseline(PolicyKind::NdpExtStatic, &d, &c, 2);
        for gs in &a.streams {
            assert_eq!(gs.len(), 1);
            // Each stream gets half of each unit.
            for &(_, b) in &gs[0].unit_bytes {
                assert_eq!(b, 4096);
            }
        }
    }

    #[test]
    fn jigsaw_gathers_whirlpool_spreads() {
        // A stream accessed only at the two ends of a 6-unit line.
        let acc = vec![(0usize, 1000u64), (5, 1000)];
        let d = vec![demand(vec![(64 * 600, 0.0)], 10_000.0, acc, false)];
        let c = ctx(6, 64 * 100);
        let jig = allocate_baseline(PolicyKind::Jigsaw, &d, &c, 2);
        let whirl = allocate_baseline(PolicyKind::Whirlpool, &d, &c, 2);
        let spread = |a: &Allocation| a.streams[0][0].unit_bytes.len();
        // Jigsaw fills from the centre of mass outward; Whirlpool puts
        // capacity at the accessing units first.
        let whirl_units: Vec<usize> =
            whirl.streams[0][0].unit_bytes.iter().map(|&(u, _)| u).collect();
        assert!(whirl_units.contains(&0) && whirl_units.contains(&5), "{whirl_units:?}");
        assert!(spread(&jig) >= 1);
    }

    #[test]
    fn nexus_replicates_read_only_with_global_degree() {
        let acc: Vec<(usize, u64)> = (0..6).map(|u| (u, 100u64)).collect();
        let d = vec![demand(vec![(4096, 0.0)], 10_000.0, acc, true)];
        let c = ctx(6, 1 << 20);
        let a = allocate_baseline(PolicyKind::Nexus, &d, &c, 3);
        assert_eq!(a.streams[0].len(), 3, "nexus should build 3 replicas");
    }

    #[test]
    fn interleave_weights_by_access_intensity() {
        let d = vec![
            demand(vec![(4096, 0.0)], 9000.0, vec![(0, 9000)], false),
            demand(vec![(4096, 0.0)], 1000.0, vec![(1, 1000)], false),
        ];
        let c = ctx(2, 64 * 1000);
        let a = allocate_baseline(PolicyKind::StaticInterleave, &d, &c, 2);
        let t0: u64 = a.streams[0].iter().map(AllocGroup::total).sum();
        let t1: u64 = a.streams[1].iter().map(AllocGroup::total).sum();
        assert!(t0 > t1 * 5);
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let units = 4;
        let cap = 64 * 64;
        let demands: Vec<StreamDemand> = (0..8)
            .map(|i| {
                demand(
                    vec![(64 * 128, 10.0)],
                    10_000.0,
                    vec![(i % units, 500), ((i + 1) % units, 300)],
                    i % 2 == 0,
                )
            })
            .collect();
        let c = ctx(units, cap as u64);
        for policy in PolicyKind::ALL {
            let a = if policy == PolicyKind::NdpExt {
                allocate_ndpext(&demands, &c)
            } else {
                allocate_baseline(policy, &demands, &c, 2)
            };
            let mut per_unit = vec![0u64; units];
            for gs in &a.streams {
                for g in gs {
                    for &(u, b) in &g.unit_bytes {
                        per_unit[u] += b;
                    }
                }
            }
            for (u, &used) in per_unit.iter().enumerate() {
                assert!(used <= cap as u64, "{policy:?} overflows unit {u}: {used} > {cap}");
            }
        }
    }

    #[test]
    fn dead_units_receive_no_capacity_under_any_policy() {
        let units = 4;
        let cap = 64 * 64;
        let demands: Vec<StreamDemand> = (0..6)
            .map(|i| {
                demand(
                    vec![(64 * 128, 10.0)],
                    10_000.0,
                    vec![(i % units, 500), ((i + 1) % units, 300)],
                    i % 2 == 0,
                )
            })
            .collect();
        let mut c = ctx(units, cap as u64);
        c.dead[1] = true;
        for policy in PolicyKind::ALL {
            let a = if policy == PolicyKind::NdpExt {
                allocate_ndpext(&demands, &c)
            } else {
                allocate_baseline(policy, &demands, &c, 2)
            };
            let mut placed_anywhere = 0u64;
            for gs in &a.streams {
                for g in gs {
                    for &(u, b) in &g.unit_bytes {
                        assert!(u != 1 || b == 0, "{policy:?} placed {b} bytes on dead unit 1");
                        placed_anywhere += b;
                    }
                }
            }
            assert!(placed_anywhere > 0, "{policy:?} placed nothing on survivors");
        }
    }

    #[test]
    fn all_alive_mask_matches_the_healthy_allocation() {
        let units = 4;
        let cap = 64 * 64;
        let demands: Vec<StreamDemand> = (0..6)
            .map(|i| {
                demand(
                    vec![(64 * 128, 10.0)],
                    10_000.0,
                    vec![(i % units, 500), ((i + 1) % units, 300)],
                    i % 2 == 0,
                )
            })
            .collect();
        let c = ctx(units, cap as u64);
        for policy in PolicyKind::ALL {
            let run = |ctx: &ConfigCtx| {
                if policy == PolicyKind::NdpExt {
                    allocate_ndpext(&demands, ctx)
                } else {
                    allocate_baseline(policy, &demands, ctx, 2)
                }
            };
            let healthy = run(&c);
            let again = run(&c);
            assert_eq!(healthy.streams, again.streams, "{policy:?} not deterministic");
        }
    }
}
