//! Max-flow sampler assignment (paper §V-B, Fig. 4).
//!
//! Each NDP unit owns `S` miss-curve samplers, and a sampler can only watch a
//! stream that the local unit actually accesses. Covering as many streams as
//! possible is a bipartite matching problem, solved as max-flow with the
//! Edmonds–Karp algorithm on: source → units (capacity `S`) → streams
//! (capacity 1, edge iff accessed) → sink.

use std::collections::VecDeque;

/// A directed flow network on dense node indices.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    nodes: usize,
    /// Edge list: (to, capacity); reverse edges interleaved at `i ^ 1`.
    edges: Vec<(usize, i64)>,
    /// Adjacency: node → edge indices.
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork { nodes, edges: Vec::new(), adj: vec![Vec::new(); nodes] }
    }

    /// Adds a directed edge `from → to` with the given capacity; returns the
    /// edge index (use `flow_on` to read its final flow).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64) -> usize {
        assert!(from < self.nodes && to < self.nodes, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push((to, capacity));
        self.edges.push((from, 0));
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Runs Edmonds–Karp from `source` to `sink`; returns the max flow.
    /// Capacities are consumed in place.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        let mut total = 0;
        loop {
            // BFS for a shortest augmenting path.
            let mut parent_edge = vec![usize::MAX; self.nodes];
            let mut queue = VecDeque::new();
            queue.push_back(source);
            let mut found = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &eid in &self.adj[u] {
                    let (v, cap) = self.edges[eid];
                    if cap > 0 && parent_edge[v] == usize::MAX && v != source {
                        parent_edge[v] = eid;
                        if v == sink {
                            found = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !found {
                return total;
            }
            // Find the bottleneck and augment.
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while v != source {
                let eid = parent_edge[v];
                bottleneck = bottleneck.min(self.edges[eid].1);
                v = self.edges[eid ^ 1].0;
            }
            let mut v = sink;
            while v != source {
                let eid = parent_edge[v];
                self.edges[eid].1 -= bottleneck;
                self.edges[eid ^ 1].1 += bottleneck;
                v = self.edges[eid ^ 1].0;
            }
            total += bottleneck;
        }
    }

    /// Flow pushed through edge `id` (its consumed capacity).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id ^ 1].1
    }
}

/// Result of assigning samplers to streams for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerAssignment {
    /// `stream → Some(unit)` for covered streams.
    pub unit_for_stream: Vec<Option<usize>>,
    /// Number of streams covered.
    pub covered: usize,
}

/// Assigns up to `samplers_per_unit` streams to each unit, maximizing stream
/// coverage. `accessed[u]` lists the stream indices unit `u` touched this
/// epoch (the per-unit bitvector of §V-B).
pub fn assign_samplers(
    accessed: &[Vec<usize>],
    num_streams: usize,
    samplers_per_unit: usize,
) -> SamplerAssignment {
    let units = accessed.len();
    // Nodes: 0 = source, 1..=units, units+1..=units+num_streams, sink last.
    let source = 0;
    let sink = units + num_streams + 1;
    let mut net = FlowNetwork::new(sink + 1);
    for u in 0..units {
        net.add_edge(source, 1 + u, samplers_per_unit as i64);
    }
    let mut stream_unit_edges: Vec<(usize, usize, usize)> = Vec::new();
    for (u, streams) in accessed.iter().enumerate() {
        for &s in streams {
            debug_assert!(s < num_streams, "stream index out of range");
            let eid = net.add_edge(1 + u, 1 + units + s, 1);
            stream_unit_edges.push((eid, u, s));
        }
    }
    for s in 0..num_streams {
        net.add_edge(1 + units + s, sink, 1);
    }
    let covered = net.max_flow(source, sink) as usize;

    let mut unit_for_stream = vec![None; num_streams];
    for &(eid, u, s) in &stream_unit_edges {
        if net.flow_on(eid) > 0 {
            unit_for_stream[s] = Some(u);
        }
    }
    SamplerAssignment { unit_for_stream, covered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_max_flow() {
        // source -> a -> sink and source -> b -> sink, capacities 3 and 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 3);
        net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
    }

    #[test]
    fn paper_fig4_example() {
        // Fig. 4a: unit 0 accesses {0,1}, unit 1 {1,2}, unit 2 {2,3}. With
        // S = 4 samplers, all 4 streams are coverable.
        let accessed = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let a = assign_samplers(&accessed, 4, 4);
        assert_eq!(a.covered, 4);
        for (s, unit) in a.unit_for_stream.iter().enumerate() {
            let u = unit.expect("all covered");
            assert!(accessed[u].contains(&s), "sampler not at an accessing unit");
        }
    }

    #[test]
    fn sampler_budget_is_respected() {
        // One unit with 1 sampler accessing 3 streams: only one covered.
        let accessed = vec![vec![0, 1, 2]];
        let a = assign_samplers(&accessed, 3, 1);
        assert_eq!(a.covered, 1);
        assert_eq!(a.unit_for_stream.iter().flatten().count(), 1);
    }

    #[test]
    fn untouched_streams_stay_unassigned() {
        let accessed = vec![vec![0], vec![0]];
        let a = assign_samplers(&accessed, 2, 4);
        assert_eq!(a.covered, 1);
        assert!(a.unit_for_stream[1].is_none());
    }

    #[test]
    fn scales_to_512_streams() {
        // 64 units × 4 samplers = 256 sampler slots; 512 streams each
        // accessible everywhere: exactly 256 covered.
        let accessed: Vec<Vec<usize>> = (0..64).map(|_| (0..512).collect()).collect();
        let a = assign_samplers(&accessed, 512, 4);
        assert_eq!(a.covered, 256);
    }
}
