//! The NDPExt host-side runtime (paper §V).
//!
//! Every epoch the runtime: (1) assigns the limited per-unit hardware
//! samplers to streams via max-flow ([`maxflow`]); (2) collects the sampled
//! miss curves ([`sampler`]); (3) derives the next cache configuration —
//! sizing, placement, and replication co-optimized — via Algorithm 1
//! ([`configure`]). Baseline NUCA policies reuse the same machinery with
//! their own placement rules.

pub mod configure;
pub mod maxflow;
pub mod sampler;

pub use configure::{
    allocate_baseline, allocate_ndpext, AllocGroup, Allocation, ConfigCtx, StreamDemand,
};
pub use maxflow::{assign_samplers, FlowNetwork, SamplerAssignment};
pub use sampler::{capacity_points, MissCurve, SetSampler};
