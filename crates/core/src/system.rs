//! The full NDP-with-extended-memory system simulator.
//!
//! [`NdpSystem`] assembles the substrates — per-unit DRAM devices, the
//! two-level interconnect, the CXL extended memory, per-core L1s — under one
//! cache-management policy, runs a workload's op streams on the in-order NDP
//! cores, and reports latency/energy breakdowns.
//!
//! ## Access path
//!
//! A memory op from core `c` (co-located with unit `c`):
//!
//! 1. **L1** — hit ends the access.
//! 2. **Metadata** — stream-grain policies probe the SLB (host-refilled on
//!    miss); cacheline-grain baselines probe the SRAM metadata cache and, on
//!    miss, read the in-DRAM tags at the line's home unit (the paper's extra
//!    metadata traffic).
//! 3. **Placement** — the stream's layout maps the key to a replication
//!    group (the one serving this unit) and a `(unit, slot)`.
//! 4. **Data** — affine streams check the SRAM ATA then read DRAM on a hit;
//!    indirect streams read DRAM tag-with-data directly; misses fetch from
//!    extended memory through the serving stack's CXL port and install.
//!
//! ## Control plane
//!
//! Every epoch the runtime assigns samplers (max-flow), reads the sampled
//! miss curves, runs the configuration algorithm for the active policy, and
//! applies the new layout with bulk invalidation or consistent-hash
//! transfer (§V-D).

use ndpx_cache::setassoc::SetAssocCache;
use ndpx_cache::tagarray::TagArray;
use ndpx_cxl::{CxlFault, ExtendedMemory};
use ndpx_mem::device::{DramDevice, EccOutcome, MemFault};
use ndpx_noc::network::{Network, NocFault};
use ndpx_noc::topology::UnitId;
use ndpx_sim::chaos::{ChaosEvent, ChaosKind, ChaosPlan};
use ndpx_sim::energy::Power;
use ndpx_sim::engine::{
    batching_from_env, BatchStats, EventQueue, ProgressWatchdog, QueueStats, BATCH_CAP,
};
use ndpx_sim::fastdiv::Divisor;
use ndpx_sim::fault::domain;
use ndpx_sim::stats::Histogram;
use ndpx_sim::telemetry::log::{enabled, Level};
use ndpx_sim::telemetry::{
    Phase, PhaseProfiler, ProfileSpan, StatRegistry, StatScope, TimelineSampler, TraceSink,
};
use ndpx_sim::time::Time;
use ndpx_sim::{ndpx_debug, ndpx_info, ndpx_trace, ndpx_warn};
use ndpx_stream::{StreamId, StreamTable};
use ndpx_workloads::trace::{MemRef, Op, Workload};

use crate::config::{PolicyKind, ReconfigTransfer, SystemConfig};
use crate::desc::{DescParams, StreamDesc};
use crate::layout::{Group, StreamLayout};
use crate::runtime::configure::{
    allocate_baseline, allocate_ndpext, Allocation, ConfigCtx, StreamDemand,
};
use crate::runtime::maxflow::assign_samplers;
use crate::runtime::sampler::{capacity_points, MissCurve, SetSampler};
use crate::stats::{Breakdown, EnergyBreakdown, LatComponent, RunReport};

/// L1 hit/probe latency, core cycles.
const L1_CYCLES: u64 = 2;
/// SLB probe latency, core cycles.
const SLB_CYCLES: u64 = 1;
/// ATA / metadata-cache SRAM probe latency, core cycles.
const SRAM_TAG_CYCLES: u64 = 2;
/// Core restart after a memory response, cycles.
const RESTART_CYCLES: u64 = 1;
/// Penalty charged to the writing core when a read-only stream transitions
/// to read-write (host exception + replica invalidation, §IV-B).
const RO_TRANSITION_PENALTY: Time = Time::from_us(5);
/// Static power per in-order NDP core (logic-die share).
const CORE_STATIC: Power = Power::from_mw(50.0);
/// Request message size on the NoC.
const REQ_BYTES: u32 = 16;
/// Response/data message size granularity.
const LINE_BYTES: u32 = 64;

struct SamplerSlot {
    unit: usize,
    sampler: SetSampler,
}

/// Epoch-level service telemetry: per-epoch access-latency percentiles,
/// placement staleness, and reconfiguration downtime (the `slo.*` scope).
///
/// Tracking is active only while the system has a time-resolved consumer
/// attached (timeline sampler or phase profiler). Otherwise [`record`]
/// (Self::record) is one dead branch per memory op and the `slo.*` scope is
/// absent from registry dumps, so default runs stay byte-identical.
#[derive(Debug, Default)]
struct SloTracker {
    enabled: bool,
    /// Access-latency distribution of the epoch in progress.
    epoch_hist: Histogram,
    /// Epochs closed so far.
    epochs: u64,
    /// Percentiles of the last closed epoch (bucket floors).
    last_p50: Time,
    last_p95: Time,
    last_p99: Time,
    /// Worst per-epoch p99 over the run.
    worst_p99: Time,
    /// Staleness measured at the last epoch boundary.
    last_staleness: Time,
    /// Worst placement staleness observed at any epoch boundary.
    worst_staleness: Time,
    /// Simulated time of the last *applied* reconfiguration.
    last_applied: Time,
    /// Cumulative migration-drain span across applied reconfigurations.
    downtime: Time,
}

impl SloTracker {
    /// Feeds one post-L1 access latency into the current epoch.
    #[inline]
    fn record(&mut self, lat: Time) {
        if self.enabled {
            self.epoch_hist.record(lat);
        }
    }

    /// Closes the epoch ending at `t`: captures the percentiles and the
    /// placement staleness (time since the last applied reconfiguration),
    /// then resets the per-epoch histogram.
    fn close_epoch(&mut self, t: Time) {
        self.epochs += 1;
        self.last_p50 = self.epoch_hist.p50();
        self.last_p95 = self.epoch_hist.p95();
        self.last_p99 = self.epoch_hist.p99();
        self.worst_p99 = self.worst_p99.max(self.last_p99);
        self.last_staleness = t.saturating_sub(self.last_applied);
        self.worst_staleness = self.worst_staleness.max(self.last_staleness);
        self.epoch_hist = Histogram::new();
    }

    /// Records an applied reconfiguration at `t` whose migration traffic
    /// drains over `drain`.
    fn applied(&mut self, t: Time, drain: Time) {
        self.last_applied = t;
        self.downtime += drain;
    }

    /// Publishes the `slo.*` nodes; `now` anchors the staleness gauge.
    fn register(&self, scope: &mut StatScope<'_>, now: Time) {
        scope.count("epochs", self.epochs);
        scope.gauge("epoch_p50_ns", self.last_p50.as_ns() as f64);
        scope.gauge("epoch_p95_ns", self.last_p95.as_ns() as f64);
        scope.gauge("epoch_p99_ns", self.last_p99.as_ns() as f64);
        scope.gauge("worst_p99_ns", self.worst_p99.as_ns() as f64);
        scope.gauge("staleness_ns", now.saturating_sub(self.last_applied).as_ns() as f64);
        scope.gauge("worst_staleness_ns", self.worst_staleness.as_ns() as f64);
        scope.count("downtime_ns", self.downtime.as_ns());
    }
}

/// Per-event recovery record (`fault.recovery.e##.*`). `applied` guards
/// registration: events the run never reached publish nothing.
#[derive(Debug, Clone, Default)]
struct RecoveryRecord {
    applied: bool,
    /// Simulated time the failure hit.
    at: Time,
    /// Time-to-recover: from the failure hitting until the escalation
    /// completed — the forced re-placement's migration drain for permanent
    /// losses, the full loss window plus the restore's drain for windowed
    /// ones, the outage window for CXL link-down.
    ttr: Time,
    /// Streams whose cached data the event destroyed (poisoned and
    /// re-placed on the survivors).
    streams_migrated: u64,
    /// Trace ops aborted on the dead cores.
    ops_aborted: u64,
}

/// Chaos escalation state; allocated only when the configuration schedules
/// at least one hard failure, so chaos-off runs keep every hot path's ideal
/// shape.
#[derive(Debug)]
struct ChaosState {
    plan: ChaosPlan,
    /// Pending restores of windowed failures, sorted by (time, event id).
    restores: Vec<(Time, usize, ChaosKind)>,
    /// Per-unit death mask, mirrored into [`ConfigCtx::dead`] so the
    /// placement algorithms see zero capacity on lost stacks.
    dead_units: Vec<bool>,
    records: Vec<RecoveryRecord>,
    applied: u64,
    restored: u64,
    ops_aborted: u64,
    streams_poisoned: u64,
    forced_reconfigs: u64,
    /// Integral of the dead-unit count over sim time (unit·ps), feeding the
    /// availability gauge.
    dead_unit_ps: u64,
    /// When the death mask last changed (closes the integral).
    mask_changed: Time,
}

impl ChaosState {
    fn new(plan: ChaosPlan, units: usize) -> Self {
        ChaosState {
            records: vec![RecoveryRecord::default(); plan.len()],
            plan,
            restores: Vec::new(),
            dead_units: vec![false; units],
            applied: 0,
            restored: 0,
            ops_aborted: 0,
            streams_poisoned: 0,
            forced_reconfigs: 0,
            dead_unit_ps: 0,
            mask_changed: Time::ZERO,
        }
    }

    fn dead_count(&self) -> u64 {
        self.dead_units.iter().filter(|&&d| d).count() as u64
    }

    /// Closes the dead-unit integral at `now`; call before mutating the
    /// death mask.
    fn integrate_to(&mut self, now: Time) {
        let span = now.saturating_sub(self.mask_changed);
        self.dead_unit_ps += self.dead_count() * span.as_ps();
        self.mask_changed = now;
    }

    /// Fraction of unit·time lost to dead units up to `now` (0.0 healthy).
    fn unavailability(&self, now: Time) -> f64 {
        let denom = (self.dead_units.len() as u64).saturating_mul(now.as_ps());
        if denom == 0 {
            return 0.0;
        }
        let open = self.dead_count() * now.saturating_sub(self.mask_changed).as_ps();
        (self.dead_unit_ps + open) as f64 / denom as f64
    }
}

/// The NDP system simulator.
pub struct NdpSystem {
    cfg: SystemConfig,
    table: StreamTable,
    source: Box<dyn ndpx_workloads::trace::OpSource>,
    workload_name: &'static str,
    net: Network,
    ext: ExtendedMemory,
    // Hot per-unit device state in struct-of-arrays form: each access-path
    // stage walks exactly one of these parallel vectors (all indexed by
    // unit), instead of striding over one wide per-unit struct and dragging
    // the cold members through the cache with it.
    /// Per-unit DRAM devices.
    drams: Vec<DramDevice>,
    /// Per-core L1 data caches.
    l1s: Vec<SetAssocCache>,
    /// Per-unit SLBs: fully-associative over stream IDs.
    slbs: Vec<SetAssocCache>,
    /// Baselines' per-unit SRAM metadata caches over 512 B regions.
    metas: Vec<SetAssocCache>,
    /// Per-(stream, unit) tag arrays for each unit's DRAM cache region,
    /// stream-major: `tags[si * units + u]`, so one stream's arrays across
    /// all units are one contiguous row.
    tags: Vec<Option<TagArray>>,
    layouts: Vec<StreamLayout>,
    /// Per-stream hot-path descriptors, indexed by `StreamId`; immutable
    /// for a run (grain/key/fetch math depends only on the stream config
    /// and the policy).
    descs: Vec<StreamDesc>,
    attenuation: Vec<Vec<f64>>,
    /// Uncontended unit-to-unit latency in picoseconds (64 B message),
    /// row-major flat: `distance[src * units + dst]`.
    distance: Vec<u64>,
    /// Per unit pair: `(intra_weight, total_weight)` picosecond hop-time
    /// weights for splitting a NoC duration between the intra/inter
    /// latency components without re-deriving hop counts. Row-major flat,
    /// same indexing as `distance`.
    noc_weights: Vec<(u64, u64)>,
    // Epoch state.
    next_epoch: Time,
    /// Per-(stream, unit) access counts for the current epoch, stream-major
    /// flat: `acc_counts[si * units + u]`.
    acc_counts: Vec<u64>,
    /// Exponentially-weighted access history (halved each epoch, current
    /// counts added): smooths phase behaviour that is shorter than an epoch
    /// so the allocator keeps capacity for streams between their bursts.
    /// Same flat layout as `acc_counts`.
    acc_history: Vec<u64>,
    samplers: Vec<Option<SamplerSlot>>,
    prev_curves: Vec<Option<MissCurve>>,
    // Statistics.
    mem_ops: u64,
    l1_hits: u64,
    cache_hits: u64,
    cache_misses: u64,
    local_hits: u64,
    bypass: u64,
    slb_misses: u64,
    metadata_dram: u64,
    breakdown: Breakdown,
    reconfigs: u64,
    invalidations: u64,
    migrations: u64,
    /// Poisoned-data stream aborts: cached-copy invalidation + refetch
    /// events triggered by uncorrectable ECC errors.
    stream_aborts: u64,
    replicated_fraction: f64,
    /// End-to-end latency distribution of post-L1 memory accesses.
    access_latency: Histogram,
    /// Run-ahead batching enabled (`NDPX_BATCH`, overridable per system
    /// via [`set_batching`](Self::set_batching)). Purely a performance
    /// switch: results are bit-identical either way.
    batch: bool,
    /// Run-loop batch telemetry (`engine.batch.*`).
    batch_stats: BatchStats,
    /// Strength-reduced `/ cfg.line_bytes` (every op computes its line).
    line_div: Divisor,
    /// Strength-reduced `/ cfg.metadata_block` (per line-grain miss).
    meta_div: Divisor,
    /// Progress-watchdog stall diagnostics observed during the run.
    stalls: u64,
    /// Log-facade gates cached at construction so the hot paths pay one
    /// boolean test instead of an atomic load per access.
    trace_noc: bool,
    trace_alloc: bool,
    /// Opt-in Chrome-trace exporter (`NDPX_TRACE`); `None` costs one branch
    /// per recording site.
    trace: Option<Box<TraceSink>>,
    /// Opt-in windowed timeline sampler (`NDPX_TIMELINE`); `None` costs one
    /// branch per scheduler pop.
    timeline: Option<Box<TimelineSampler>>,
    /// Opt-in sim-phase profiler (`NDPX_PROFILE`); phase boundaries are
    /// per-epoch, so the hot path never sees it.
    profile: Option<Box<PhaseProfiler>>,
    /// Epoch SLO stats; active only while a time-resolved consumer is
    /// attached (see [`SloTracker`]).
    slo: SloTracker,
    /// Hard-failure escalation state (`NDPX_CHAOS`); `None` whenever the
    /// schedule is empty, keeping chaos-off runs byte-identical.
    chaos: Option<Box<ChaosState>>,
}

impl NdpSystem {
    /// Builds the system for one workload.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid or the workload was
    /// generated for a different core count.
    pub fn new(cfg: SystemConfig, workload: Workload) -> Result<Self, String> {
        cfg.validate()?;
        if workload.cores != cfg.units() {
            return Err(format!(
                "workload built for {} cores but system has {} units",
                workload.cores,
                cfg.units()
            ));
        }
        let units_n = cfg.units();
        let (intra, inter) = cfg.link_params();
        let net = Network::new(cfg.topology, intra, inter);

        let desc_params = DescParams {
            stream_grain: cfg.policy.is_stream_grain(),
            affine_block: cfg.affine_block,
            line_bytes: cfg.line_bytes,
        };
        let descs: Vec<StreamDesc> =
            workload.table.iter().map(|s| StreamDesc::build(*s, desc_params)).collect();

        let stream_count = workload.table.len();
        let drams = (0..units_n).map(|_| DramDevice::new(cfg.dram_config())).collect();
        let l1s = (0..units_n)
            .map(|_| SetAssocCache::with_capacity(cfg.l1_bytes, cfg.line_bytes, cfg.l1_ways))
            .collect();
        let slbs = (0..units_n).map(|_| SetAssocCache::new(1, cfg.slb_entries)).collect();
        let metas = (0..units_n)
            .map(|_| SetAssocCache::with_capacity(cfg.metadata_cache_bytes, 8, 8))
            .collect();
        let tags = (0..stream_count * units_n).map(|_| None).collect();

        let mut sys = NdpSystem {
            ext: ExtendedMemory::new(cfg.cxl, cfg.ext_capacity),
            net,
            drams,
            l1s,
            slbs,
            metas,
            tags,
            layouts: Vec::new(),
            descs,
            attenuation: Vec::new(),
            distance: Vec::new(),
            noc_weights: Vec::new(),
            next_epoch: cfg.epoch(),
            acc_counts: vec![0; stream_count * units_n],
            acc_history: vec![0; stream_count * units_n],
            samplers: (0..stream_count).map(|_| None).collect(),
            prev_curves: vec![None; stream_count],
            table: workload.table,
            source: workload.source,
            workload_name: workload.name,
            line_div: Divisor::new(cfg.line_bytes.max(1)),
            meta_div: Divisor::new(cfg.metadata_block.max(1)),
            cfg,
            mem_ops: 0,
            l1_hits: 0,
            cache_hits: 0,
            cache_misses: 0,
            local_hits: 0,
            bypass: 0,
            slb_misses: 0,
            metadata_dram: 0,
            breakdown: Breakdown::default(),
            reconfigs: 0,
            invalidations: 0,
            migrations: 0,
            stream_aborts: 0,
            replicated_fraction: 0.0,
            access_latency: Histogram::new(),
            batch: batching_from_env(),
            batch_stats: BatchStats::default(),
            stalls: 0,
            trace_noc: enabled(Level::Trace),
            trace_alloc: enabled(Level::Debug),
            trace: TraceSink::from_env().map(Box::new),
            timeline: TimelineSampler::from_env().map(Box::new),
            profile: PhaseProfiler::from_env().map(Box::new),
            slo: SloTracker::default(),
            chaos: None,
        };
        sys.slo.enabled = sys.timeline.is_some() || sys.profile.is_some();
        sys.rebuild_noc_matrices();
        // Hard-failure schedule: a sim-time cursor over the validated chaos
        // plan. With no events scheduled the option stays `None` and every
        // hot path keeps its ideal shape.
        if sys.cfg.chaos.enabled() {
            sys.ext.set_outage_retry(sys.cfg.chaos.retry);
            sys.chaos = Some(Box::new(ChaosState::new(ChaosPlan::new(&sys.cfg.chaos), units_n)));
        }
        // Deterministic fault injection: each device derives an independent
        // decision plan from (master seed, domain, instance), so schedules
        // are reproducible regardless of harness thread count. With the
        // seed unset every `plan` is `None` and all devices keep the ideal
        // fault-free path bit-for-bit.
        let fcfg = sys.cfg.fault;
        sys.ext.set_fault(fcfg.plan(domain::CXL, 0).map(|p| CxlFault::new(p, fcfg.cxl_ber)));
        sys.net.set_fault(fcfg.plan(domain::NOC, 0).map(|p| NocFault::new(p, fcfg.noc_fer)));
        for (u, dram) in sys.drams.iter_mut().enumerate() {
            dram.set_fault(
                fcfg.plan(domain::MEM, u as u64)
                    .map(|p| MemFault::new(p, fcfg.mem_ce, fcfg.mem_ue)),
            );
        }
        // Warmup configuration: every policy starts from the equal static
        // allocation and (if it reconfigures) adapts at the first epoch.
        // ndpx-lint: allow(det-wallclock): profiler wall span; dumps carry sim time only
        let warmup_start = std::time::Instant::now();
        let demands = sys.collect_demands(true);
        let alloc = allocate_baseline(
            if sys.cfg.policy.is_stream_grain() {
                PolicyKind::NdpExtStatic
            } else {
                sys.cfg.policy.pick_warmup()
            },
            &demands,
            &sys.config_ctx(),
            sys.cfg.nexus_degree,
        );
        sys.apply_allocation(&alloc, Time::ZERO);
        sys.assign_epoch_samplers();
        if let Some(p) = sys.profile.as_deref_mut() {
            p.add(Phase::Warmup, warmup_start.elapsed(), Time::ZERO);
        }
        Ok(sys)
    }

    /// Attaches (or, with `None`, detaches) a Chrome-trace exporter,
    /// overriding whatever `NDPX_TRACE` configured at construction. Lets
    /// tests and embedders enable tracing without touching the process
    /// environment.
    pub fn set_trace(&mut self, cfg: Option<ndpx_sim::telemetry::TraceConfig>) {
        self.trace = cfg.map(|c| Box::new(TraceSink::new(c)));
    }

    /// Attaches (or, with `None`, detaches) a windowed timeline sampler,
    /// overriding whatever `NDPX_TIMELINE` configured at construction. Also
    /// switches epoch SLO tracking, which feeds the timeline's `slo.*`
    /// series.
    pub fn set_timeline(&mut self, cfg: Option<ndpx_sim::telemetry::TimelineConfig>) {
        self.timeline = cfg.map(|c| Box::new(TimelineSampler::new(c)));
        self.sync_slo();
    }

    /// Enables or disables the sim-phase profiler, overriding whatever
    /// `NDPX_PROFILE` configured at construction. Phases that already ran
    /// (warmup happens inside [`new`](Self::new)) are not retroactively
    /// attributed.
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on.then(|| Box::new(PhaseProfiler::new()));
        self.sync_slo();
    }

    /// Attributes an externally timed phase (e.g. trace generation in the
    /// bench harness) to this system's profiler, if one is attached.
    pub fn record_phase(&mut self, phase: Phase, wall: std::time::Duration) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.add(phase, wall, Time::ZERO);
        }
    }

    fn sync_slo(&mut self) {
        self.slo.enabled = self.timeline.is_some() || self.profile.is_some();
    }

    fn config_ctx(&self) -> ConfigCtx {
        let dram_lat = self.cfg.dram_config().timing.row_empty().as_ps() as f64;
        let mut ext_lat = 2.0 * self.cfg.cxl.link_latency.as_ps() as f64
            + ndpx_mem::timing::DramTiming::ddr5_4800().row_empty().as_ps() as f64;
        if self.ext.fault_enabled() || self.chaos.is_some() {
            // Placement feedback: CRC replays, retrains, and chaos outage
            // stalls raise the effective miss penalty, so the configuration
            // algorithm shifts streams toward stack-local DRAM while the
            // link is degraded. `degradation()` is exactly 1.0 with nothing
            // degraded, so a chaos run allocates identically to the healthy
            // path until its first event fires.
            ext_lat *= self.ext.degradation();
        }
        ConfigCtx {
            units: self.cfg.units(),
            unit_capacity: self.cfg.unit_capacity,
            affine_cap: self.cfg.affine_cap.min(self.cfg.unit_capacity),
            attenuation: self.attenuation.clone(),
            dram_lat_ps: dram_lat,
            miss_extra_ps: ext_lat,
            dead: self
                .chaos
                .as_deref()
                .map_or_else(|| vec![false; self.cfg.units()], |cs| cs.dead_units.clone()),
        }
    }

    /// Enables or disables run-ahead batching for this system, overriding
    /// whatever `NDPX_BATCH` configured at construction. Batching is
    /// bit-identical to the per-op loop (see [`run`](Self::run)); this
    /// exists so differential tests can compare both paths in one process.
    pub fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    /// Runs `ops_per_core` trace operations on every core; returns the
    /// report. Can be called once per system.
    ///
    /// Cores are scheduled through [`EventQueue`] with the core index as
    /// the equal-time tiebreak (lower core first). When a core is popped
    /// at time `t` the loop *runs ahead*: it keeps executing that core's
    /// ops in a tight inner loop for as long as each completion stays
    /// strictly below both the queue's minimum pending time and the next
    /// epoch boundary. Inside that window no other core (and no epoch
    /// action) can be scheduled, so shared state is touched in exactly
    /// the per-op order and results are bit-identical — the queue
    /// round-trip, epoch check, and watchdog observation are simply
    /// amortized over the batch. A batch ends by landing on or past the
    /// window (re-entering through the fused `push_pop`, whose tiebreak
    /// resolves equal times identically), by exhausting the core's ops,
    /// or at [`BATCH_CAP`] (a liveness bound for the watchdog).
    pub fn run(&mut self, ops_per_core: u64) -> RunReport {
        self.run_with_watchdog(ops_per_core, ProgressWatchdog::from_env())
    }

    /// [`run`](Self::run) with an explicit progress watchdog (tests inject
    /// small limits; the environment default is `NDPX_STALL_ITERS`).
    pub fn run_with_watchdog(
        &mut self,
        ops_per_core: u64,
        mut watchdog: ProgressWatchdog,
    ) -> RunReport {
        let cores = self.cfg.units();
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut remaining: Vec<u64> = vec![ops_per_core; cores];
        for c in 0..cores {
            queue.push_ranked(Time::ZERO, c as u64, c);
        }
        let mut makespan = Time::ZERO;
        let mut total_ops = 0u64;
        // The profiler rides outside `self` for the duration of the loop so
        // `reconfigure` can time its sub-phases while the rest of the system
        // is mutably borrowed.
        let mut profile = self.profile.take();
        // ndpx-lint: allow(det-wallclock): profiler wall span; dumps carry sim time only
        let run_start = std::time::Instant::now();

        let mut next = queue.pop();
        while let Some((mut t, core)) = next {
            if let Some(stall) = watchdog.observe(t, queue.len()) {
                self.stalls += 1;
                ndpx_warn!(
                    "engine deadlock suspected in {:?}/{} while serving core {core}: {stall}",
                    self.cfg.policy,
                    self.workload_name
                );
            }
            // Boundary actions in simulated-time order: due chaos events
            // (and restores of windowed failures) interleave with epoch
            // reconfigurations. Ties go to chaos so a failure landing
            // exactly on an epoch boundary escalates before the regular
            // reconfiguration runs; with no chaos configured this loop is
            // exactly the historical epoch advance.
            loop {
                let due_chaos = self.chaos_next_at().filter(|&c| c <= t && c <= self.next_epoch);
                if let Some(c) = due_chaos {
                    self.apply_next_chaos(c, &mut remaining);
                } else if t >= self.next_epoch {
                    let at = self.next_epoch;
                    self.reconfigure(at, profile.as_deref_mut());
                    self.next_epoch = at + self.cfg.epoch();
                } else {
                    break;
                }
            }
            // A chaos-killed core surfaces here with no ops left: retire it
            // without touching the op source (its trace was aborted).
            if remaining[core] == 0 {
                next = queue.pop();
                continue;
            }
            // Timeline boundary: snapshot the cumulative state strictly
            // before processing the first event at or past it. Sim-order
            // only, so timelines are identical at any thread count.
            if self.timeline.as_deref().is_some_and(|tl| tl.due(t)) {
                let snap = self.timeline_snapshot(queue.len() as u64, t);
                if let Some(tl) = self.timeline.as_deref_mut() {
                    tl.record(t, snap);
                }
            }
            // Run-ahead window: completions strictly below it cannot
            // interleave with any pending event or epoch boundary. With
            // batching off the window is ZERO, so every completion exits
            // the inner loop — the historical per-op behaviour.
            let window = if self.batch {
                let base = queue.peek_time().map_or(self.next_epoch, |m| m.min(self.next_epoch));
                // Clamp run-ahead to the next chaos boundary so no batch
                // skips a scheduled failure or restore.
                let base = match self.chaos_next_at() {
                    Some(c) => base.min(c),
                    None => base,
                };
                // Clamp run-ahead to the next timeline boundary so windows
                // close on time. Batching stays bit-identical — batches just
                // end earlier when a boundary is near.
                match self.timeline.as_deref() {
                    Some(tl) => base.min(tl.next_boundary()),
                    None => base,
                }
            } else {
                Time::ZERO
            };
            let fast0 = self.l1_hits;
            let mut batch_len = 0u64;
            loop {
                let op = self.source.next_op(core);
                let is_mem = !matches!(op, Op::Compute(_));
                let done = match op {
                    Op::Compute(cycles) => t + self.cfg.core_freq.cycles_to_time(u64::from(cycles)),
                    Op::Mem(m) => self.process_mem(core, m, t),
                    Op::RawMem { addr, write } => self.process_raw(core, addr, write, t),
                };
                if is_mem {
                    let lat = done.saturating_sub(t);
                    self.access_latency.record(lat);
                    self.slo.record(lat);
                    if let Some(tr) = self.trace.as_deref_mut() {
                        if tr.in_window(t) {
                            tr.complete("engine", "mem_op", core as u32, t, lat);
                        }
                    }
                }
                batch_len += 1;
                makespan = makespan.max(done);
                remaining[core] -= 1;
                if remaining[core] == 0 {
                    next = queue.pop();
                    break;
                }
                if done < window && batch_len < BATCH_CAP {
                    t = done;
                    continue;
                }
                next = Some(queue.push_pop_ranked(done, core as u64, core));
                break;
            }
            total_ops += batch_len;
            self.batch_stats.record(batch_len, self.l1_hits - fast0);
        }

        if let Some(p) = profile.as_deref_mut() {
            p.add(Phase::Run, run_start.elapsed(), makespan);
        }
        self.profile = profile;
        // Close the trailing timeline window on the end-of-run state and
        // write the file under a stable per-cell name.
        if self.timeline.is_some() {
            let snap = self.timeline_snapshot(queue.len() as u64, makespan);
            if let Some(mut tl) = self.timeline.take() {
                tl.finish(snap);
                let label = self.cell_label();
                match tl.write(&label) {
                    Ok(path) => ndpx_info!("timeline for {label} written to {}", path.display()),
                    Err(e) => ndpx_warn!("failed to write timeline for {label}: {e}"),
                }
            }
        }

        let report = self.report(makespan, total_ops, &queue.stats());
        if let Some(mut tr) = self.trace.take() {
            if let Some(p) = self.profile.as_deref() {
                p.export_trace(&mut tr, 0, makespan);
            }
            let label = format!("{:?}/{}", self.cfg.policy, self.workload_name);
            match tr.write(&label) {
                Ok(path) => ndpx_info!("trace for {label} written to {}", path.display()),
                Err(e) => ndpx_warn!("failed to write trace for {label}: {e}"),
            }
        }
        report
    }

    /// Stable per-cell label — memory kind, policy, workload — used for
    /// deterministically named timeline files (one per bench-matrix cell).
    fn cell_label(&self) -> String {
        format!("{:?}-{:?}-{}", self.cfg.mem_kind, self.cfg.policy, self.workload_name)
    }

    /// Cumulative registry snapshot for one timeline window. Restricted to
    /// values that are a pure function of simulated event order — never
    /// queue-backend internals like wheel bucket occupancy — so timelines
    /// are byte-identical across thread counts and event-queue backends.
    fn timeline_snapshot(&self, queue_depth: u64, now: Time) -> StatRegistry {
        let mut reg = StatRegistry::new();
        {
            let mut engine = reg.scope("engine");
            engine.gauge("queue.depth", queue_depth as f64);
            let b = &self.batch_stats;
            let mut batch = engine.scope("batch");
            batch.count("batches", b.batches);
            batch.count("ops", b.ops);
            batch.count("fast_hits", b.fast_hits);
            batch.gauge("fast_hit_ratio", b.fast_hit_ratio());
        }
        {
            let mut core = reg.scope("core");
            core.count("mem_ops", self.mem_ops);
            core.count("l1_hits", self.l1_hits);
            core.count("cache_hits", self.cache_hits);
            core.count("cache_misses", self.cache_misses);
            core.count("reconfigs", self.reconfigs);
            core.count("invalidations", self.invalidations);
            core.count("migrations", self.migrations);
        }
        self.net.register_stats(&mut reg.scope("noc"));
        {
            let mut cxl = reg.scope("cxl");
            self.ext.register_stats(&mut cxl);
            cxl.gauge("degradation", self.ext.degradation());
        }
        self.register_fault_scope(&mut reg);
        self.register_chaos_scope(&mut reg, now);
        if self.slo.enabled {
            let mut slo = reg.scope("slo");
            self.slo.register(&mut slo, now);
            slo.count("streams.poisoned", self.table.poisoned_streams());
            slo.count("streams.refetched", self.table.poison_events());
        }
        reg
    }

    fn cycles(&self, n: u64) -> Time {
        self.cfg.core_freq.cycles_to_time(n)
    }

    /// Index into the flat stream-major `(stream × unit)` matrices
    /// (`tags`, `acc_counts`, `acc_history`).
    #[inline]
    fn su(&self, si: usize, unit: usize) -> usize {
        si * self.l1s.len() + unit
    }

    /// Splits a NoC duration between the intra/inter components by the
    /// uncontended hop-time ratio (weights precomputed per unit pair).
    fn charge_noc(&mut self, src: usize, dst: usize, dur: Time) {
        if dur.is_zero() || src == dst {
            return;
        }
        if self.trace_noc {
            Self::trace_slow_leg(src, dst, dur);
        }
        let (iw, total_w) = self.noc_weights[src * self.l1s.len() + dst];
        let intra_part = Time::from_ps(dur.as_ps() * iw / total_w);
        self.breakdown.add(LatComponent::NocIntra, intra_part);
        self.breakdown.add(LatComponent::NocInter, dur - intra_part);
    }

    #[cold]
    fn trace_slow_leg(src: usize, dst: usize, dur: Time) {
        if dur > Time::from_ns(500) {
            ndpx_trace!("slow noc leg {src}->{dst}: {dur}");
        }
    }

    #[cold]
    fn trace_msg(kind: &str, unit: usize, port: usize, t: Time) {
        ndpx_trace!("msg {kind} {unit}->{port} at {t}");
    }

    /// The CXL port unit of `unit`'s stack (multi-headed device: one head
    /// per stack at local index 0).
    fn port_of(&self, unit: usize) -> usize {
        self.cfg.topology.stack_of(UnitId(unit)) * self.cfg.topology.units_per_stack()
    }

    /// Accesses extended memory from `unit` at `t`; returns the response
    /// time at `unit`. NoC legs are charged to the NoC components, the CXL
    /// round trip to `ExtMem`.
    fn ext_access(&mut self, unit: usize, addr: u64, bytes: u32, write: bool, t: Time) -> Time {
        let port = self.port_of(unit);
        if self.trace_noc {
            Self::trace_msg("ext_req", unit, port, t);
        }
        let t1 = self.net.send(UnitId(unit), UnitId(port), REQ_BYTES, t);
        self.charge_noc(unit, port, t1 - t);
        let t2 = self.ext.access(addr, bytes, write, t1);
        self.breakdown.add(LatComponent::ExtMem, t2 - t1);
        let t3 = self.net.send(UnitId(port), UnitId(unit), bytes.max(REQ_BYTES), t2);
        self.charge_noc(port, unit, t3 - t2);
        if let Some(tr) = self.trace.as_deref_mut() {
            if tr.in_window(t) {
                tr.complete("noc", "ext_req", unit as u32, t, t1 - t);
                tr.complete("cxl", "ext_access", port as u32, t1, t2 - t1);
                tr.complete("noc", "ext_rsp", port as u32, t2, t3 - t2);
            }
        }
        t3
    }

    /// Non-blocking extended-memory write (writebacks): reserves resources
    /// without delaying the caller.
    fn ext_writeback(&mut self, unit: usize, addr: u64, bytes: u32, t: Time) {
        let port = self.port_of(unit);
        if self.trace_noc {
            Self::trace_msg("ext_wb", unit, port, t);
        }
        let t1 = self.net.send(UnitId(unit), UnitId(port), bytes.max(REQ_BYTES), t);
        self.ext.access(addr, bytes, true, t1);
    }

    fn process_raw(&mut self, core: usize, addr: u64, write: bool, t: Time) -> Time {
        self.mem_ops += 1;
        let t = t + self.cycles(L1_CYCLES);
        let line = self.line_div.div(addr);
        if self.l1s[core].access(line, write).is_hit() {
            self.l1_hits += 1;
            return t;
        }
        self.breakdown.add(LatComponent::CoreL1, self.cycles(L1_CYCLES));
        // Not a stream: bypass the DRAM cache (§IV-C).
        self.bypass += 1;
        let done = self.ext_access(core, addr, LINE_BYTES, write, t);
        done + self.cycles(RESTART_CYCLES)
    }

    /// One memory op. The body is only the slim L1 probe — the common
    /// L1-hit case returns after a cache lookup and two counter bumps, and
    /// inlines into the run loop's batch so a hit never pays a call or the
    /// general dispatch below. Everything past the L1 lives out-of-line in
    /// [`process_mem_miss`](Self::process_mem_miss), in exactly the
    /// historical order (so the split cannot move a single shared-state
    /// mutation).
    #[inline]
    fn process_mem(&mut self, core: usize, m: MemRef, t: Time) -> Time {
        self.mem_ops += 1;
        let addr = self.descs[m.sid.index()].addr_of_elem(m.elem);
        let now = t + self.cycles(L1_CYCLES);

        // L1.
        let line = self.line_div.div(addr);
        match self.l1s[core].access(line, m.write) {
            ndpx_cache::setassoc::Outcome::Hit => {
                self.l1_hits += 1;
                now
            }
            ndpx_cache::setassoc::Outcome::Miss { evicted } => {
                // Copy out the cached descriptor only on the miss path:
                // everything it needs (grain, key math, fetch size)
                // without re-consulting the table, while the dominant hit
                // path above stays copy-free.
                let desc = self.descs[m.sid.index()];
                self.process_mem_miss(core, m, desc, addr, evicted, now)
            }
        }
    }

    /// The post-L1 continuation of [`process_mem`](Self::process_mem):
    /// metadata, placement, and data paths.
    #[inline(never)]
    fn process_mem_miss(
        &mut self,
        core: usize,
        m: MemRef,
        desc: StreamDesc,
        addr: u64,
        evicted: Option<(u64, bool)>,
        mut now: Time,
    ) -> Time {
        self.breakdown.add(LatComponent::CoreL1, self.cycles(L1_CYCLES));
        if let Some((victim_line, true)) = evicted {
            // Dirty L1 writeback: fire-and-forget store into the
            // cache hierarchy.
            let victim_addr = victim_line * self.cfg.line_bytes;
            self.writeback_line(core, victim_addr, now);
        }

        // Epoch accounting + sampling happen at DRAM-cache level.
        let key = desc.key_of(m.elem, addr);
        let su = self.su(m.sid.index(), core);
        self.acc_counts[su] += 1;
        if let Some(slot) = &mut self.samplers[m.sid.index()] {
            // The sampler monitors sets of the distributed cache, which see
            // the whole system's (hashed) access mix — not just accesses
            // issued by the sampler's own unit (§V-A: sampled misses are
            // scaled by K/k over the stream's *total* sets).
            slot.sampler.observe(key);
        }

        // Read-only → read-write transition (§IV-B).
        if m.write && self.table.get(m.sid).read_only && self.table.mark_written(m.sid) {
            now += self.handle_ro_transition(m.sid);
        }

        // Metadata path.
        let sid_i = m.sid.index();
        let located = self.layouts[sid_i].locate(core, key);
        if self.cfg.policy.is_stream_grain() {
            now += self.cycles(SLB_CYCLES);
            self.breakdown.add(LatComponent::Metadata, self.cycles(SLB_CYCLES));
            if !self.slbs[core].access(sid_i as u64, false).is_hit() {
                self.slb_misses += 1;
                now += self.cfg.slb_miss_penalty;
                self.breakdown.add(LatComponent::Metadata, self.cfg.slb_miss_penalty);
            }
        } else {
            now += self.cycles(SRAM_TAG_CYCLES);
            self.breakdown.add(LatComponent::Metadata, self.cycles(SRAM_TAG_CYCLES));
            let region = self.meta_div.div(addr);
            if !self.metas[core].access(region, false).is_hit() {
                // In-DRAM tag read at the line's home unit.
                self.metadata_dram += 1;
                if let Some((home, slot)) = located {
                    let t1 = self.net.send(UnitId(core), UnitId(home), REQ_BYTES, now);
                    let daddr = self.layouts[sid_i].slot_addr(home, slot);
                    let t2 = self.drams[home].access(daddr, LINE_BYTES, false, t1);
                    let t3 = self.net.send(UnitId(home), UnitId(core), LINE_BYTES, t2);
                    self.breakdown.add(LatComponent::Metadata, t3 - now);
                    now = t3;
                }
            }
        }

        // Data path.
        let Some((target, slot)) = located else {
            // Stream has no cache capacity: serve from extended memory.
            self.cache_misses += 1;
            let done = self.ext_access(core, addr, desc.fetch_bytes, m.write, now);
            return done + self.cycles(RESTART_CYCLES);
        };

        // Route to the serving unit.
        let t_req = self.net.send(UnitId(core), UnitId(target), REQ_BYTES, now);
        self.charge_noc(core, target, t_req - now);
        now = t_req;

        let affine_stream = desc.affine;
        let stream_grain = self.cfg.policy.is_stream_grain();
        let grain = desc.grain;
        let daddr = self.layouts[sid_i].slot_addr(target, slot);
        let tag_at = self.su(sid_i, target);

        // Set when a data-path DRAM read returns uncorrectable (poisoned)
        // ECC data; a poisoned hit aborts the stream's cached copy at the
        // serving unit and refetches from extended memory.
        let mut poisoned = false;
        let outcome = if stream_grain && affine_stream {
            // ATA probe (SRAM) decides before touching DRAM.
            let tag_lat = self.cycles(SRAM_TAG_CYCLES);
            now += tag_lat;
            self.breakdown.add(LatComponent::Metadata, tag_lat);
            let tags = self.tags[tag_at].as_mut().expect("located implies allocated");
            tags.access(slot, key, m.write)
        } else if stream_grain {
            // Indirect: one DRAM access returns tag + data.
            let (t2, ecc) = self.drams[target].access_checked(daddr, LINE_BYTES, m.write, now);
            poisoned = ecc == EccOutcome::Poisoned;
            self.breakdown.add(LatComponent::DramCache, t2 - now);
            now = t2;
            let tags = self.tags[tag_at].as_mut().expect("allocated");
            tags.access(slot, key, m.write)
        } else {
            // Line grain: tag state came with the metadata read.
            let tags = self.tags[tag_at].as_mut().expect("located implies allocated");
            tags.access(slot, key, m.write)
        };

        let hit = outcome.is_hit();
        if let ndpx_cache::setassoc::Outcome::Miss { evicted: Some((victim, true)) } = outcome {
            // Dirty victim: write back to extended memory.
            let vaddr = desc.addr_of_key(victim);
            self.ext_writeback(target, vaddr, grain.min(u64::from(u32::MAX)) as u32, now);
        }

        if hit {
            self.cache_hits += 1;
            if target == core {
                self.local_hits += 1;
            }
            // Stream-grain indirect hits are served straight from the
            // element slot; everything else pays the DRAM-cache row access.
            if !stream_grain || affine_stream {
                let (t2, ecc) = self.drams[target].access_checked(daddr, LINE_BYTES, m.write, now);
                poisoned = ecc == EccOutcome::Poisoned;
                self.breakdown.add(LatComponent::DramCache, t2 - now);
                if let Some(tr) = self.trace.as_deref_mut() {
                    if tr.in_window(now) {
                        tr.complete("dram", "cache_hit", target as u32, now, t2 - now);
                    }
                }
                now = t2;
            }
            if poisoned {
                now = self.abort_poisoned_stream(m.sid, target, &desc, key, daddr, now);
            }
        } else {
            self.cache_misses += 1;
            let fetch = desc.fetch_bytes;
            let base_addr = desc.addr_of_key(key);
            let done = self.ext_access(target, base_addr, fetch, false, now);
            now = done;
            // Install into the DRAM cache without blocking the response.
            self.drams[target].access(daddr, fetch, true, now);
        }

        // Data response back to the requester.
        let t_rsp = self.net.send(UnitId(target), UnitId(core), LINE_BYTES, now);
        self.charge_noc(target, core, t_rsp - now);
        t_rsp + self.cycles(RESTART_CYCLES)
    }

    /// Uncorrectable ECC data came back from a stream's DRAM-cache copy at
    /// `unit`: poison the stream, drop its cached replica there (every
    /// resident line is untrusted once the array has returned poison), and
    /// refetch the requested element from extended memory.
    fn abort_poisoned_stream(
        &mut self,
        sid: StreamId,
        unit: usize,
        desc: &StreamDesc,
        key: u64,
        daddr: u64,
        now: Time,
    ) -> Time {
        self.stream_aborts += 1;
        if self.table.mark_poisoned(sid) {
            ndpx_warn!(
                "uncorrectable ECC poison on stream {} at unit {unit}: aborting cached copy",
                sid.index()
            );
        }
        let tag_at = self.su(sid.index(), unit);
        if let Some(tags) = self.tags[tag_at].as_mut() {
            let (valid, _) = tags.invalidate_all();
            self.invalidations += valid;
        }
        let done = self.ext_access(unit, desc.addr_of_key(key), desc.fetch_bytes, false, now);
        // Reinstall the clean copy without blocking the response.
        self.drams[unit].access(daddr, desc.fetch_bytes, true, done);
        done
    }

    /// Fire-and-forget store of an evicted dirty L1 line into the hierarchy.
    fn writeback_line(&mut self, core: usize, addr: u64, t: Time) {
        let Some((sid, elem)) = self.table.lookup(addr) else {
            self.ext_writeback(core, addr, LINE_BYTES, t);
            return;
        };
        let key = self.descs[sid.index()].key_of(elem, addr);
        let sid_i = sid.index();
        if let Some((target, slot)) = self.layouts[sid_i].locate(core, key) {
            let t1 = self.net.send(UnitId(core), UnitId(target), LINE_BYTES, t);
            let daddr = self.layouts[sid_i].slot_addr(target, slot);
            let tag_at = self.su(sid_i, target);
            if let Some(tags) = self.tags[tag_at].as_mut() {
                if tags.probe(slot, key) {
                    tags.access(slot, key, true);
                    self.drams[target].access(daddr, LINE_BYTES, true, t1);
                    return;
                }
            }
            self.ext_writeback(target, addr, LINE_BYTES, t1);
        } else {
            self.ext_writeback(core, addr, LINE_BYTES, t);
        }
    }

    /// Collapses a stream's replication groups into one on the first write.
    fn handle_ro_transition(&mut self, sid: StreamId) -> Time {
        let sid_i = sid.index();
        if self.layouts[sid_i].groups.len() <= 1 {
            return Time::ZERO;
        }
        // Invalidate every cached copy (clean by construction: no writebacks
        // needed, §IV-B). The stream's tag arrays are one contiguous row of
        // the flat stream-major matrix.
        let units_n = self.cfg.units();
        let mut invalidated = 0;
        for slot in &mut self.tags[sid_i * units_n..(sid_i + 1) * units_n] {
            if let Some(tags) = slot.as_mut() {
                let (valid, _) = tags.invalidate_all();
                invalidated += valid;
            }
        }
        self.invalidations += invalidated;
        // Merge all groups: per-unit shares summed, one group.
        let mut shares = vec![0u64; units_n];
        for g in &self.layouts[sid_i].groups {
            for (total, &s) in shares.iter_mut().zip(&g.shares) {
                *total += s;
            }
        }
        let consistent = self.cfg.transfer == ReconfigTransfer::ConsistentHash;
        let grain = self.layouts[sid_i].grain;
        let mut layout = StreamLayout::empty(units_n, grain);
        layout.unit_base = self.layouts[sid_i].unit_base.clone();
        layout.groups.push(Group::new(shares, consistent));
        layout.finalize_offsets(units_n);
        let dist = &self.distance;
        layout.assign_nearest(units_n, |a, b| dist[a * units_n + b]);
        self.layouts[sid_i] = layout;
        RO_TRANSITION_PENALTY
    }

    /// Collects per-stream demands from this epoch's counters and samplers.
    fn collect_demands(&mut self, warmup: bool) -> Vec<StreamDemand> {
        let units_n = self.cfg.units();
        (0..self.table.len())
            .map(|si| {
                let sid = StreamId(si as u16);
                let s = self.table.get(sid);
                let grain = self.descs[si].grain;
                let mut acc_units: Vec<(usize, u64)> = if warmup {
                    // Nothing observed yet: assume every unit touches every
                    // stream equally so the warmup allocation hands all
                    // streams capacity.
                    (0..units_n).map(|u| (u, 1)).collect()
                } else {
                    self.acc_history[si * units_n..(si + 1) * units_n]
                        .iter()
                        .enumerate()
                        .filter(|(_, &a)| a > 0)
                        .map(|(u, &a)| (u, a))
                        .collect()
                };
                let mut speculative = false;
                if acc_units.is_empty() {
                    // Never-yet-accessed stream (e.g. a phase that has not
                    // reached it): keep it competing at minimal weight so
                    // leftover capacity is not stranded and its first burst
                    // does not start from an empty cache.
                    acc_units = (0..self.cfg.units()).map(|u| (u, 1)).collect();
                    speculative = true;
                }
                let total: u64 = acc_units.iter().map(|&(_, a)| a).sum();
                let curve = if warmup {
                    // No observations yet: assume misses fall linearly until
                    // the stream's footprint fits.
                    let guess = total.max(1) as f64;
                    MissCurve::from_samples(guess, vec![(s.size, guess * 0.05)])
                } else if let Some(slot) = &self.samplers[si] {
                    if slot.sampler.observed() > 0 {
                        let c = slot.sampler.curve(total);
                        self.prev_curves[si] = Some(c.clone());
                        c
                    } else {
                        self.prev_curves[si]
                            .clone()
                            .unwrap_or_else(|| MissCurve::flat(total as f64))
                    }
                } else {
                    self.prev_curves[si].clone().unwrap_or_else(|| {
                        MissCurve::from_samples(total as f64, vec![(s.size, total as f64 * 0.05)])
                    })
                };
                StreamDemand {
                    curve,
                    acc_units,
                    // Speculative streams get one shared group: replicating
                    // data nobody has touched wastes space and churns.
                    read_only: s.read_only && !speculative && self.cfg.allow_replication,
                    affine: s.kind.is_affine(),
                    grain,
                    total_accesses: total,
                    footprint: s.size,
                }
            })
            .collect()
    }

    /// Applies a new allocation: builds layouts, transfers or invalidates
    /// cached contents, rebuilds tag arrays. Returns the simulated span over
    /// which migration traffic drains (zero when nothing migrates) — the
    /// reconfiguration "downtime" reported under `slo.*`.
    fn apply_allocation(&mut self, alloc: &Allocation, t: Time) -> Time {
        let mut drain = Time::ZERO;
        let units_n = self.cfg.units();
        let consistent = self.cfg.transfer == ReconfigTransfer::ConsistentHash;
        self.replicated_fraction = alloc.replicated_fraction();

        if self.trace_alloc {
            ndpx_debug!(
                "== apply_allocation at {t} total={}MB repl={:.2}",
                alloc.total_bytes() >> 20,
                alloc.replicated_fraction()
            );
            for (si, gs) in alloc.streams.iter().enumerate() {
                if gs.is_empty() {
                    continue;
                }
                let total: u64 = gs.iter().map(crate::runtime::configure::AllocGroup::total).sum();
                let sizes: Vec<u64> = gs.iter().map(|g| g.total() >> 10).collect();
                ndpx_debug!(
                    "alloc s{si} ro={} affine={} groups={} totalKB={} sizesKB={:?}",
                    self.table.get(StreamId(si as u16)).read_only,
                    self.table.get(StreamId(si as u16)).kind.is_affine(),
                    gs.len(),
                    total >> 10,
                    sizes
                );
            }
        }
        let mut unit_offsets = vec![0u64; units_n];
        let mut new_layouts = Vec::with_capacity(self.table.len());
        for si in 0..self.table.len() {
            let grain = self.descs[si].grain;
            let mut layout = StreamLayout::empty(units_n, grain);
            for g in alloc.streams.get(si).map_or(&[][..], |v| &v[..]) {
                let mut shares = vec![0u64; units_n];
                for &(u, bytes) in &g.unit_bytes {
                    shares[u] = bytes / grain;
                }
                if shares.iter().any(|&s| s > 0) {
                    layout.groups.push(Group::new(shares, consistent));
                }
            }
            // Hysteresis: sampling noise makes successive allocations jitter;
            // rebuilding (and invalidating) a stream's cache for a <25% size
            // change costs more than the size change is worth. Keep the old
            // layout when the new one is structurally similar.
            if let Some(old) = self.layouts.get(si) {
                let old_total = old.total_slots() * old.grain;
                let new_total = layout.total_slots() * grain;
                let similar = old.groups.len() == layout.groups.len()
                    && old.grain == grain
                    && old_total > 0
                    && new_total.abs_diff(old_total) * 4 < old_total;
                // Chaos gate: never keep a layout that still holds shares on
                // a dead unit, however small the delta looks. Always true on
                // a healthy system.
                if similar && self.chaos_layout_clean(old) {
                    new_layouts.push(old.clone());
                    continue;
                }
            }
            let per_unit = layout.finalize_offsets(units_n);
            layout.unit_base.copy_from_slice(&unit_offsets);
            for (off, &per) in unit_offsets.iter_mut().zip(&per_unit) {
                *off += per * grain;
            }
            let dist = &self.distance;
            layout.assign_nearest(units_n, |a, b| dist[a * units_n + b]);
            new_layouts.push(layout);
        }

        // Build new tag arrays, transferring contents per the configured
        // policy. Streams whose layout is unchanged keep their tags — only
        // reassigned space is invalidated (paper §V-D).
        for (si, new_layout) in new_layouts.iter().enumerate() {
            let sid = StreamId(si as u16);
            let ways = self.tag_ways(sid);
            if let Some(old_layout) = self.layouts.get(si) {
                // Identical shares mean identical placement: keep the tags.
                // (A shifted DRAM base only renames rows; contents and
                // placement are untouched.)
                let same_groups = old_layout.groups.len() == new_layout.groups.len()
                    && old_layout
                        .groups
                        .iter()
                        .zip(&new_layout.groups)
                        .all(|(a, b)| a.shares == b.shares);
                if same_groups {
                    continue;
                }
            }
            // Per-unit slot totals under the new layout.
            let mut per_unit = vec![0u64; units_n];
            for g in &new_layout.groups {
                for (total, &s) in per_unit.iter_mut().zip(&g.shares) {
                    *total += s;
                }
            }
            // Take the old arrays, build fresh ones. The stream's row of
            // the flat tag matrix is contiguous.
            let row = si * units_n;
            let old_arrays: Vec<Option<TagArray>> =
                self.tags[row..row + units_n].iter_mut().map(Option::take).collect();
            for (u, per) in per_unit.iter().enumerate() {
                if *per > 0 {
                    self.tags[row + u] = Some(TagArray::new(*per, ways));
                }
            }
            if consistent {
                // Consistent-hash transfer (§V-D): re-place every resident
                // entry under the new layout; entries that land on their old
                // unit are kept in place, entries that move units count as
                // migrations (and consume NoC bandwidth), entries with no
                // home any more are invalidated.
                let mut migrated_bytes_from: Vec<u64> = vec![0; units_n];
                for (u, old) in old_arrays.into_iter().enumerate() {
                    let Some(old) = old else { continue };
                    for (key, dirty) in old.entries() {
                        match new_layout.locate(u, key) {
                            Some((target, slot)) => {
                                let installed = self.tags[row + target]
                                    .as_mut()
                                    .is_some_and(|t| t.install_if_free(slot, key, dirty));
                                if !installed {
                                    self.invalidations += 1;
                                } else if target == u {
                                    // Kept in place: free.
                                } else {
                                    self.migrations += 1;
                                    migrated_bytes_from[u] += new_layout.grain;
                                }
                            }
                            None => self.invalidations += 1,
                        }
                    }
                }
                // Migration traffic drains in the background over the start
                // of the epoch (the paper reports it at ~1.3% of requests).
                for (u, bytes) in migrated_bytes_from.iter().enumerate() {
                    if *bytes == 0 {
                        continue;
                    }
                    let neighbor = (u + 1) % units_n;
                    let chunks = bytes.div_ceil(4096).min(64);
                    let spacing = Time::from_ps(self.cfg.epoch().as_ps() / (4 * chunks.max(1)));
                    for i in 0..chunks {
                        self.net.send(UnitId(u), UnitId(neighbor), 4096, t + spacing * i);
                    }
                    drain = drain.max(spacing * chunks);
                }
            } else {
                for old in old_arrays.into_iter().flatten() {
                    self.invalidations += old.occupancy();
                }
            }
        }
        self.layouts = new_layouts;
        drain
    }

    fn tag_ways(&self, sid: StreamId) -> usize {
        if self.cfg.policy.is_stream_grain() {
            if self.descs[sid.index()].affine {
                4
            } else {
                self.cfg.indirect_ways
            }
        } else {
            1
        }
    }

    /// Epoch boundary: derive and apply the next configuration. `prof`, when
    /// present, receives the sampler-solve / rehash / reconfig sub-phase
    /// timings.
    fn reconfigure(&mut self, t: Time, mut prof: Option<&mut PhaseProfiler>) {
        self.reconfigs += 1;
        if self.slo.enabled {
            self.slo.close_epoch(t);
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.counter("slo", "slo.epoch_p50_ns", 0, t, self.slo.last_p50.as_ns() as f64);
                tr.counter("slo", "slo.epoch_p99_ns", 0, t, self.slo.last_p99.as_ns() as f64);
                tr.counter("slo", "slo.staleness_ns", 0, t, self.slo.last_staleness.as_ns() as f64);
            }
        }
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.instant("core", "reconfigure", 0, t);
        }
        // Decay the flat (stream × unit) history matrix in 4-wide chunks
        // the compiler lowers to vector shift-adds; integer lanes are
        // independent, so this is bit-identical to the scalar loop.
        let mut hist = self.acc_history.chunks_exact_mut(4);
        let mut cur = self.acc_counts.chunks_exact(4);
        for (h4, c4) in hist.by_ref().zip(cur.by_ref()) {
            for i in 0..4 {
                h4[i] = h4[i] / 2 + c4[i];
            }
        }
        for (h, &c) in hist.into_remainder().iter_mut().zip(cur.remainder()) {
            *h = *h / 2 + c;
        }
        let within_budget = self.cfg.max_reconfigs.is_none_or(|m| self.reconfigs <= m);
        if self.cfg.policy.reconfigures() && within_budget {
            let alloc = {
                let _span = ProfileSpan::enter_opt(prof.as_deref_mut(), Phase::SamplerSolve);
                let demands = self.collect_demands(false);
                let ctx = self.config_ctx();
                if self.cfg.policy == PolicyKind::NdpExt {
                    allocate_ndpext(&demands, &ctx)
                } else {
                    allocate_baseline(self.cfg.policy, &demands, &ctx, self.cfg.nexus_degree)
                }
            };
            // Skip immaterial reconfigurations outright: sampling noise
            // produces small deltas every epoch, and applying them costs
            // invalidations and migrations worth more than the delta.
            let moved: u64 = alloc
                .streams
                .iter()
                .enumerate()
                .map(|(si, gs)| {
                    let new_total: u64 =
                        gs.iter().map(crate::runtime::configure::AllocGroup::total).sum();
                    let old_total = self.layouts.get(si).map_or(0, |l| l.total_slots() * l.grain);
                    new_total.abs_diff(old_total)
                })
                .sum();
            let capacity = self.cfg.unit_capacity * self.cfg.units() as u64;
            if moved * 100 >= capacity * 15 {
                let drain = {
                    let _span = ProfileSpan::enter_opt(prof.as_deref_mut(), Phase::Rehash);
                    self.apply_allocation(&alloc, t)
                };
                // The Reconfig phase carries the simulated drain window; the
                // host-side work is already under Rehash.
                if let Some(p) = prof {
                    p.add(Phase::Reconfig, std::time::Duration::ZERO, drain);
                }
                if self.slo.enabled {
                    self.slo.applied(t, drain);
                    if let Some(tr) = self.trace.as_deref_mut() {
                        tr.counter("slo", "slo.reconfig_drain_ns", 0, t, drain.as_ns() as f64);
                    }
                }
            }
        }
        self.assign_epoch_samplers();
        self.acc_counts.fill(0);
    }

    /// (Re)derives the distance, attenuation, and NoC-split weight matrices
    /// from the network's current routes. Called at construction and after a
    /// chaos NoC link death or restore, so the placement signal
    /// (`attenuation` feeds Algorithm 1, exactly like `degradation()` does
    /// for the CXL link) tracks reroutes. While every link is healthy the
    /// routes equal the XY baseline and this reproduces the construction
    /// matrices bit-for-bit. The intra/inter split weights stay
    /// topology-derived — they only attribute a duration between the two
    /// NoC components.
    fn rebuild_noc_matrices(&mut self) {
        let units_n = self.cfg.units();
        let dram_lat = self.cfg.dram_config().timing.row_empty().as_ps() as f64;
        let (intra_l, inter_l) = self.cfg.link_params();
        let mut distance = vec![0u64; units_n * units_n];
        let mut attenuation = vec![vec![1.0; units_n]; units_n];
        let mut noc_weights = vec![(0u64, 1u64); units_n * units_n];
        for (u, att) in attenuation.iter_mut().enumerate() {
            let row = u * units_n;
            for v in 0..units_n {
                let d = self.net.base_latency(UnitId(u), UnitId(v), LINE_BYTES).as_ps();
                distance[row + v] = d;
                let iw = self.cfg.topology.intra_hops(UnitId(u), UnitId(v)) as u64
                    * intra_l.hop_latency.as_ps();
                let xw = self.cfg.topology.inter_hops(UnitId(u), UnitId(v)) as u64
                    * inter_l.hop_latency.as_ps();
                noc_weights[row + v] = (iw, (iw + xw).max(1));
            }
            // Attenuation derives elementwise from the distance row:
            // computed as a second chunked pass the compiler can lower to
            // 4-wide vector divides (each lane independent, so the result
            // is bit-identical to the scalar loop).
            let mut dc = distance[row..row + units_n].chunks_exact(4);
            let mut ac = att.chunks_exact_mut(4);
            for (d4, a4) in dc.by_ref().zip(ac.by_ref()) {
                for i in 0..4 {
                    a4[i] = dram_lat / (dram_lat + d4[i] as f64);
                }
            }
            for (d, a) in dc.remainder().iter().zip(ac.into_remainder()) {
                *a = dram_lat / (dram_lat + *d as f64);
            }
        }
        self.distance = distance;
        self.attenuation = attenuation;
        self.noc_weights = noc_weights;
    }

    /// Earliest unconsumed chaos boundary — next scheduled failure or
    /// pending restore. Run-ahead windows clamp to it so no batch skips one.
    fn chaos_next_at(&self) -> Option<Time> {
        let cs = self.chaos.as_deref()?;
        let event = cs.plan.next_at();
        let restore = cs.restores.first().map(|r| r.0);
        match (event, restore) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn chaos_mut(&mut self) -> &mut ChaosState {
        self.chaos.as_deref_mut().expect("chaos state engaged")
    }

    /// Applies the single earliest chaos boundary due at `now`. Restores win
    /// ties against new failures (capacity comes back before more is taken
    /// away); the run loop re-polls until nothing is due, so simultaneous
    /// boundaries apply in a deterministic order at any thread count.
    fn apply_next_chaos(&mut self, now: Time, remaining: &mut [u64]) {
        enum Due {
            Restore(Time, usize, ChaosKind),
            Event(usize, ChaosEvent),
        }
        let due = {
            let Some(cs) = self.chaos.as_deref_mut() else { return };
            let restore_due = cs.restores.first().map(|r| r.0).filter(|&r| r <= now);
            let event_due = cs.plan.next_at().filter(|&e| e <= now);
            match (restore_due, event_due) {
                (Some(r), Some(e)) if e < r => {
                    let (idx, ev) = cs.plan.pop_due(now).expect("event due");
                    Due::Event(idx, ev)
                }
                (Some(_), _) => {
                    let (at, idx, kind) = cs.restores.remove(0);
                    Due::Restore(at, idx, kind)
                }
                (None, Some(_)) => {
                    let (idx, ev) = cs.plan.pop_due(now).expect("event due");
                    Due::Event(idx, ev)
                }
                (None, None) => return,
            }
        };
        match due {
            Due::Restore(at, idx, kind) => self.apply_chaos_restore(idx, kind, at),
            Due::Event(idx, ev) => self.apply_chaos_event(idx, ev, remaining),
        }
    }

    /// Escalates one scheduled hard failure through the existing recovery
    /// machinery: poison → re-fetch, capacity zeroing → re-placement on the
    /// survivors, epoch-style reconfiguration → migration drain.
    fn apply_chaos_event(&mut self, idx: usize, e: ChaosEvent, remaining: &mut [u64]) {
        let at = e.at;
        ndpx_warn!("chaos: {} hits at {at}", e.kind.label());
        match e.kind {
            ChaosKind::CxlDown => {
                let restore = e.restore_at().expect("validated: cxl-down is windowed");
                // Ext accesses stall behind bounded retry probes until the
                // link restores; the outage expires inside `ExtendedMemory`,
                // so no scheduled restore is queued here.
                self.ext.begin_outage(restore);
                let cs = self.chaos_mut();
                cs.applied += 1;
                let r = &mut cs.records[idx];
                r.applied = true;
                r.at = at;
                r.ttr = restore.saturating_sub(at);
            }
            ChaosKind::StackDown { stack } => {
                let units_n = self.cfg.units();
                let ups = self.cfg.topology.units_per_stack();
                let (lo, hi) = (stack * ups, (stack + 1) * ups);
                // The stack's DRAM ranks go dark: every cached line on them
                // is lost, so every stream resident there is poisoned and
                // re-fetches from extended memory (the same escalation path
                // an uncorrectable ECC error takes).
                let resident: Vec<StreamId> = (0..self.table.len())
                    .filter(|&si| {
                        self.layouts[si]
                            .groups
                            .iter()
                            .any(|g| g.shares[lo..hi].iter().any(|&s| s > 0))
                    })
                    .map(|si| StreamId(si as u16))
                    .collect();
                let poisoned = self.table.mark_poisoned_many(resident.iter().copied());
                self.chaos_mut().integrate_to(at);
                let mut invalidated = 0u64;
                let mut aborted = 0u64;
                // `u` indexes four parallel arrays; an iterator over just
                // `remaining` would obscure that.
                #[allow(clippy::needless_range_loop)]
                for u in lo..hi {
                    self.drams[u].set_offline(at);
                    for si in 0..self.table.len() {
                        let slot = si * units_n + u;
                        if let Some(tags) = self.tags[slot].as_mut() {
                            let (valid, _) = tags.invalidate_all();
                            invalidated += valid;
                        }
                        self.tags[slot] = None;
                        // Dead units stop contributing demand: their access
                        // history would otherwise keep attracting capacity.
                        self.acc_counts[slot] = 0;
                        self.acc_history[slot] = 0;
                    }
                    // Abort the dead cores' remaining trace ops; in-flight
                    // work on a lost stack cannot be replayed.
                    aborted += remaining[u];
                    remaining[u] = 0;
                    self.chaos_mut().dead_units[u] = true;
                }
                self.invalidations += invalidated;
                // Zero capacity plus poisoned streams: the forced
                // re-placement moves everything onto the survivors.
                let drain = self.force_reconfigure(at);
                let cs = self.chaos_mut();
                cs.applied += 1;
                cs.ops_aborted += aborted;
                cs.streams_poisoned += poisoned;
                let r = &mut cs.records[idx];
                r.applied = true;
                r.at = at;
                r.ttr = drain;
                r.streams_migrated = resident.len() as u64;
                r.ops_aborted = aborted;
                if let Some(restore) = e.restore_at() {
                    self.chaos_schedule_restore(restore, idx, e.kind);
                }
            }
            ChaosKind::NocLinkDown { src, dst } => {
                let killed = self.net.set_link_dead(src, dst, true);
                debug_assert!(killed, "validated: grid-adjacent stacks");
                // Deterministic reroute, then refreshed distance/attenuation
                // matrices feed the placement algorithm the escalated path
                // costs — the same signal shape as `degradation()`.
                self.rebuild_noc_matrices();
                let drain = self.force_reconfigure(at);
                let cs = self.chaos_mut();
                cs.applied += 1;
                let r = &mut cs.records[idx];
                r.applied = true;
                r.at = at;
                r.ttr = drain;
                if let Some(restore) = e.restore_at() {
                    self.chaos_schedule_restore(restore, idx, e.kind);
                }
            }
        }
    }

    /// Applies a windowed failure's restore: the resource returns (empty)
    /// and a forced re-placement spreads capacity back over it. The record's
    /// time-to-recover widens to cover the whole loss window plus the
    /// restore's own drain.
    fn apply_chaos_restore(&mut self, idx: usize, kind: ChaosKind, at: Time) {
        ndpx_info!("chaos: {} restores at {at}", kind.label());
        match kind {
            // CXL outages expire inside `ExtendedMemory`; nothing is queued.
            ChaosKind::CxlDown => {}
            ChaosKind::StackDown { stack } => {
                let ups = self.cfg.topology.units_per_stack();
                let (lo, hi) = (stack * ups, (stack + 1) * ups);
                self.chaos_mut().integrate_to(at);
                for u in lo..hi {
                    self.drams[u].set_online(at);
                    self.chaos_mut().dead_units[u] = false;
                }
                // The dead cores' traces were aborted, not suspended: the
                // restored stack returns as cache capacity only.
                let drain = self.force_reconfigure(at);
                let cs = self.chaos_mut();
                cs.restored += 1;
                let r = &mut cs.records[idx];
                r.ttr = (at + drain).saturating_sub(r.at);
            }
            ChaosKind::NocLinkDown { src, dst } => {
                self.net.set_link_dead(src, dst, false);
                self.rebuild_noc_matrices();
                let drain = self.force_reconfigure(at);
                let cs = self.chaos_mut();
                cs.restored += 1;
                let r = &mut cs.records[idx];
                r.ttr = (at + drain).saturating_sub(r.at);
            }
        }
    }

    /// Queues a windowed failure's restore, keeping the queue sorted by
    /// (time, event id) so simultaneous restores apply in schedule order.
    fn chaos_schedule_restore(&mut self, at: Time, idx: usize, kind: ChaosKind) {
        let cs = self.chaos_mut();
        cs.restores.push((at, idx, kind));
        cs.restores.sort_by_key(|&(t, i, _)| (t, i));
    }

    /// Chaos escalation: re-runs the configuration algorithm immediately,
    /// bypassing both the moved-bytes hysteresis threshold and the
    /// `max_reconfigs` budget — after a hard failure the placement *must*
    /// move off the dead resources. Cached state drains through the same
    /// `apply_allocation` path as an epoch reconfiguration. Returns the
    /// migration drain span.
    fn force_reconfigure(&mut self, t: Time) -> Time {
        self.reconfigs += 1;
        self.chaos_mut().forced_reconfigs += 1;
        let demands = self.collect_demands(false);
        let ctx = self.config_ctx();
        let alloc = if self.cfg.policy == PolicyKind::NdpExt {
            allocate_ndpext(&demands, &ctx)
        } else {
            allocate_baseline(self.cfg.policy, &demands, &ctx, self.cfg.nexus_degree)
        };
        let drain = self.apply_allocation(&alloc, t);
        if self.slo.enabled {
            self.slo.applied(t, drain);
        }
        drain
    }

    /// With chaos active, a hysteresis-kept layout must hold zero shares on
    /// dead units. Trivially true when chaos is off (healthy path keeps its
    /// exact historical shape).
    fn chaos_layout_clean(&self, layout: &StreamLayout) -> bool {
        match self.chaos.as_deref() {
            None => true,
            Some(cs) => layout
                .groups
                .iter()
                .all(|g| g.shares.iter().zip(&cs.dead_units).all(|(&s, &dead)| s == 0 || !dead)),
        }
    }

    /// Streams whose current layout still holds capacity on a dead unit —
    /// the acceptance gate: zero after a stack-down escalates.
    fn dead_resident_streams(&self) -> u64 {
        let Some(cs) = self.chaos.as_deref() else { return 0 };
        self.layouts
            .iter()
            .filter(|l| {
                l.groups
                    .iter()
                    .any(|g| g.shares.iter().zip(&cs.dead_units).any(|(&s, &dead)| dead && s > 0))
            })
            .count() as u64
    }

    /// Publishes the `chaos.*` scope and the per-event `fault.recovery.*`
    /// records when a hard-failure schedule is configured; completely absent
    /// otherwise, so chaos-off registry dumps stay byte-identical.
    fn register_chaos_scope(&self, registry: &mut StatRegistry, now: Time) {
        let Some(cs) = self.chaos.as_deref() else { return };
        {
            let mut chaos = registry.scope("chaos");
            chaos.count("events", cs.plan.len() as u64);
            chaos.count("applied", cs.applied);
            chaos.count("restores", cs.restored);
            chaos.count("ops_aborted", cs.ops_aborted);
            chaos.count("streams_poisoned", cs.streams_poisoned);
            chaos.count("forced_reconfigs", cs.forced_reconfigs);
            chaos.count("dead_units", cs.dead_count());
            chaos.count("dead_links", self.net.dead_link_count());
            chaos.count("dead_resident_streams", self.dead_resident_streams());
            chaos.gauge("availability", 1.0 - cs.unavailability(now));
            self.ext.register_outage_stats(&mut chaos.scope("cxl"));
        }
        // Per-event recovery SLOs. The registry is a flat path map, so this
        // `fault.` prefix merges cleanly with the transient-fault scope when
        // both are active.
        let mut fault = registry.scope("fault");
        let mut rec = fault.scope("recovery");
        for (i, r) in cs.records.iter().enumerate() {
            if !r.applied {
                continue;
            }
            let mut e = rec.scope(&format!("e{i:02}"));
            e.count("at_ps", r.at.as_ps());
            e.count("ttr_ps", r.ttr.as_ps());
            e.count("streams_migrated", r.streams_migrated);
            e.count("ops_aborted", r.ops_aborted);
        }
    }

    /// Runs the max-flow sampler assignment on this epoch's access bitvector
    /// and instantiates fresh samplers.
    fn assign_epoch_samplers(&mut self) {
        let units_n = self.cfg.units();
        let nothing_observed = self.acc_counts.iter().all(|&a| a == 0);
        let accessed: Vec<Vec<usize>> = if nothing_observed {
            // First epoch: no bitvectors yet. Spread streams round-robin so
            // sampling starts immediately.
            (0..units_n)
                .map(|u| (0..self.table.len()).filter(|si| si % units_n == u).collect())
                .collect()
        } else {
            (0..units_n)
                .map(|u| {
                    (0..self.table.len())
                        .filter(|&si| self.acc_counts[si * units_n + u] > 0)
                        .collect()
                })
                .collect()
        };
        let assignment = assign_samplers(&accessed, self.table.len(), self.cfg.samplers_per_unit);
        // The paper samples up to the per-unit capacity (256 MB), which
        // dwarfs any hot set. At scaled-down capacities a stream's hot set
        // can exceed one unit, so we extend the range to the global cache
        // size; storage per sampler is unchanged (k sets per case).
        let global = self.cfg.unit_capacity * units_n as u64;
        let min_cap = (global / 16384).max(self.cfg.line_bytes);
        let caps = capacity_points(min_cap, global, self.cfg.sampler_points);
        for si in 0..self.table.len() {
            let target = assignment.unit_for_stream[si];
            let grain = self.descs[si].grain;
            // Keep a warm sampler when the assignment is stable — resetting
            // the shadow sets every epoch would make short epochs look
            // cold-start-bound.
            match (&mut self.samplers[si], target) {
                (Some(slot), Some(unit)) if slot.unit == unit => slot.sampler.reset_counters(),
                (slot, Some(unit)) => {
                    *slot = Some(SamplerSlot {
                        unit,
                        sampler: SetSampler::new(&caps, grain, self.cfg.sampler_sets),
                    });
                }
                (slot, None) => *slot = None,
            }
        }
    }

    /// Gathers the hierarchical stat dump from every subsystem. Built from
    /// single-threaded post-run state, so it is identical no matter how many
    /// harness worker threads surround the run.
    fn build_registry(&self, qstats: &QueueStats, makespan: Time) -> StatRegistry {
        let mut registry = StatRegistry::new();
        {
            let mut engine = registry.scope("engine");
            // Engine-loop events are *ops executed by the loop*: with
            // run-ahead batching one queue event can carry a whole batch,
            // so this deliberately counts ops (comparable across batching
            // on/off and with pre-batching baselines), while the raw queue
            // traffic stays under `engine.queue.*`.
            engine.count("events", self.batch_stats.ops);
            engine.count("peak_queue_depth", qstats.peak_depth);
            engine.count("stalls", self.stalls);
            let mut queue = engine.scope("queue");
            queue.count("scheduled", qstats.scheduled);
            queue.count("processed", qstats.processed);
            queue.count("peak_depth", qstats.peak_depth);
            queue.count("overflow_scheduled", qstats.overflow_scheduled);
            for (i, &n) in qstats.bucket_occupancy.iter().enumerate() {
                queue.count(&format!("bucket_occ{i}"), n);
            }
            drop(queue);
            let b = &self.batch_stats;
            let mut batch = engine.scope("batch");
            batch.count("enabled", u64::from(self.batch));
            batch.count("batches", b.batches);
            batch.count("ops", b.ops);
            batch.count("fast_hits", b.fast_hits);
            batch.count("max_len", b.max_len);
            batch.gauge("mean_len", b.mean_len());
            batch.gauge("fast_hit_ratio", b.fast_hit_ratio());
            for (i, &n) in b.len_hist.iter().enumerate() {
                batch.count(&format!("len_c{i}"), n);
            }
        }
        {
            let mut core = registry.scope("core");
            core.count("mem_ops", self.mem_ops);
            core.count("l1_hits", self.l1_hits);
            core.count("cache_hits", self.cache_hits);
            core.count("cache_misses", self.cache_misses);
            core.count("local_hits", self.local_hits);
            core.count("bypass", self.bypass);
            core.count("slb_misses", self.slb_misses);
            core.count("metadata_dram", self.metadata_dram);
            core.count("reconfigs", self.reconfigs);
            core.count("invalidations", self.invalidations);
            core.count("migrations", self.migrations);
            core.gauge("replicated_fraction", self.replicated_fraction);
            core.hist("access_latency", &self.access_latency);
        }
        self.net.register_stats(&mut registry.scope("noc"));
        {
            let mut cxl = registry.scope("cxl");
            self.ext.register_stats(&mut cxl);
            cxl.gauge("degradation", self.ext.degradation());
        }
        self.table.register_stats(&mut registry.scope("stream_table"));
        self.register_fault_scope(&mut registry);
        self.register_chaos_scope(&mut registry, makespan);
        if self.slo.enabled {
            // Epoch service stats ride only on time-resolved runs, so the
            // scope is absent (and dumps unchanged) by default — same
            // contract as `fault.*`.
            let mut slo = registry.scope("slo");
            self.slo.register(&mut slo, makespan);
            slo.count("streams.poisoned", self.table.poisoned_streams());
            slo.count("streams.refetched", self.table.poison_events());
        }
        if let Some(p) = self.profile.as_deref() {
            p.register(&mut registry);
        }
        for i in 0..self.drams.len() {
            let mut scope = registry.scope(&format!("unit{i:03}"));
            self.drams[i].register_stats(&mut scope.scope("dram"));
            self.l1s[i].register_stats(&mut scope.scope("l1"));
            self.slbs[i].register_stats(&mut scope.scope("slb"));
            self.metas[i].register_stats(&mut scope.scope("meta"));
        }
        registry
    }

    /// Publishes the `fault.*` scope when fault injection is configured.
    /// Injection counters live under one scope so smoke tests and manifests
    /// can assert on them in one place; the whole scope is absent from
    /// fault-free dumps.
    fn register_fault_scope(&self, registry: &mut StatRegistry) {
        if !self.cfg.fault.enabled() {
            return;
        }
        let mut fault = registry.scope("fault");
        self.ext.register_fault_stats(&mut fault.scope("cxl"));
        {
            let mut mem = fault.scope("mem");
            let (mut ce, mut ue, mut scrub_ps, mut rolls) = (0u64, 0u64, 0u64, 0u64);
            for dram in &self.drams {
                if let Some(s) = dram.fault_stats() {
                    ce += s.ce;
                    ue += s.ue;
                    scrub_ps += s.scrub_time.as_ps();
                }
                rolls += dram.fault_rolls().unwrap_or(0);
            }
            mem.count("ce", ce);
            mem.count("ue", ue);
            mem.count("scrub_ps", scrub_ps);
            mem.count("rolls", rolls);
        }
        self.net.register_fault_stats(&mut fault.scope("noc"));
        fault.scope("stream").count("aborts", self.stream_aborts);
    }

    fn report(&self, makespan: Time, ops: u64, qstats: &QueueStats) -> RunReport {
        let mut energy = EnergyBreakdown::default();
        for dram in &self.drams {
            energy.dram += dram.dynamic_energy();
            energy.static_ += dram.background_energy(makespan);
        }
        energy.static_ += (CORE_STATIC * self.cfg.units() as f64).over(makespan);
        energy.static_ += self.ext.background_energy(makespan);
        energy.dram += self.ext.dynamic_energy() - self.ext.link_energy();
        energy.noc = self.net.dynamic_energy();
        energy.cxl = self.ext.link_energy();

        RunReport {
            policy: self.cfg.policy,
            workload: self.workload_name.to_string(),
            sim_time: makespan,
            ops,
            mem_ops: self.mem_ops,
            l1_hits: self.l1_hits,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            local_hits: self.local_hits,
            bypass: self.bypass,
            slb_misses: self.slb_misses,
            metadata_dram: self.metadata_dram,
            breakdown: self.breakdown,
            energy,
            reconfigs: self.reconfigs,
            invalidations: self.invalidations,
            migrations: self.migrations,
            replicated_fraction: self.replicated_fraction,
            access_latency: self.access_latency.clone(),
            // Ops executed by the engine loop (see `engine.events` in the
            // registry): one queue event can carry a whole run-ahead
            // batch, so raw queue traffic would under-count under batching
            // and break comparability with pre-batching baselines.
            engine_events: ops,
            peak_queue_depth: qstats.peak_depth,
            registry: self.build_registry(qstats, makespan),
        }
    }
}

impl PolicyKind {
    /// The allocator used for the warmup epoch: equal static shares for
    /// stream-grain policies; the policy itself if it is already static;
    /// plain interleaving for the adaptive baselines (they have no curves
    /// yet).
    fn pick_warmup(self) -> PolicyKind {
        match self {
            PolicyKind::NdpExt | PolicyKind::NdpExtStatic => PolicyKind::NdpExtStatic,
            _ => PolicyKind::StaticInterleave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpx_workloads::trace::ScaleParams;

    fn run_one(policy: PolicyKind, workload: &str, ops: u64) -> RunReport {
        let cfg = SystemConfig::test(policy);
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build(workload, &p).expect("known").expect("builds");
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        sys.run(ops)
    }

    #[test]
    fn system_is_send() {
        // Parallel bench orchestration moves whole systems (and the
        // workloads inside them) across worker threads; nothing in the
        // simulator may regress to thread-bound state (`Rc`, `RefCell`
        // over shared globals, raw pointers).
        fn assert_send<T: Send>() {}
        assert_send::<NdpSystem>();
        assert_send::<RunReport>();
        assert_send::<SystemConfig>();
    }

    #[test]
    fn system_runs_and_reports() {
        let r = run_one(PolicyKind::NdpExt, "pr", 3000);
        assert!(r.sim_time > Time::ZERO);
        assert_eq!(r.ops, 3000 * 16);
        assert!(r.mem_ops > 0);
        assert!(r.cache_hits + r.cache_misses > 0);
        assert!(r.energy.total().as_pj() > 0.0);
    }

    #[test]
    fn all_policies_run_pagerank() {
        for policy in PolicyKind::ALL {
            let r = run_one(policy, "pr", 1500);
            assert!(r.sim_time > Time::ZERO, "{policy:?} made no progress");
            assert!(r.miss_rate() <= 1.0);
        }
    }

    #[test]
    fn determinism() {
        let a = run_one(PolicyKind::NdpExt, "mv", 2000);
        let b = run_one(PolicyKind::NdpExt, "mv", 2000);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.energy.total(), b.energy.total());
    }

    #[test]
    fn stream_grain_has_no_metadata_dram_traffic() {
        let r = run_one(PolicyKind::NdpExt, "pr", 2000);
        assert_eq!(r.metadata_dram, 0);
        let b = run_one(PolicyKind::Nexus, "pr", 2000);
        assert!(b.metadata_dram > 0, "baselines must pay in-DRAM metadata accesses");
    }

    #[test]
    fn bypass_traffic_is_tiny() {
        let r = run_one(PolicyKind::NdpExt, "cc", 4000);
        let frac = r.bypass as f64 / r.mem_ops as f64;
        assert!(frac < 0.002, "bypass fraction {frac}");
    }

    #[test]
    fn reconfiguration_happens() {
        let r = run_one(PolicyKind::NdpExt, "pr", 40_000);
        assert!(r.reconfigs > 0, "expected at least one epoch boundary");
    }

    #[test]
    fn backprop_transitions_read_only_streams() {
        let r = run_one(PolicyKind::NdpExt, "backprop", 20_000);
        // The adjust phase writes the weights: replicas must be dropped at
        // least once (invalidation traffic recorded).
        assert!(r.sim_time > Time::ZERO);
    }

    fn run_faulty(tweak: impl FnOnce(&mut ndpx_sim::fault::FaultConfig), ops: u64) -> RunReport {
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.fault = ndpx_sim::fault::FaultConfig::with_seed(42);
        tweak(&mut cfg.fault);
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build("pr", &p).expect("known").expect("builds");
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        sys.run(ops)
    }

    #[test]
    fn disabled_faults_leave_registry_clean() {
        let r = run_one(PolicyKind::NdpExt, "pr", 1500);
        assert!(r.registry.get("fault.mem.rolls").is_none());
        assert!(r.registry.get("fault.cxl.rolls").is_none());
        assert!(r.registry.get("fault.noc.rolls").is_none());
        assert!(r.registry.get("stream_table.poisoned").is_none());
    }

    #[test]
    fn fault_injection_is_deterministic_and_counted() {
        let tweak = |f: &mut ndpx_sim::fault::FaultConfig| {
            f.mem_ce = 1e-2;
            f.mem_ue = 0.0;
            f.cxl_ber = 1e-7;
            f.noc_fer = 1e-4;
        };
        let a = run_faulty(tweak, 3000);
        let b = run_faulty(tweak, 3000);
        assert_eq!(a.sim_time, b.sim_time, "same seed must replay identically");
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.registry.to_json(), b.registry.to_json());
        let rolls = a.registry.get("fault.mem.rolls").expect("fault scope present");
        assert!(rolls.as_count().expect("count") > 0, "DRAM reads must draw ECC decisions");
        assert!(a.registry.get("fault.noc.rolls").is_some());
        assert!(a.registry.get("fault.cxl.rolls").is_some());
        let ce = a.registry.get("fault.mem.ce").expect("present").as_count().expect("count");
        assert!(ce > 0, "1% CE rate over thousands of reads must inject");
    }

    #[test]
    fn poison_aborts_streams_and_refetches() {
        let r = run_faulty(
            |f| {
                f.mem_ce = 0.0;
                f.mem_ue = 0.05;
                f.cxl_ber = 0.0;
                f.noc_fer = 0.0;
            },
            3000,
        );
        let aborts =
            r.registry.get("fault.stream.aborts").expect("present").as_count().expect("count");
        assert!(aborts > 0, "5% UE rate must trigger at least one abort");
        assert!(
            r.registry.get("stream_table.poisoned").expect("present").as_count().expect("count")
                > 0,
            "aborted streams must be marked poisoned"
        );
        assert!(r.sim_time > Time::ZERO, "poison storms must not wedge the run");
    }

    #[test]
    fn degraded_link_slows_runs_and_feeds_back() {
        let clean = run_faulty(
            |f| {
                f.cxl_ber = 0.0;
                f.mem_ce = 0.0;
                f.mem_ue = 0.0;
                f.noc_fer = 0.0;
            },
            3000,
        );
        let degraded = run_faulty(
            |f| {
                f.cxl_ber = 1e-4;
                f.mem_ce = 0.0;
                f.mem_ue = 0.0;
                f.noc_fer = 0.0;
            },
            3000,
        );
        assert!(
            degraded
                .registry
                .get("fault.cxl.crc_retries")
                .expect("present")
                .as_count()
                .expect("count")
                > 0,
            "a lossy link must replay frames"
        );
        assert!(
            degraded.sim_time > clean.sim_time,
            "CRC replays and retrains must cost simulated time"
        );
    }

    #[test]
    fn zero_rate_fault_plans_change_nothing() {
        // Installed-but-all-zero injectors must reproduce the ideal timing:
        // rolls are drawn (counters advance) yet no fault ever fires.
        let ideal = run_one(PolicyKind::NdpExt, "pr", 2000);
        let zeroed = run_faulty(
            |f| {
                f.cxl_ber = 0.0;
                f.mem_ce = 0.0;
                f.mem_ue = 0.0;
                f.noc_fer = 0.0;
            },
            2000,
        );
        assert_eq!(ideal.sim_time, zeroed.sim_time);
        assert_eq!(ideal.cache_hits, zeroed.cache_hits);
        assert_eq!(ideal.energy.total(), zeroed.energy.total());
        assert_eq!(
            zeroed.registry.get("fault.mem.ce").expect("present").as_count().expect("count"),
            0
        );
        assert_eq!(
            zeroed.registry.get("fault.stream.aborts").expect("present").as_count().expect("count"),
            0
        );
    }

    #[test]
    fn rejects_mismatched_core_count() {
        let cfg = SystemConfig::test(PolicyKind::NdpExt);
        let p = ScaleParams { cores: cfg.units() + 1, footprint: 1 << 20, seed: 1 };
        let wl = ndpx_workloads::build("pr", &p).unwrap().unwrap();
        assert!(NdpSystem::new(cfg, wl).is_err());
    }

    #[test]
    fn slo_and_profile_scopes_are_opt_in() {
        let cfg = SystemConfig::test(PolicyKind::NdpExt);
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build("pr", &p).unwrap().unwrap();
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        sys.set_profile(true);
        let on = sys.run(40_000);
        assert!(on.reconfigs > 0, "need at least one epoch for SLO stats");
        let epochs = on.registry.get("slo.epochs").expect("slo scope").as_count().expect("count");
        assert!(epochs > 0);
        assert!(on.registry.get("slo.downtime_ns").is_some());
        assert!(on.registry.get("slo.streams.poisoned").is_some());
        assert!(on.registry.get("profile.run").is_some(), "run phase always recorded");
        assert!(on.registry.get("profile.sampler_solve").is_some(), "epochs solve demands");

        // Identical run with telemetry off: no slo.*/profile.* keys, and the
        // rest of the registry is unchanged key-for-key.
        let off = run_one(PolicyKind::NdpExt, "pr", 40_000);
        assert!(off
            .registry
            .iter()
            .all(|(k, _)| !k.starts_with("slo.") && !k.starts_with("profile.")));
        assert_eq!(on.sim_time, off.sim_time, "profiling must not perturb results");
        let strip = |r: &RunReport| {
            let mut reg = StatRegistry::new();
            for (k, v) in r.registry.iter() {
                if !k.starts_with("slo.") && !k.starts_with("profile.") {
                    reg.publish(k, v.clone());
                }
            }
            reg.to_json()
        };
        assert_eq!(strip(&on), strip(&off));
    }

    fn run_chaos(policy: PolicyKind, spec: &str, workload: &str, ops: u64) -> RunReport {
        let mut cfg = SystemConfig::test(policy);
        cfg.chaos = ndpx_sim::chaos::ChaosConfig::parse(Some(spec), None).expect("valid spec");
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build(workload, &p).expect("known").expect("builds");
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        sys.run(ops)
    }

    fn count(r: &RunReport, k: &str) -> u64 {
        r.registry.get(k).unwrap_or_else(|| panic!("{k} missing")).as_count().expect("count")
    }

    #[test]
    fn chaos_off_runs_carry_no_chaos_keys() {
        let r = run_one(PolicyKind::NdpExt, "pr", 1500);
        assert!(r
            .registry
            .iter()
            .all(|(k, _)| !k.starts_with("chaos.") && !k.starts_with("fault.recovery.")));
    }

    #[test]
    fn empty_chaos_schedule_changes_nothing() {
        let ideal = run_one(PolicyKind::NdpExt, "pr", 2000);
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.chaos = ndpx_sim::chaos::ChaosConfig::disabled();
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build("pr", &p).expect("known").expect("builds");
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        let r = sys.run(2000);
        assert_eq!(ideal.sim_time, r.sim_time);
        assert_eq!(ideal.registry.to_json(), r.registry.to_json());
    }

    #[test]
    fn stack_loss_re_places_streams_and_reports_recovery() {
        let r = run_chaos(PolicyKind::NdpExt, "stack-down@20us:1", "pr", 20_000);
        assert!(r.sim_time > Time::ZERO, "stack loss must not wedge the run");
        assert_eq!(count(&r, "chaos.applied"), 1, "the event must fire mid-run");
        assert!(count(&r, "chaos.forced_reconfigs") >= 1);
        assert!(count(&r, "chaos.streams_poisoned") > 0, "resident streams must poison");
        assert!(count(&r, "chaos.ops_aborted") > 0, "dead cores lose their remaining ops");
        assert_eq!(
            count(&r, "chaos.dead_resident_streams"),
            0,
            "no stream may stay placed on the dead stack"
        );
        let ups = SystemConfig::test(PolicyKind::NdpExt).topology.units_per_stack() as u64;
        assert_eq!(count(&r, "chaos.dead_units"), ups);
        // Recovery record: event 0 applied, with a finite time-to-recover.
        assert!(count(&r, "fault.recovery.e00.ttr_ps") > 0);
        assert_eq!(count(&r, "fault.recovery.e00.at_ps"), Time::from_us(20).as_ps());
        assert!(count(&r, "fault.recovery.e00.streams_migrated") > 0);
        let avail = r.registry.get("chaos.availability").expect("gauge").as_gauge().expect("f64");
        assert!(avail > 0.0 && avail < 1.0, "partial-loss availability in (0,1): {avail}");
        // Determinism: an identical schedule replays byte-identically.
        let again = run_chaos(PolicyKind::NdpExt, "stack-down@20us:1", "pr", 20_000);
        assert_eq!(r.registry.to_json(), again.registry.to_json());
    }

    #[test]
    fn windowed_stack_loss_restores_capacity() {
        let r = run_chaos(PolicyKind::NdpExt, "stack-down@20us+30us:0", "pr", 40_000);
        assert_eq!(count(&r, "chaos.applied"), 1);
        assert_eq!(count(&r, "chaos.restores"), 1, "the loss window must expire mid-run");
        assert_eq!(count(&r, "chaos.dead_units"), 0, "all units back after restore");
        assert!(
            count(&r, "fault.recovery.e00.ttr_ps") >= Time::from_us(30).as_ps(),
            "windowed TTR covers at least the loss window"
        );
        assert!(r.sim_time > Time::ZERO);
    }

    #[test]
    fn cxl_outage_stalls_and_recovers() {
        let clean = run_one(PolicyKind::NdpExt, "pr", 6000);
        let r = run_chaos(PolicyKind::NdpExt, "cxl-down@10us+40us", "pr", 6000);
        assert_eq!(count(&r, "chaos.applied"), 1);
        assert_eq!(count(&r, "chaos.cxl.outages"), 1);
        assert!(count(&r, "chaos.cxl.probes") > 0, "stalled accesses must retry");
        assert!(count(&r, "chaos.cxl.stall_ps") > 0);
        assert!(r.sim_time > clean.sim_time, "an outage must cost simulated time");
        assert_eq!(count(&r, "fault.recovery.e00.ttr_ps"), Time::from_us(40).as_ps());
    }

    #[test]
    fn noc_link_loss_reroutes_and_restores() {
        let r = run_chaos(PolicyKind::NdpExt, "noc-down@10us+50us:0-1", "pr", 40_000);
        assert_eq!(count(&r, "chaos.applied"), 1);
        assert_eq!(count(&r, "chaos.restores"), 1);
        assert_eq!(count(&r, "chaos.dead_links"), 0, "link back up after the window");
        assert!(count(&r, "chaos.forced_reconfigs") >= 2, "loss and restore each re-place");
        assert!(r.sim_time > Time::ZERO);
    }

    #[test]
    fn chaos_is_identical_with_batching_on_and_off() {
        let render = |batch: bool| {
            let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
            cfg.chaos = ndpx_sim::chaos::ChaosConfig::parse(
                Some("cxl-down@5us+20us;stack-down@20us:1"),
                None,
            )
            .expect("valid");
            let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
            let wl = ndpx_workloads::build("pr", &p).expect("known").expect("builds");
            let mut sys = NdpSystem::new(cfg, wl).expect("valid");
            sys.set_batching(batch);
            sys.run(20_000)
        };
        let a = render(false);
        let b = render(true);
        assert_eq!(a.sim_time, b.sim_time, "chaos boundaries must clamp run-ahead windows");
        let strip = |r: &RunReport| {
            let mut reg = StatRegistry::new();
            for (k, v) in r.registry.iter() {
                if !k.starts_with("engine.") {
                    reg.publish(k, v.clone());
                }
            }
            reg.to_json()
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn timeline_writes_windows_without_perturbing_results() {
        use ndpx_sim::telemetry::TimelineConfig;

        let base = run_one(PolicyKind::NdpExt, "mv", 4000);

        let cfg = SystemConfig::test(PolicyKind::NdpExt);
        let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build("mv", &p).unwrap().unwrap();
        let mut sys = NdpSystem::new(cfg, wl).expect("valid");
        let dir = std::env::temp_dir();
        let stem = dir.join("ndpx-core-test-timeline.json");
        let mut tc = TimelineConfig::to_path(&stem);
        tc.window = Time::from_ns(2_000);
        sys.set_timeline(Some(tc));
        let r = sys.run(4000);

        assert_eq!(r.sim_time, base.sim_time, "sampling must not perturb results");
        assert_eq!(r.cache_hits, base.cache_hits);
        let label = format!(
            "{:?}-{:?}-mv",
            SystemConfig::test(PolicyKind::NdpExt).mem_kind,
            PolicyKind::NdpExt
        );
        let path = dir.join(format!("ndpx-core-test-timeline.{label}.json"));
        let text = std::fs::read_to_string(&path).expect("timeline file written");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"ndpx-timeline-v1\""));
        assert!(text.contains("\"engine.queue.depth\""));
        assert!(text.contains("\"slo.epochs\""), "timeline runs carry the slo series");
        assert!(text.contains("\"noc."), "per-link NoC series present");
        ndpx_sim::telemetry::Json::parse(&text).expect("timeline is valid JSON");
    }

    #[test]
    fn timeline_is_identical_with_batching_on_and_off() {
        use ndpx_sim::telemetry::TimelineConfig;

        let render = |batch: bool| {
            let cfg = SystemConfig::test(PolicyKind::NdpExt);
            let p = ScaleParams { cores: cfg.units(), footprint: 8 << 20, seed: 42 };
            let wl = ndpx_workloads::build("pr", &p).unwrap().unwrap();
            let mut sys = NdpSystem::new(cfg, wl).expect("valid");
            sys.set_batching(batch);
            let stem = std::env::temp_dir()
                .join(format!("ndpx-core-test-timeline-batch{}.json", u8::from(batch)));
            let mut tc = TimelineConfig::to_path(&stem);
            tc.window = Time::from_ns(1_000);
            sys.set_timeline(Some(tc));
            let r = sys.run(3000);
            assert!(r.sim_time > Time::ZERO);
            let label = format!(
                "{:?}-{:?}-pr",
                SystemConfig::test(PolicyKind::NdpExt).mem_kind,
                PolicyKind::NdpExt
            );
            let path = std::env::temp_dir()
                .join(format!("ndpx-core-test-timeline-batch{}.{label}.json", u8::from(batch)));
            let text = std::fs::read_to_string(&path).expect("timeline written");
            std::fs::remove_file(&path).ok();
            text
        };
        // The `engine.batch.*` series legitimately differs (batching groups
        // ops into fewer batches); every simulation-derived series must not.
        let strip = |text: String| -> String {
            text.lines().filter(|l| !l.contains("\"engine.batch.")).collect::<Vec<_>>().join("\n")
        };
        let a = strip(render(false));
        let b = strip(render(true));
        assert_eq!(a, b, "run-ahead batching must not change simulation-derived timelines");
    }
}
