//! Cache layout: the stream remap table made concrete.
//!
//! A system layout (one [`StreamLayout`] per stream) is the materialized form of the paper's stream remap
//! table (Fig. 3b): for every stream, a set of *replication groups*, each
//! owning per-unit slot shares (RShares), per-unit DRAM base offsets
//! (RRowBase), and a unit→group service assignment (RGroups). Both NDPExt
//! (stream/block grain) and the cacheline-grain baselines use this structure;
//! only the slot granularity and the metadata access path differ.

use std::sync::{Arc, Mutex};

use ndpx_cache::placement::SharePlacement;
use ndpx_sim::rng::{hash_range, mix64};

/// Number of buckets in the consistent-hash placement tables. More buckets
/// mean finer-grained stability across reconfigurations.
pub const CONSISTENT_BUCKETS: usize = 1024;

/// How a group maps keys to (unit, slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupPlacement {
    /// Plain hashed placement over the cumulative shares. Cheap, but any
    /// share change moves almost every key (bulk invalidation on reconfig).
    Hashed(SharePlacement),
    /// Weighted-rendezvous bucket table (paper §V-D's consistent hashing):
    /// key → bucket → unit is stable under small share changes.
    Consistent {
        /// Bucket → owning unit.
        table: Vec<u16>,
        /// Slots per unit (indexed by unit).
        unit_slots: Vec<u64>,
    },
}

/// One replication group of one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Slots contributed by each unit (length = total units); the RShares
    /// vector of Fig. 3b restricted to this group.
    pub shares: Vec<u64>,
    /// Units with non-zero share, ascending.
    pub members: Vec<usize>,
    /// Placement function.
    pub place: GroupPlacement,
    /// Per-unit slot offset of this group within the stream's per-unit
    /// region (multiple groups of one stream may hold slots at one unit).
    pub slot_offset: Vec<u64>,
}

impl Group {
    /// Builds a group from per-unit slot shares.
    pub fn new(shares: Vec<u64>, consistent: bool) -> Self {
        let members: Vec<usize> =
            shares.iter().enumerate().filter(|(_, &s)| s > 0).map(|(u, _)| u).collect();
        let place = if consistent {
            let table = build_bucket_table(&shares, &members);
            GroupPlacement::Consistent { table, unit_slots: shares.clone() }
        } else {
            GroupPlacement::Hashed(SharePlacement::new(shares.clone()))
        };
        let slot_offset = vec![0; shares.len()];
        Group { shares, members, place, slot_offset }
    }

    /// Total slots in the group.
    pub fn total_slots(&self) -> u64 {
        self.shares.iter().sum()
    }

    /// Maps a key to `(unit, slot-within-unit)`, or `None` if the group has
    /// no capacity.
    pub fn locate(&self, key: u64) -> Option<(usize, u64)> {
        match &self.place {
            GroupPlacement::Hashed(p) => p.locate(key),
            GroupPlacement::Consistent { table, unit_slots } => {
                if self.members.is_empty() {
                    return None;
                }
                let bucket = hash_range(key, table.len() as u64) as usize;
                let unit = table[bucket] as usize;
                let slots = unit_slots[unit];
                if slots == 0 {
                    return None;
                }
                Some((unit, hash_range(key ^ 0x5A5A, slots)))
            }
        }
    }
}

/// The rendezvous denominator `-ln(r)` for one `(bucket, unit)` pair, where
/// `r = (mix64(b << 32 | u) + 1) / (u64::MAX + 2)` maps the pair's hash
/// into `(0, 1)`.
fn rendezvous_denominator(b: usize, u: usize) -> f64 {
    let h = mix64((b as u64) << 32 | u as u64);
    let r = (h as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    -r.ln()
}

/// Cached `-ln(r)` denominators for every `(bucket, unit)` pair, laid out
/// as `CONSISTENT_BUCKETS` rows of `units` columns.
///
/// The denominators are a pure function of the pair — no shares involved —
/// so one table per distinct unit count serves every group built in the
/// process. Without the cache the `ln` calls dominate group construction,
/// which runs per stream per epoch.
fn rendezvous_denominators(units: usize) -> Arc<Vec<f64>> {
    static CACHE: Mutex<Vec<(usize, Arc<Vec<f64>>)>> = Mutex::new(Vec::new());
    let mut cache = CACHE.lock().expect("rendezvous cache poisoned");
    if let Some((_, t)) = cache.iter().find(|(n, _)| *n == units) {
        return Arc::clone(t);
    }
    let mut t = Vec::with_capacity(CONSISTENT_BUCKETS * units);
    for b in 0..CONSISTENT_BUCKETS {
        for u in 0..units {
            t.push(rendezvous_denominator(b, u));
        }
    }
    let t = Arc::new(t);
    cache.push((units, Arc::clone(&t)));
    t
}

/// Weighted rendezvous: each bucket goes to the member unit with the highest
/// weight-scaled hash score, which keeps most buckets stable when weights
/// change slightly.
fn build_bucket_table(shares: &[u64], members: &[usize]) -> Vec<u16> {
    let mut table = vec![0u16; CONSISTENT_BUCKETS];
    if members.is_empty() {
        return table;
    }
    let units = shares.len();
    let denoms = rendezvous_denominators(units);
    // Four buckets per iteration with the member scan innermost: each
    // bucket's running argmax is an independent lane (score = weight /
    // -ln(r), larger is better — classic weighted rendezvous), members are
    // visited in the same order as the scalar loop, and the strict `>`
    // keeps the same winner under ties, so the vectorized pass produces
    // exactly the scalar table.
    let mut chunks = table.chunks_exact_mut(4);
    let mut b = 0usize;
    for t4 in chunks.by_ref() {
        let mut best = [members[0] as u16; 4];
        let mut best_score = [f64::NEG_INFINITY; 4];
        for &u in members {
            let w = shares[u] as f64;
            for i in 0..4 {
                let score = w / denoms[(b + i) * units + u];
                if score > best_score[i] {
                    best_score[i] = score;
                    best[i] = u as u16;
                }
            }
        }
        t4.copy_from_slice(&best);
        b += 4;
    }
    for (i, slot) in chunks.into_remainder().iter_mut().enumerate() {
        let row = &denoms[(b + i) * units..(b + i + 1) * units];
        let mut best = members[0];
        let mut best_score = f64::NEG_INFINITY;
        for &u in members {
            let score = shares[u] as f64 / row[u];
            if score > best_score {
                best_score = score;
                best = u;
            }
        }
        *slot = best as u16;
    }
    table
}

/// The realized layout of one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamLayout {
    /// Replication groups (read-write streams have at most one).
    pub groups: Vec<Group>,
    /// For each unit, the index of the group that serves its requests
    /// (its own group if it is a member, else the nearest); `u16::MAX`
    /// when the stream has no capacity anywhere.
    pub assign: Vec<u16>,
    /// Per-unit DRAM byte offset of this stream's region (RRowBase).
    pub unit_base: Vec<u64>,
    /// Slot size in bytes (affine block, element slot, or cacheline).
    pub grain: u64,
}

impl StreamLayout {
    /// An empty layout over `units` units (nothing cached).
    pub fn empty(units: usize, grain: u64) -> Self {
        StreamLayout {
            groups: Vec::new(),
            assign: vec![u16::MAX; units],
            unit_base: vec![0; units],
            grain,
        }
    }

    /// Total slots across all groups.
    pub fn total_slots(&self) -> u64 {
        self.groups.iter().map(Group::total_slots).sum()
    }

    /// Total bytes allocated to the stream.
    pub fn total_bytes(&self) -> u64 {
        self.total_slots() * self.grain
    }

    /// The group serving requests from `unit`, if any.
    pub fn group_for(&self, unit: usize) -> Option<&Group> {
        let g = self.assign[unit];
        if g == u16::MAX {
            None
        } else {
            Some(&self.groups[g as usize])
        }
    }

    /// Locates `key` for a requester at `unit`, returning the target unit
    /// and the slot index within that unit's region of this stream
    /// (group slot offsets applied).
    pub fn locate(&self, unit: usize, key: u64) -> Option<(usize, u64)> {
        let g = self.group_for(unit)?;
        let (target, slot) = g.locate(key)?;
        Some((target, g.slot_offset[target] + slot))
    }

    /// Finalizes per-group slot offsets so groups sharing a unit occupy
    /// disjoint slot ranges. Returns the total slots per unit.
    pub fn finalize_offsets(&mut self, units: usize) -> Vec<u64> {
        let mut per_unit = vec![0u64; units];
        for g in &mut self.groups {
            g.slot_offset[..units].copy_from_slice(&per_unit);
            for (total, &s) in per_unit.iter_mut().zip(&g.shares) {
                *total += s;
            }
        }
        per_unit
    }

    /// DRAM byte address (within the target unit's device) of a slot.
    pub fn slot_addr(&self, unit: usize, slot: u64) -> u64 {
        self.unit_base[unit] + slot * self.grain
    }

    /// Computes the unit→group assignment given a unit-distance function
    /// (picoseconds between units).
    pub fn assign_nearest(&mut self, units: usize, mut distance: impl FnMut(usize, usize) -> u64) {
        self.assign = vec![u16::MAX; units];
        if self.groups.is_empty() {
            return;
        }
        for u in 0..units {
            // A unit inside a group is served by that group.
            if let Some(g) = self.groups.iter().position(|g| g.shares[u] > 0) {
                self.assign[u] = g as u16;
                continue;
            }
            let mut best = 0usize;
            let mut best_d = u64::MAX;
            for (gi, g) in self.groups.iter().enumerate() {
                for &m in &g.members {
                    let d = distance(u, m);
                    if d < best_d {
                        best_d = d;
                        best = gi;
                    }
                }
            }
            if self.groups[best].total_slots() > 0 {
                self.assign[u] = best as u16;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_with(shares: Vec<u64>, consistent: bool) -> Group {
        Group::new(shares, consistent)
    }

    #[test]
    fn hashed_group_locates_members_only() {
        let g = group_with(vec![4, 0, 8, 0], false);
        assert_eq!(g.members, vec![0, 2]);
        for key in 0..1000 {
            let (u, s) = g.locate(key).unwrap();
            assert!(u == 0 || u == 2);
            assert!(s < g.shares[u]);
        }
    }

    #[test]
    fn consistent_group_locates_members_only() {
        let g = group_with(vec![4, 0, 8, 0], true);
        for key in 0..1000 {
            let (u, s) = g.locate(key).unwrap();
            assert!(u == 0 || u == 2, "unit {u} is not a member");
            assert!(s < g.shares[u]);
        }
    }

    #[test]
    fn consistent_placement_is_mostly_stable_under_growth() {
        let before = group_with(vec![100, 100, 0, 0], true);
        let after = group_with(vec![100, 100, 20, 0], true); // unit 2 joins
        let mut moved = 0;
        let n = 10_000;
        for key in 0..n {
            let (u0, _) = before.locate(key).unwrap();
            let (u1, _) = after.locate(key).unwrap();
            if u0 != u1 {
                moved += 1;
            }
        }
        let frac = moved as f64 / n as f64;
        // Ideal consistent hashing moves ~20/220 ≈ 9%; allow slack.
        assert!(frac < 0.25, "too many keys moved: {frac}");
        // Hashed placement moves far more.
        let hb = group_with(vec![100, 100, 0, 0], false);
        let ha = group_with(vec![100, 100, 20, 0], false);
        let mut hashed_moved = 0;
        for key in 0..n {
            if hb.locate(key).unwrap() != ha.locate(key).unwrap() {
                hashed_moved += 1;
            }
        }
        assert!(hashed_moved > moved * 2, "consistent hashing should beat plain hashing");
    }

    #[test]
    fn empty_group_locates_nothing() {
        assert_eq!(group_with(vec![0, 0], false).locate(1), None);
        assert_eq!(group_with(vec![0, 0], true).locate(1), None);
    }

    #[test]
    fn layout_assignment_prefers_own_then_nearest() {
        let mut l = StreamLayout::empty(4, 64);
        l.groups.push(group_with(vec![8, 0, 0, 0], false));
        l.groups.push(group_with(vec![0, 0, 8, 0], false));
        // Distance = |a - b| on a line.
        l.assign_nearest(4, |a, b| a.abs_diff(b) as u64);
        assert_eq!(l.assign, vec![0, 0, 1, 1]);
        assert!(l.group_for(3).is_some());
    }

    #[test]
    fn layout_slot_addresses_respect_bases() {
        let mut l = StreamLayout::empty(2, 1024);
        l.unit_base = vec![0, 4096];
        assert_eq!(l.slot_addr(0, 3), 3072);
        assert_eq!(l.slot_addr(1, 1), 5120);
    }

    #[test]
    fn empty_layout_has_no_service() {
        let l = StreamLayout::empty(3, 64);
        assert_eq!(l.locate(0, 42), None);
        assert_eq!(l.total_bytes(), 0);
    }

    #[test]
    fn total_bytes_accounts_replicas() {
        let mut l = StreamLayout::empty(2, 64);
        l.groups.push(group_with(vec![4, 0], false));
        l.groups.push(group_with(vec![0, 4], false));
        assert_eq!(l.total_slots(), 8);
        assert_eq!(l.total_bytes(), 512);
    }
}
