//! The non-NDP host baseline (paper §VI).
//!
//! A conventional chip multi-processor: 64 cores with private L1s and a
//! 32 MB NUCA last-level cache of 64 banks on an on-chip mesh (Fig. 2's NUCA
//! parameters: 9-cycle bank access, 3-cycle routing per hop), backed by
//! DDR5-4800 main memory. Fig. 5 normalizes every NDP configuration to this
//! system.

use ndpx_cache::setassoc::SetAssocCache;
use ndpx_mem::device::{DramConfig, DramDevice};
use ndpx_noc::network::{LinkParams, Network};
use ndpx_noc::topology::{IntraKind, Topology, UnitId};
use ndpx_sim::energy::Power;
use ndpx_sim::engine::{batching_from_env, BatchStats, EventQueue, QueueStats, BATCH_CAP};
use ndpx_sim::rng::hash_range;
use ndpx_sim::stats::Histogram;
use ndpx_sim::telemetry::{StatRegistry, TimelineSampler};
use ndpx_sim::time::{Freq, Time};
use ndpx_sim::{ndpx_info, ndpx_warn};
use ndpx_workloads::trace::{Op, Workload};

use crate::config::PolicyKind;
use crate::stats::{Breakdown, EnergyBreakdown, LatComponent, RunReport};

/// Host system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// Core count (paper: 64).
    pub cores: usize,
    /// Core clock.
    pub freq: Freq,
    /// L1 data cache bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Total LLC bytes (paper: 32 MB over 64 banks).
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC bank access latency, cycles (Fig. 2: 9).
    pub bank_cycles: u64,
    /// Mesh hop latency, cycles (Fig. 2: 3).
    pub hop_cycles: u64,
    /// Main-memory capacity.
    pub mem_capacity: u64,
}

impl HostConfig {
    /// The paper's host: 64 cores, 32 MB LLC, DDR5.
    pub fn paper() -> Self {
        HostConfig {
            cores: 64,
            freq: Freq::from_ghz(2.0),
            l1_bytes: 64 << 10,
            l1_ways: 4,
            llc_bytes: 32 << 20,
            llc_ways: 16,
            bank_cycles: 9,
            hop_cycles: 3,
            mem_capacity: 512 << 30,
        }
    }

    /// A scaled-down host matching [`crate::SystemConfig::test`] ratios.
    pub fn test(cores: usize) -> Self {
        HostConfig { cores, l1_bytes: 8 << 10, llc_bytes: 256 << 10, ..Self::paper() }
    }

    fn mesh_dim(&self) -> usize {
        (self.cores as f64).sqrt().ceil() as usize
    }
}

/// The host simulator.
pub struct HostSystem {
    cfg: HostConfig,
    table: ndpx_stream::StreamTable,
    source: Box<dyn ndpx_workloads::trace::OpSource>,
    workload_name: &'static str,
    l1s: Vec<SetAssocCache>,
    banks: Vec<SetAssocCache>,
    net: Network,
    mem: DramDevice,
    breakdown: Breakdown,
    mem_ops: u64,
    l1_hits: u64,
    llc_hits: u64,
    llc_misses: u64,
    access_latency: Histogram,
    /// Run-ahead batching enabled (`NDPX_BATCH`; see
    /// [`set_batching`](Self::set_batching)).
    batch: bool,
    /// Run-loop batch telemetry (`engine.batch.*`).
    batch_stats: BatchStats,
    /// Opt-in windowed timeline sampler (`NDPX_TIMELINE`), mirroring
    /// [`crate::system::NdpSystem`]'s.
    timeline: Option<Box<TimelineSampler>>,
}

/// Static power of one host core (wider than an NDP core).
const HOST_CORE_STATIC: Power = Power::from_mw(500.0);

impl HostSystem {
    /// Builds the host for one workload (which must target `cfg.cores`).
    ///
    /// # Errors
    ///
    /// Returns a message on a core-count mismatch.
    pub fn new(cfg: HostConfig, workload: Workload) -> Result<Self, String> {
        if workload.cores != cfg.cores {
            return Err(format!(
                "workload built for {} cores but host has {}",
                workload.cores, cfg.cores
            ));
        }
        let dim = cfg.mesh_dim();
        let topo = Topology {
            stacks_x: 1,
            stacks_y: 1,
            units_x: dim,
            units_y: dim,
            intra: IntraKind::Mesh,
        };
        // On-chip mesh: hop latency from cycles, on-chip energy.
        let hop = cfg.freq.cycles_to_time(cfg.hop_cycles);
        let intra = LinkParams { hop_latency: hop, bytes_per_ns: 64.0, pj_per_bit: 0.1 };
        let net = Network::new(topo, intra, LinkParams::inter_stack());
        let banks = (0..cfg.cores)
            .map(|_| {
                SetAssocCache::with_capacity(cfg.llc_bytes / cfg.cores as u64, 64, cfg.llc_ways)
            })
            .collect();
        let l1s = (0..cfg.cores)
            .map(|_| SetAssocCache::with_capacity(cfg.l1_bytes, 64, cfg.l1_ways))
            .collect();
        Ok(HostSystem {
            mem: DramDevice::new(DramConfig::ddr5_extended(cfg.mem_capacity)),
            net,
            banks,
            l1s,
            table: workload.table,
            source: workload.source,
            workload_name: workload.name,
            cfg,
            breakdown: Breakdown::default(),
            mem_ops: 0,
            l1_hits: 0,
            llc_hits: 0,
            llc_misses: 0,
            access_latency: Histogram::new(),
            batch: batching_from_env(),
            batch_stats: BatchStats::default(),
            timeline: TimelineSampler::from_env().map(Box::new),
        })
    }

    /// Attaches (or, with `None`, detaches) a windowed timeline sampler,
    /// overriding whatever `NDPX_TIMELINE` configured at construction.
    pub fn set_timeline(&mut self, cfg: Option<ndpx_sim::telemetry::TimelineConfig>) {
        self.timeline = cfg.map(|c| Box::new(TimelineSampler::new(c)));
    }

    /// Enables or disables run-ahead batching for this host, overriding
    /// `NDPX_BATCH`. Bit-identical either way; exists for differential
    /// tests (see [`crate::system::NdpSystem::set_batching`]).
    pub fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    /// Runs `ops_per_core` operations per core; returns the report.
    ///
    /// Scheduling mirrors [`crate::system::NdpSystem::run`]: cores go
    /// through the shared [`EventQueue`], tie-broken by core index, with
    /// the in-place `push_pop` fast path for re-scheduling.
    pub fn run(&mut self, ops_per_core: u64) -> RunReport {
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut remaining = vec![ops_per_core; self.cfg.cores];
        for c in 0..self.cfg.cores {
            queue.push_ranked(Time::ZERO, c as u64, c);
        }
        let mut makespan = Time::ZERO;
        let mut ops = 0u64;
        let mut next = queue.pop();
        while let Some((mut t, core)) = next {
            // Timeline boundary: snapshot cumulative state strictly before
            // processing the first event at or past it.
            if self.timeline.as_deref().is_some_and(|tl| tl.due(t)) {
                let snap = self.timeline_snapshot(queue.len() as u64);
                if let Some(tl) = self.timeline.as_deref_mut() {
                    tl.record(t, snap);
                }
            }
            // Run-ahead window: the host has no epochs, so only the queue
            // (and any timeline boundary) bounds it (see `NdpSystem::run`
            // for the invariant).
            let window = if self.batch {
                let base = queue.peek_time().unwrap_or(Time::MAX);
                match self.timeline.as_deref() {
                    Some(tl) => base.min(tl.next_boundary()),
                    None => base,
                }
            } else {
                Time::ZERO
            };
            let fast0 = self.l1_hits;
            let mut batch_len = 0u64;
            loop {
                let op = self.source.next_op(core);
                let is_mem = !matches!(op, Op::Compute(_));
                let done = match op {
                    Op::Compute(c) => t + self.cfg.freq.cycles_to_time(u64::from(c)),
                    Op::Mem(m) => {
                        let addr = self.table.get(m.sid).addr_of(m.elem);
                        self.access(core, addr, m.write, t)
                    }
                    Op::RawMem { addr, write } => self.access(core, addr, write, t),
                };
                if is_mem {
                    self.access_latency.record(done.saturating_sub(t));
                }
                batch_len += 1;
                makespan = makespan.max(done);
                remaining[core] -= 1;
                if remaining[core] == 0 {
                    next = queue.pop();
                    break;
                }
                if done < window && batch_len < BATCH_CAP {
                    t = done;
                    continue;
                }
                next = Some(queue.push_pop_ranked(done, core as u64, core));
                break;
            }
            ops += batch_len;
            self.batch_stats.record(batch_len, self.l1_hits - fast0);
        }
        if self.timeline.is_some() {
            let snap = self.timeline_snapshot(queue.len() as u64);
            if let Some(mut tl) = self.timeline.take() {
                tl.finish(snap);
                let label = format!("Host-{}", self.workload_name);
                match tl.write(&label) {
                    Ok(path) => ndpx_info!("timeline for {label} written to {}", path.display()),
                    Err(e) => ndpx_warn!("failed to write timeline for {label}: {e}"),
                }
            }
        }
        self.report(makespan, ops, &queue.stats())
    }

    /// Cumulative registry snapshot for one timeline window: the host's
    /// simulation-derived series only (see `NdpSystem::timeline_snapshot`
    /// for the determinism contract).
    fn timeline_snapshot(&self, queue_depth: u64) -> StatRegistry {
        let mut reg = StatRegistry::new();
        {
            let mut engine = reg.scope("engine");
            engine.gauge("queue.depth", queue_depth as f64);
            let b = &self.batch_stats;
            let mut batch = engine.scope("batch");
            batch.count("batches", b.batches);
            batch.count("ops", b.ops);
            batch.count("fast_hits", b.fast_hits);
            batch.gauge("fast_hit_ratio", b.fast_hit_ratio());
        }
        {
            let mut core = reg.scope("core");
            core.count("mem_ops", self.mem_ops);
            core.count("l1_hits", self.l1_hits);
            core.count("llc_hits", self.llc_hits);
            core.count("llc_misses", self.llc_misses);
        }
        self.net.register_stats(&mut reg.scope("noc"));
        self.mem.register_stats(&mut reg.scope("mem"));
        reg
    }

    /// One memory access: the slim L1 probe inlines into the run loop; the
    /// NUCA/DRAM continuation lives in [`access_miss`](Self::access_miss).
    #[inline]
    fn access(&mut self, core: usize, addr: u64, write: bool, t: Time) -> Time {
        self.mem_ops += 1;
        let line = addr / 64;
        let l1_lat = self.cfg.freq.cycles_to_time(2);
        let now = t + l1_lat;
        if self.l1s[core].access(line, write).is_hit() {
            self.l1_hits += 1;
            return now;
        }
        self.access_miss(core, addr, line, write, l1_lat, now)
    }

    /// The post-L1 continuation of [`access`](Self::access).
    #[inline(never)]
    fn access_miss(
        &mut self,
        core: usize,
        addr: u64,
        line: u64,
        write: bool,
        l1_lat: Time,
        mut now: Time,
    ) -> Time {
        self.breakdown.add(LatComponent::CoreL1, l1_lat);

        // Static line interleaving across banks.
        let bank = hash_range(line, self.cfg.cores as u64) as usize;
        let t1 = self.net.send(UnitId(core), UnitId(bank), 16, now);
        self.breakdown.add(LatComponent::NocIntra, t1 - now);
        now = t1 + self.cfg.freq.cycles_to_time(self.cfg.bank_cycles);
        self.breakdown
            .add(LatComponent::DramCache, self.cfg.freq.cycles_to_time(self.cfg.bank_cycles));

        if self.banks[bank].access(line, write).is_hit() {
            self.llc_hits += 1;
        } else {
            self.llc_misses += 1;
            let t2 = self.mem.access(addr, 64, false, now);
            self.breakdown.add(LatComponent::ExtMem, t2 - now);
            now = t2;
        }
        let t3 = self.net.send(UnitId(bank), UnitId(core), 64, now);
        self.breakdown.add(LatComponent::NocIntra, t3 - now);
        t3 + self.cfg.freq.cycle()
    }

    fn build_registry(&self, qstats: &QueueStats) -> StatRegistry {
        let mut registry = StatRegistry::new();
        {
            let mut engine = registry.scope("engine");
            // Ops executed by the loop, not raw queue pops — comparable
            // across batching on/off (see `NdpSystem::build_registry`).
            engine.count("events", self.batch_stats.ops);
            engine.count("peak_queue_depth", qstats.peak_depth);
            let mut queue = engine.scope("queue");
            queue.count("scheduled", qstats.scheduled);
            queue.count("processed", qstats.processed);
            queue.count("peak_depth", qstats.peak_depth);
            queue.count("overflow_scheduled", qstats.overflow_scheduled);
            for (i, &n) in qstats.bucket_occupancy.iter().enumerate() {
                queue.count(&format!("bucket_occ{i}"), n);
            }
            drop(queue);
            let b = &self.batch_stats;
            let mut batch = engine.scope("batch");
            batch.count("enabled", u64::from(self.batch));
            batch.count("batches", b.batches);
            batch.count("ops", b.ops);
            batch.count("fast_hits", b.fast_hits);
            batch.count("max_len", b.max_len);
            batch.gauge("mean_len", b.mean_len());
            batch.gauge("fast_hit_ratio", b.fast_hit_ratio());
            for (i, &n) in b.len_hist.iter().enumerate() {
                batch.count(&format!("len_c{i}"), n);
            }
        }
        {
            let mut core = registry.scope("core");
            core.count("mem_ops", self.mem_ops);
            core.count("l1_hits", self.l1_hits);
            core.count("llc_hits", self.llc_hits);
            core.count("llc_misses", self.llc_misses);
            core.hist("access_latency", &self.access_latency);
        }
        self.net.register_stats(&mut registry.scope("noc"));
        self.mem.register_stats(&mut registry.scope("mem"));
        self.table.register_stats(&mut registry.scope("stream_table"));
        registry
    }

    fn report(&self, makespan: Time, ops: u64, qstats: &QueueStats) -> RunReport {
        let energy = EnergyBreakdown {
            static_: (HOST_CORE_STATIC * self.cfg.cores as f64).over(makespan)
                + self.mem.background_energy(makespan),
            dram: self.mem.dynamic_energy(),
            noc: self.net.dynamic_energy(),
            ..EnergyBreakdown::default()
        };
        RunReport {
            policy: PolicyKind::StaticInterleave,
            workload: format!("{}(host)", self.workload_name),
            sim_time: makespan,
            ops,
            mem_ops: self.mem_ops,
            l1_hits: self.l1_hits,
            cache_hits: self.llc_hits,
            cache_misses: self.llc_misses,
            local_hits: 0,
            bypass: 0,
            slb_misses: 0,
            metadata_dram: 0,
            breakdown: self.breakdown,
            energy,
            reconfigs: 0,
            invalidations: 0,
            migrations: 0,
            replicated_fraction: 0.0,
            access_latency: self.access_latency.clone(),
            // Engine-loop ops, not raw queue pops (see `NdpSystem::report`).
            engine_events: ops,
            peak_queue_depth: qstats.peak_depth,
            registry: self.build_registry(qstats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpx_workloads::trace::ScaleParams;

    fn run_host(workload: &str, cores: usize, ops: u64) -> RunReport {
        let cfg = HostConfig::test(cores);
        let p = ScaleParams { cores, footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build(workload, &p).unwrap().unwrap();
        HostSystem::new(cfg, wl).unwrap().run(ops)
    }

    #[test]
    fn host_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HostSystem>();
    }

    #[test]
    fn host_runs_and_reports() {
        let r = run_host("pr", 16, 2000);
        assert!(r.sim_time > Time::ZERO);
        assert!(r.cache_hits + r.cache_misses > 0);
        assert!(r.energy.total().as_pj() > 0.0);
    }

    #[test]
    fn host_is_deterministic() {
        let a = run_host("mv", 8, 2000);
        let b = run_host("mv", 8, 2000);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn small_llc_misses_more_than_ndp_cache_would() {
        // The host LLC is tiny relative to the footprint: high miss rate.
        let r = run_host("pr", 8, 4000);
        assert!(r.miss_rate() > 0.2, "expected llc pressure, miss rate {}", r.miss_rate());
    }

    #[test]
    fn host_timeline_writes_and_stays_bit_identical() {
        use ndpx_sim::telemetry::TimelineConfig;

        let base = run_host("mv", 8, 1500);
        let cfg = HostConfig::test(8);
        let p = ScaleParams { cores: 8, footprint: 8 << 20, seed: 42 };
        let wl = ndpx_workloads::build("mv", &p).unwrap().unwrap();
        let mut sys = HostSystem::new(cfg, wl).unwrap();
        let stem = std::env::temp_dir().join("ndpx-host-test-timeline.json");
        let mut tc = TimelineConfig::to_path(&stem);
        tc.window = Time::from_ns(2_000);
        sys.set_timeline(Some(tc));
        let r = sys.run(1500);
        assert_eq!(r.sim_time, base.sim_time, "sampling must not perturb results");
        let path = std::env::temp_dir().join("ndpx-host-test-timeline.Host-mv.json");
        let text = std::fs::read_to_string(&path).expect("timeline written");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"ndpx-timeline-v1\""));
        assert!(text.contains("\"core.mem_ops\""));
    }

    #[test]
    fn rejects_core_mismatch() {
        let cfg = HostConfig::test(8);
        let p = ScaleParams { cores: 4, footprint: 1 << 20, seed: 1 };
        let wl = ndpx_workloads::build("pr", &p).unwrap().unwrap();
        assert!(HostSystem::new(cfg, wl).is_err());
    }
}
