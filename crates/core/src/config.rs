//! System configuration (paper Table II) and scale profiles.

use ndpx_cxl::CxlParams;
use ndpx_mem::device::DramConfig;
use ndpx_noc::network::LinkParams;
use ndpx_noc::topology::{IntraKind, Topology};
use ndpx_sim::chaos::{ChaosConfig, ChaosKind};
use ndpx_sim::fault::FaultConfig;
use ndpx_sim::time::{Freq, Time};

/// Which 3D memory family backs the NDP stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// HBM3-style stacks: one logic die per stack behind a crossbar, so each
    /// stack is one NUCA node.
    Hbm,
    /// HMC-style stacks: per-vault NDP units on an internal mesh.
    Hmc,
}

/// The cache-management policy under evaluation (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// NDPExt: stream caches + the co-optimizing configuration runtime.
    NdpExt,
    /// NDPExt hardware with equal static allocation and no reconfiguration.
    NdpExtStatic,
    /// Jigsaw \[6\] adapted to the DRAM cache: cacheline grain, utility-sized
    /// partitions gathered at each partition's centre of mass.
    Jigsaw,
    /// Whirlpool \[56\]: cacheline grain, per-data-structure partitions spread
    /// proportionally to per-unit access intensity.
    Whirlpool,
    /// Nexus \[71\]: Whirlpool placement plus a uniform global replication
    /// degree for read-only data.
    Nexus,
    /// Static cacheline interleaving across all units (Fig. 2's strawman).
    StaticInterleave,
}

impl PolicyKind {
    /// All policies compared in Fig. 5, in plotting order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::StaticInterleave,
        PolicyKind::Jigsaw,
        PolicyKind::Whirlpool,
        PolicyKind::Nexus,
        PolicyKind::NdpExtStatic,
        PolicyKind::NdpExt,
    ];

    /// Short label used by the bench harness.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::NdpExt => "NDPExt",
            PolicyKind::NdpExtStatic => "NDPExt-static",
            PolicyKind::Jigsaw => "Jigsaw",
            PolicyKind::Whirlpool => "Whirlpool",
            PolicyKind::Nexus => "Nexus",
            PolicyKind::StaticInterleave => "Static",
        }
    }

    /// True for the two policies that use stream-grain metadata (no per-line
    /// metadata access).
    pub fn is_stream_grain(self) -> bool {
        matches!(self, PolicyKind::NdpExt | PolicyKind::NdpExtStatic)
    }

    /// True if the runtime reconfigures the cache every epoch.
    pub fn reconfigures(self) -> bool {
        !matches!(self, PolicyKind::NdpExtStatic | PolicyKind::StaticInterleave)
    }
}

/// How reconfiguration treats data cached under the previous configuration
/// (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigTransfer {
    /// Invalidate all cached data of streams whose allocation changed.
    BulkInvalidate,
    /// Consistent hashing: keep entries whose placement survives, migrate
    /// the rest where possible.
    ConsistentHash,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// NDP memory family.
    pub mem_kind: MemKind,
    /// Stack/unit geometry.
    pub topology: Topology,
    /// DRAM cache bytes per NDP unit.
    pub unit_capacity: u64,
    /// Extended-memory capacity.
    pub ext_capacity: u64,
    /// CXL link parameters.
    pub cxl: CxlParams,
    /// NDP core clock (Table II: 2 GHz, in-order).
    pub core_freq: Freq,
    /// L1 data cache size (Table II: 64 kB).
    pub l1_bytes: u64,
    /// L1 associativity (Table II: 4-way).
    pub l1_ways: usize,
    /// Cacheline size (64 B).
    pub line_bytes: u64,
    /// Affine stream cache block size (paper §IV-C: 1 kB).
    pub affine_block: u64,
    /// Total affine cache space per unit (paper §IV-C: 16 MB); `u64::MAX`
    /// disables the restriction (Fig. 9c's ideal case).
    pub affine_cap: u64,
    /// Indirect stream cache associativity (paper: direct-mapped; Fig. 9a
    /// sweeps higher).
    pub indirect_ways: usize,
    /// SLB entries per unit (paper: 32).
    pub slb_entries: usize,
    /// Latency charged on an SLB miss (host walks the stream remap table).
    pub slb_miss_penalty: Time,
    /// Miss-curve samplers per unit (paper §V-A: 4).
    pub samplers_per_unit: usize,
    /// Sampled sets per capacity point (paper: k = 32).
    pub sampler_sets: usize,
    /// Capacity points per sampler (paper: c = 64).
    pub sampler_points: usize,
    /// Reconfiguration epoch in core cycles (paper: 50 M).
    pub epoch_cycles: u64,
    /// Stop reconfiguring after this many epochs (Fig. 9e's "partial" mode);
    /// `None` reconfigures for the whole run.
    pub max_reconfigs: Option<u64>,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Reconfiguration data handling.
    pub transfer: ReconfigTransfer,
    /// Nexus's uniform replication degree.
    pub nexus_degree: usize,
    /// Allow NDPExt to form replication groups (ablation knob; the paper's
    /// design always allows it for read-only streams).
    pub allow_replication: bool,
    /// Per-unit SRAM metadata cache for cacheline-grain baselines
    /// (paper §VI: 128 kB).
    pub metadata_cache_bytes: u64,
    /// Metadata block coverage of the dual-granularity metadata cache
    /// (Bi-Modal style: 512 B regions).
    pub metadata_block: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fault-injection configuration. Profiles read it from the
    /// `NDPX_FAULT_*` environment (like the trace sink); tests override the
    /// field directly. Disabled by default, in which case every device keeps
    /// the ideal fault-free path.
    pub fault: FaultConfig,
    /// Hard-failure schedule (device and link loss). Profiles read it from
    /// `NDPX_CHAOS` / `NDPX_CHAOS_RETRY_NS`; tests set the field directly.
    /// Disabled (no events) by default, in which case no escalation machinery
    /// engages and runs are byte-identical to the ideal path.
    pub chaos: ChaosConfig,
}

impl SystemConfig {
    /// The paper's full-scale configuration (Table II): 8 stacks × 16 units.
    ///
    /// Note: Table II lists 16 GB total NDP memory and 256 MB/unit, which is
    /// inconsistent with 128 units; we follow the 16 GB total (128 MB/unit).
    pub fn paper(mem_kind: MemKind, policy: PolicyKind) -> Self {
        let intra = match mem_kind {
            MemKind::Hbm => IntraKind::Crossbar,
            MemKind::Hmc => IntraKind::Mesh,
        };
        SystemConfig {
            mem_kind,
            topology: Topology::paper_default(intra),
            unit_capacity: 128 << 20,
            ext_capacity: 512 << 30,
            cxl: CxlParams::paper_default(),
            core_freq: Freq::from_ghz(2.0),
            l1_bytes: 64 << 10,
            l1_ways: 4,
            line_bytes: 64,
            affine_block: 1 << 10,
            affine_cap: 16 << 20,
            indirect_ways: 1,
            slb_entries: 32,
            slb_miss_penalty: Time::from_us(1),
            samplers_per_unit: 4,
            sampler_sets: 32,
            sampler_points: 64,
            epoch_cycles: 50_000_000,
            max_reconfigs: None,
            policy,
            transfer: ReconfigTransfer::ConsistentHash,
            nexus_degree: 4,
            allow_replication: true,
            metadata_cache_bytes: 128 << 10,
            metadata_block: 512,
            seed: 0x5EED_0D9C,
            fault: FaultConfig::from_env(),
            chaos: ChaosConfig::from_env(),
        }
    }

    /// A scaled-down profile for unit and integration tests: 4 stacks of 4
    /// units, 1 MB per unit, short epochs. All capacity *ratios* follow the
    /// paper profile.
    pub fn test(policy: PolicyKind) -> Self {
        let mut cfg = Self::paper(MemKind::Hbm, policy);
        cfg.topology = Topology {
            stacks_x: 2,
            stacks_y: 2,
            units_x: 2,
            units_y: 2,
            intra: IntraKind::Crossbar,
        };
        cfg.unit_capacity = 1 << 20;
        cfg.ext_capacity = 1 << 30;
        cfg.l1_bytes = 8 << 10;
        cfg.affine_cap = 128 << 10;
        cfg.metadata_cache_bytes = 16 << 10;
        cfg.epoch_cycles = 200_000;
        cfg
    }

    /// The mid-size profile used by the bench harness: the paper's topology
    /// shape at 1/16 capacity so full sweeps finish in minutes.
    pub fn bench(mem_kind: MemKind, policy: PolicyKind) -> Self {
        let mut cfg = Self::paper(mem_kind, policy);
        cfg.unit_capacity = 4 << 20;
        cfg.ext_capacity = 8 << 30;
        cfg.affine_cap = 512 << 10;
        cfg.epoch_cycles = 2_000_000;
        cfg
    }

    /// Number of NDP units (== cores).
    pub fn units(&self) -> usize {
        self.topology.units()
    }

    /// The per-unit DRAM device configuration.
    pub fn dram_config(&self) -> DramConfig {
        match self.mem_kind {
            MemKind::Hbm => DramConfig::hbm3_unit(self.unit_capacity),
            MemKind::Hmc => DramConfig::hmc2_unit(self.unit_capacity),
        }
    }

    /// Intra- and inter-stack link parameters (Table II).
    pub fn link_params(&self) -> (LinkParams, LinkParams) {
        (LinkParams::intra_stack(), LinkParams::inter_stack())
    }

    /// Epoch length as simulated time.
    pub fn epoch(&self) -> Time {
        self.core_freq.cycles_to_time(self.epoch_cycles)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.unit_capacity == 0 {
            return Err("unit capacity must be positive".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("line size must be a positive power of two".into());
        }
        if self.affine_block < self.line_bytes {
            return Err("affine block must be at least one line".into());
        }
        if self.indirect_ways == 0 || self.l1_ways == 0 {
            return Err("associativities must be positive".into());
        }
        if self.nexus_degree == 0 {
            return Err("nexus degree must be positive".into());
        }
        if self.sampler_points < 2 {
            return Err("need at least two sampler capacity points".into());
        }
        self.fault.validate().map_err(str::to_string)?;
        self.chaos.validate()?;
        let stacks = self.topology.stacks();
        for e in &self.chaos.events {
            match e.kind {
                ChaosKind::CxlDown => {}
                ChaosKind::StackDown { stack } => {
                    if stack >= stacks {
                        return Err(format!(
                            "chaos stack-down target {stack} out of range (stacks: {stacks})"
                        ));
                    }
                }
                ChaosKind::NocLinkDown { src, dst } => {
                    if src >= stacks || dst >= stacks {
                        return Err(format!(
                            "chaos noc-down target {src}-{dst} out of range (stacks: {stacks})"
                        ));
                    }
                    let sx = self.topology.stacks_x;
                    let (ax, ay) = (src % sx, src / sx);
                    let (bx, by) = (dst % sx, dst / sx);
                    if ax.abs_diff(bx) + ay.abs_diff(by) != 1 {
                        return Err(format!(
                            "chaos noc-down target {src}-{dst} is not a grid-adjacent \
                             stack pair"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table2() {
        let cfg = SystemConfig::paper(MemKind::Hbm, PolicyKind::NdpExt);
        cfg.validate().unwrap();
        assert_eq!(cfg.units(), 128);
        assert_eq!(cfg.units() as u64 * cfg.unit_capacity, 16 << 30);
        assert_eq!(cfg.core_freq.cycle().as_ps(), 500);
        assert_eq!(cfg.slb_entries, 32);
        assert_eq!(cfg.samplers_per_unit, 4);
        assert_eq!(cfg.sampler_sets, 32);
        assert_eq!(cfg.sampler_points, 64);
        assert_eq!(cfg.epoch_cycles, 50_000_000);
        assert_eq!(cfg.affine_cap, 16 << 20);
    }

    #[test]
    fn hmc_uses_mesh_hbm_uses_crossbar() {
        let hbm = SystemConfig::paper(MemKind::Hbm, PolicyKind::NdpExt);
        let hmc = SystemConfig::paper(MemKind::Hmc, PolicyKind::NdpExt);
        assert_eq!(hbm.topology.intra, IntraKind::Crossbar);
        assert_eq!(hmc.topology.intra, IntraKind::Mesh);
    }

    #[test]
    fn test_profile_is_small_and_valid() {
        let cfg = SystemConfig::test(PolicyKind::Nexus);
        cfg.validate().unwrap();
        assert!(cfg.units() <= 16);
        assert!(cfg.unit_capacity <= 2 << 20);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.unit_capacity = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.affine_block = 32;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_rates_are_validated() {
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.fault = FaultConfig::with_seed(1);
        cfg.fault.mem_ce = 7.0;
        assert!(cfg.validate().is_err());
        cfg.fault.mem_ce = 0.5;
        cfg.validate().unwrap();
    }

    #[test]
    fn chaos_targets_are_validated_against_the_topology() {
        // Test profile: 2×2 stacks.
        let mut cfg = SystemConfig::test(PolicyKind::NdpExt);
        cfg.chaos = ChaosConfig::parse(Some("stack-down@10us:1"), None).unwrap();
        cfg.validate().unwrap();
        cfg.chaos = ChaosConfig::parse(Some("stack-down@10us:4"), None).unwrap();
        assert!(cfg.validate().is_err(), "stack index past the grid must be rejected");
        cfg.chaos = ChaosConfig::parse(Some("noc-down@10us:0-1"), None).unwrap();
        cfg.validate().unwrap();
        // Stacks 0 and 3 are diagonal on the 2×2 grid: no direct link.
        cfg.chaos = ChaosConfig::parse(Some("noc-down@10us:0-3"), None).unwrap();
        assert!(cfg.validate().is_err(), "non-adjacent link must be rejected");
        cfg.chaos = ChaosConfig::parse(Some("cxl-down@10us"), None).unwrap();
        assert!(cfg.validate().is_err(), "permanent CXL outage must be rejected");
    }

    #[test]
    fn policy_helpers() {
        assert!(PolicyKind::NdpExt.is_stream_grain());
        assert!(!PolicyKind::Nexus.is_stream_grain());
        assert!(PolicyKind::NdpExt.reconfigures());
        assert!(!PolicyKind::StaticInterleave.reconfigures());
        assert_eq!(PolicyKind::ALL.len(), 6);
    }
}
