//! Run-level statistics: latency breakdowns, energy breakdowns, and the
//! report the bench harness consumes.

use ndpx_sim::energy::Energy;
use ndpx_sim::stats::Histogram;
use ndpx_sim::telemetry::StatRegistry;
use ndpx_sim::time::Time;

use crate::config::PolicyKind;

/// Components of memory-access latency (the paper's Fig. 2a categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatComponent {
    /// Core pipeline and L1 access.
    CoreL1,
    /// Metadata: SLB, ATA, metadata cache, and in-DRAM tag accesses.
    Metadata,
    /// DRAM cache data access at the serving unit.
    DramCache,
    /// Intra-stack network.
    NocIntra,
    /// Inter-stack network.
    NocInter,
    /// Extended memory: CXL link plus DDR backend.
    ExtMem,
}

impl LatComponent {
    /// All components in display order.
    pub const ALL: [LatComponent; 6] = [
        LatComponent::CoreL1,
        LatComponent::Metadata,
        LatComponent::DramCache,
        LatComponent::NocIntra,
        LatComponent::NocInter,
        LatComponent::ExtMem,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LatComponent::CoreL1 => "core+l1",
            LatComponent::Metadata => "metadata",
            LatComponent::DramCache => "dram-cache",
            LatComponent::NocIntra => "noc-intra",
            LatComponent::NocInter => "noc-inter",
            LatComponent::ExtMem => "ext-mem",
        }
    }
}

/// Accumulated time per latency component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    parts: [Time; 6],
}

impl Breakdown {
    /// Adds `t` to one component.
    #[inline]
    pub fn add(&mut self, c: LatComponent, t: Time) {
        self.parts[c as usize] += t;
    }

    /// The accumulated time of one component.
    pub fn get(&self, c: LatComponent) -> Time {
        self.parts[c as usize]
    }

    /// Sum over all components.
    pub fn total(&self) -> Time {
        self.parts.iter().copied().sum()
    }

    /// Fraction of the total attributed to `c` (0 if empty).
    pub fn fraction(&self, c: LatComponent) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            0.0
        } else {
            self.get(c).as_ps() as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for (a, b) in self.parts.iter_mut().zip(other.parts.iter()) {
            *a += *b;
        }
    }
}

/// Energy by source (the paper's Fig. 6 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Background/leakage energy (follows execution time).
    pub static_: Energy,
    /// DRAM dynamic energy (NDP cache + extended DDR).
    pub dram: Energy,
    /// Intra- and inter-stack interconnect energy.
    pub noc: Energy,
    /// CXL link energy.
    pub cxl: Energy,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.static_ + self.dram + self.noc + self.cxl
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy simulated.
    pub policy: PolicyKind,
    /// Workload name.
    pub workload: String,
    /// Makespan: the time the last core finished its op quota.
    pub sim_time: Time,
    /// Operations executed (all kinds).
    pub ops: u64,
    /// Memory operations issued to the hierarchy.
    pub mem_ops: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// DRAM cache hits (any unit).
    pub cache_hits: u64,
    /// DRAM cache misses (served by extended memory).
    pub cache_misses: u64,
    /// Hits served by the requester's own unit.
    pub local_hits: u64,
    /// Accesses that bypassed the cache (non-stream addresses).
    pub bypass: u64,
    /// SLB misses (stream-grain policies).
    pub slb_misses: u64,
    /// Metadata-cache misses that required an in-DRAM tag access
    /// (cacheline-grain baselines).
    pub metadata_dram: u64,
    /// Latency breakdown over post-L1 accesses.
    pub breakdown: Breakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Reconfigurations performed.
    pub reconfigs: u64,
    /// Cache entries invalidated at reconfigurations and read-only
    /// transitions.
    pub invalidations: u64,
    /// Cache entries migrated between units at reconfigurations.
    pub migrations: u64,
    /// Fraction of cache capacity spent on replicas in the last epoch.
    pub replicated_fraction: f64,
    /// End-to-end latency distribution of post-L1 memory accesses.
    ///
    /// Telemetry fields below are deliberately *not* mixed into the bench
    /// digest (`ndpx-bench`'s `report_digest` enumerates fields explicitly),
    /// so observability changes can never shift a perf baseline.
    pub access_latency: Histogram,
    /// Events processed by the run's event queue (fused push-pops included).
    pub engine_events: u64,
    /// High-water mark of the event queue.
    pub peak_queue_depth: u64,
    /// Hierarchical stat dump gathered from every subsystem after the run.
    pub registry: StatRegistry,
}

impl RunReport {
    /// DRAM-cache miss rate over post-L1 stream accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.mem_ops as f64
        }
    }

    /// Mean interconnect (intra + inter) latency per post-L1 access.
    pub fn avg_interconnect(&self) -> Time {
        let accesses = self.cache_hits + self.cache_misses;
        if accesses == 0 {
            return Time::ZERO;
        }
        let noc =
            self.breakdown.get(LatComponent::NocIntra) + self.breakdown.get(LatComponent::NocInter);
        Time::from_ps(noc.as_ps() / accesses)
    }

    /// Throughput proxy: operations per simulated microsecond.
    pub fn ops_per_us(&self) -> f64 {
        if self.sim_time.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.sim_time.as_us_f64()
        }
    }

    /// Speedup of this run over `baseline` (same op count assumed).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.sim_time.is_zero() {
            0.0
        } else {
            baseline.sim_time.as_ps() as f64 / self.sim_time.as_ps() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sim_ps: u64) -> RunReport {
        RunReport {
            policy: PolicyKind::NdpExt,
            workload: "test".into(),
            sim_time: Time::from_ps(sim_ps),
            ops: 1000,
            mem_ops: 800,
            l1_hits: 600,
            cache_hits: 150,
            cache_misses: 50,
            local_hits: 100,
            bypass: 1,
            slb_misses: 2,
            metadata_dram: 0,
            breakdown: Breakdown::default(),
            energy: EnergyBreakdown::default(),
            reconfigs: 3,
            invalidations: 10,
            migrations: 5,
            replicated_fraction: 0.2,
            access_latency: Histogram::new(),
            engine_events: 0,
            peak_queue_depth: 0,
            registry: StatRegistry::new(),
        }
    }

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = Breakdown::default();
        b.add(LatComponent::CoreL1, Time::from_ns(10));
        b.add(LatComponent::ExtMem, Time::from_ns(30));
        assert_eq!(b.total().as_ns(), 40);
        assert!((b.fraction(LatComponent::ExtMem) - 0.75).abs() < 1e-12);
        let mut c = Breakdown::default();
        c.add(LatComponent::CoreL1, Time::from_ns(10));
        c.merge(&b);
        assert_eq!(c.get(LatComponent::CoreL1).as_ns(), 20);
    }

    #[test]
    fn report_rates() {
        let r = report(1_000_000);
        assert!((r.miss_rate() - 0.25).abs() < 1e-12);
        assert!((r.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.ops_per_us() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_time_ratio() {
        let fast = report(500_000);
        let slow = report(1_000_000);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = Breakdown::default();
        assert_eq!(b.fraction(LatComponent::Metadata), 0.0);
        assert_eq!(Breakdown::default().total(), Time::ZERO);
    }

    #[test]
    fn energy_total_sums_parts() {
        let e = EnergyBreakdown {
            static_: Energy::from_pj(1.0),
            dram: Energy::from_pj(2.0),
            noc: Energy::from_pj(3.0),
            cxl: Energy::from_pj(4.0),
        };
        assert!((e.total().as_pj() - 10.0).abs() < 1e-12);
    }
}
